#!/usr/bin/env python
"""CI fault smoke: seeded fault sweep, forced crash recovery, parity gate.

Exercises the PR 4 robustness machinery end to end, the way CI wants it
— fast, deterministic, and loud on failure:

1. **Fault parity gate** — a seeded random `FaultSchedule` (channel
   failures/repairs, stuck inputs, CLRG corruption) is driven through
   both kernels; `verify_parity` must report bit-identical results *and*
   identical trace streams.
2. **Degradation report** — `measure_degradation` runs the scripted
   partition schedule and writes `degradation.json` / `degradation.md`
   (the artifact CI uploads), sanity-checked for phase structure.
3. **Crash-resilient sweep** — a sweep whose measurement kills its own
   worker process (`os._exit`) on first execution per seed, run under
   the resilient scheduler with retries, a per-task timeout, and a
   JSONL checkpoint, must complete with values bit-identical to the
   plain serial sweep — and a resumed run must replay the checkpoint
   without recomputing.

Usage:
    python scripts/fault_smoke.py                 # writes into ./fault-smoke
    python scripts/fault_smoke.py --out-dir DIR --seed 7
"""

import argparse
import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.config import HiRiseConfig  # noqa: E402
from repro.faults import (  # noqa: E402
    FaultSchedule,
    fail_channel,
    repair_channel,
    measure_degradation,
    verify_parity,
)
from repro.harness.report import render_degradation_markdown  # noqa: E402
from repro.harness.sweep import parameter_grid, run_sweep  # noqa: E402


def crashing_measurement(seed, load=0.6, token=None):
    """Throughput measurement that kills its worker once per seed.

    The token file marks "this seed already crashed"; the retried
    attempt computes normally, so the supervised result must equal the
    serial run of :func:`healthy_measurement`.
    """
    if token is not None:
        marker = f"{token}.{seed}"
        if not os.path.exists(marker):
            with open(marker, "w", encoding="utf-8"):
                pass
            os._exit(1)
    return healthy_measurement(seed, load=load)


def healthy_measurement(seed, load=0.6, token=None):
    from repro.core.hirise import HiRiseSwitch
    from repro.network.engine import Simulation
    from repro.traffic import UniformRandomTraffic

    config = HiRiseConfig(radix=8, layers=2, channel_multiplicity=2)
    switch = HiRiseSwitch(config)
    traffic = UniformRandomTraffic(8, load=load, seed=seed)
    result = Simulation(switch, traffic, warmup_cycles=20).run(100)
    return result.throughput_packets_per_cycle


def check_parity(seed: int) -> None:
    config = HiRiseConfig(radix=16, layers=4, channel_multiplicity=2)
    schedule = FaultSchedule.random(
        config, seed=seed, horizon=340, faults=6,
        include_inputs=True, include_clrg=True,
    )
    mismatches = verify_parity(config, schedule, load=0.9, seed=11)
    if mismatches:
        for line in mismatches:
            print(f"  PARITY MISMATCH: {line}")
        raise SystemExit("fault parity gate failed")
    print(
        f"parity: fast == reference under {len(schedule)} random fault "
        f"events (results and trace streams)"
    )


def write_degradation(out_dir: Path) -> None:
    config = HiRiseConfig(radix=8, layers=2, channel_multiplicity=2)
    schedule = FaultSchedule([
        fail_channel(100, 0, 1, 0),
        fail_channel(150, 0, 1, 1),      # full 0->1 partition
        repair_channel(250, 0, 1, 0),
        repair_channel(250, 0, 1, 1),
    ])
    report = measure_degradation(
        config, schedule, load=0.7, seed=3,
        measure_cycles=400, warmup_cycles=50,
    )
    payload = report.to_dict()
    phases = payload["phases"]
    assert [p["failed_channels"] for p in phases] == [0, 1, 2, 0], phases
    assert min(p["reachable_fraction"] for p in phases) == 0.75, phases
    (out_dir / "degradation.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    (out_dir / "degradation.md").write_text(
        render_degradation_markdown(payload)
    )
    print(
        f"degradation: {len(phases)} phases, reachability dipped to "
        f"{min(p['reachable_fraction'] for p in phases):.2f}, reports in "
        f"{out_dir}/"
    )


def check_resilient_sweep(out_dir: Path) -> None:
    token = str(out_dir / "crash-token")
    grid = parameter_grid(load=[0.4, 0.8], token=[token])
    checkpoint = out_dir / "sweep-checkpoint.jsonl"
    # A pool break fails every in-flight future and charges one of them
    # (the culprit is unknowable), so size the budget for an innocent
    # charge per crash round on top of each task's own crash.
    supervised = run_sweep(
        crashing_measurement, grid, replications=3, base_seed=0,
        workers=2, task_timeout=60.0, max_retries=4, backoff_base=0.0,
        checkpoint=checkpoint,
    )
    serial = run_sweep(
        healthy_measurement,
        parameter_grid(load=[0.4, 0.8], token=[None]),
        replications=3, base_seed=0,
    )
    crashed = [p for p in Path(out_dir).glob("crash-token.*")]
    assert crashed, "no worker crash was actually forced"
    for got, want in zip(supervised, serial):
        assert got.value == want.value, (got, want)
        assert got.interval.half_width == want.interval.half_width
    # Resume: every task must come from the journal, none recomputed
    # (recomputation would crash again via a fresh token).
    for marker in crashed:
        marker.unlink()
    resumed = run_sweep(
        crashing_measurement, grid, replications=3, base_seed=0,
        workers=2, checkpoint=checkpoint,
    )
    assert [p.value for p in resumed] == [p.value for p in supervised]
    assert not list(Path(out_dir).glob("crash-token.*")), (
        "checkpoint resume recomputed a journaled task"
    )
    print(
        f"resilient sweep: {len(crashed)} forced worker crashes retried "
        f"to bit-identical results; checkpoint resume replayed "
        f"{len(supervised) * 3} tasks without recomputing"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=7,
                        help="seed of the random parity schedule")
    parser.add_argument("--out-dir", type=Path, default=Path("fault-smoke"),
                        help="artifact directory (created if missing)")
    args = parser.parse_args()
    args.out_dir.mkdir(parents=True, exist_ok=True)
    check_parity(args.seed)
    write_degradation(args.out_dir)
    check_resilient_sweep(args.out_dir)
    print("fault smoke: OK")


if __name__ == "__main__":
    main()

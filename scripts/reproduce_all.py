#!/usr/bin/env python3
"""Regenerate every table and figure and write a consolidated report.

This is the one-shot reproduction driver: it runs the full-quality harness
for Tables I/IV/V/VI and Figs 9(a)-(c), 10, 11(a)-(c), 12, writes the
rendered report to ``reproduction_report.txt`` and all raw series/rows as
CSV under ``reproduction_data/``.

Expect on the order of 5-10 minutes on a laptop; pass ``--fast`` for a
reduced-quality pass (~2 minutes) with the same structure.

Run:  python scripts/reproduce_all.py [--fast] [--outdir DIR]
"""

import argparse
import sys
import time
from pathlib import Path

from repro.harness import (
    export_rows_csv,
    export_series_csv,
    fig9a_frequency_vs_radix,
    fig9b_frequency_vs_layers,
    fig9c_energy_vs_radix,
    fig10_latency_vs_load,
    fig11a_hotspot_latency,
    fig11b_arbitration_throughput,
    fig11c_adversarial_throughput,
    fig12_tsv_pitch,
    render_series,
    render_table,
    table1,
    table4,
    table5,
    table6,
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true",
                        help="reduced simulation lengths")
    parser.add_argument("--outdir", default=".",
                        help="where to write the report and CSVs")
    args = parser.parse_args()

    scale = 0.3 if args.fast else 1.0
    sim = dict(warmup_cycles=int(500 * scale),
               measure_cycles=int(3000 * scale))
    heavy = dict(warmup_cycles=int(2000 * scale),
                 measure_cycles=int(20000 * scale))
    outdir = Path(args.outdir)
    data_dir = outdir / "reproduction_data"
    sections = []
    start = time.time()

    def stamp(label):
        print(f"[{time.time() - start:6.1f}s] {label}", flush=True)

    # ------------------------------------------------------------------
    stamp("Table I / IV (cost + saturation simulations)")
    rows4 = table4(**sim)
    sections.append(render_table(rows4[:2], "Table I: 2D vs 3D folded"))
    sections.append(render_table(rows4, "Table IV: channel multiplicity"))
    export_rows_csv(rows4, data_dir / "table4.csv")

    stamp("Table V (arbitration variants)")
    rows5 = table5(**sim)
    sections.append(render_table(rows5, "Table V: arbitration variants"))
    export_rows_csv(rows5, data_dir / "table5.csv")

    stamp("Table VI (eight 64-core workload mixes, two systems each)")
    rows6 = table6(network_cycles_baseline=int(10000 * scale))
    sections.append(render_table(rows6, "Table VI: application speedup"))
    export_rows_csv(rows6, data_dir / "table6.csv")

    stamp("Fig 9(a)-(c), Fig 12 (physical model)")
    for name, series, columns in [
        ("fig9a", fig9a_frequency_vs_radix(), ["radix", "GHz"]),
        ("fig9b", fig9b_frequency_vs_layers(), ["layers", "GHz"]),
        ("fig9c", fig9c_energy_vs_radix(), ["radix", "pJ"]),
        ("fig12", {"Hi-Rise 4ch 4layer": fig12_tsv_pitch()},
         ["pitch um", "GHz", "mm2"]),
    ]:
        sections.append(render_series(series, f"Fig {name[3:]}", columns))
        export_series_csv(series, data_dir / f"{name}.csv", columns)

    stamp("Fig 10 (latency vs load, five designs)")
    series10 = fig10_latency_vs_load(**sim)
    columns10 = ["pkts/in/ns", "latency ns", "accepted pkts/ns"]
    sections.append(render_series(series10, "Fig 10", columns10))
    export_series_csv(series10, data_dir / "fig10.csv", columns10)

    stamp("Fig 11(b) (arbitration throughput)")
    series11b = fig11b_arbitration_throughput(**sim)
    sections.append(
        render_series(series11b, "Fig 11(b)", ["pkts/in/ns", "pkts/ns"])
    )
    export_series_csv(series11b, data_dir / "fig11b.csv",
                      ["pkts/in/ns", "pkts/ns"])

    stamp("Fig 11(a) (hotspot fairness) and 11(c) (adversarial)")
    lat11a = fig11a_hotspot_latency(**heavy)
    series11a = {k: list(enumerate(v)) for k, v in lat11a.items()}
    sections.append(
        render_series(series11a, "Fig 11(a)", ["input", "latency cyc"])
    )
    export_series_csv(series11a, data_dir / "fig11a.csv",
                      ["input", "latency cyc"])
    tp11c = fig11c_adversarial_throughput(**heavy)
    series11c = {k: sorted(v.items()) for k, v in tp11c.items()}
    sections.append(
        render_series(series11c, "Fig 11(c)", ["input", "pkts/ns"])
    )
    export_series_csv(series11c, data_dir / "fig11c.csv",
                      ["input", "pkts/ns"])

    report = outdir / "reproduction_report.txt"
    report.write_text("\n\n\n".join(sections) + "\n")
    stamp(f"done -> {report} and {data_dir}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Cycle-kernel throughput benchmark (simulated cycles per wall-clock second).

Measures the hot cycle loop of every switch model at saturation (uniform
random traffic, load 1.0) with traffic fully pre-staged outside the timed
region, so the numbers isolate the arbitrate/transmit kernel itself:

* the flat 2D Swizzle-Switch and the 3D folded switch baselines,
* Hi-Rise at 1, 2, and 4 channels (the headline 64-port, 4-layer config),
* optionally (``--reference``) the frozen seed kernel on the headline
  config, giving the like-for-like speedup of the fast-path kernel.

Raw cycles/s are machine-dependent, so every run also times a fixed
integer busy-loop (the *calibration score*) and reports each benchmark
normalised by it.  ``--check`` compares normalised scores against the
committed ``BENCH_kernel.json`` and fails on a >30% regression, which is
what the CI perf-smoke job runs (with ``--quick``).

Usage:
    python scripts/bench_kernel.py                  # full run, write JSON
    python scripts/bench_kernel.py --quick --check  # CI regression gate
"""

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.config import HiRiseConfig  # noqa: E402
from repro.core.hirise import HiRiseSwitch  # noqa: E402
from repro.core.reference import ReferenceHiRiseSwitch  # noqa: E402
from repro.switches import FoldedSwitch3D, SwizzleSwitch2D  # noqa: E402
from repro.traffic.uniform import UniformRandomTraffic  # noqa: E402

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_kernel.json"
RADIX = 64
LAYERS = 4
TRAFFIC_SEED = 7
REGRESSION_TOLERANCE = 0.30

#: Headline result recorded for posterity: the growth seed's kernel
#: (tuple-keyed dicts, nested closures, eager flit expansion all the way
#: down) measured 1471 cycles/s on the 64-port 4-layer 4-channel
#: saturation benchmark under this exact harness on the machine that
#: produced the committed BENCH_kernel.json.
SEED_COMMIT_CYCLES_PER_SEC = 1471.0


def make_benchmarks():
    """Name -> zero-argument switch factory, headline config last."""
    return {
        "swizzle2d_64": lambda: SwizzleSwitch2D(RADIX),
        "folded3d_64x4": lambda: FoldedSwitch3D(RADIX, LAYERS),
        "hirise_64x4_c1": lambda: HiRiseSwitch(
            HiRiseConfig(radix=RADIX, layers=LAYERS, channel_multiplicity=1)
        ),
        "hirise_64x4_c2": lambda: HiRiseSwitch(
            HiRiseConfig(radix=RADIX, layers=LAYERS, channel_multiplicity=2)
        ),
        "hirise_64x4_c4": lambda: HiRiseSwitch(
            HiRiseConfig(radix=RADIX, layers=LAYERS, channel_multiplicity=4)
        ),
    }


def calibration_score(trials: int = 3) -> float:
    """Fixed integer busy-loop throughput (iterations per second).

    Used to normalise kernel throughput across machines: the regression
    gate compares cycles/s *per calibration unit*, so a slower CI runner
    does not read as a kernel regression.
    """
    iterations = 2_000_000
    best = 0.0
    for _ in range(trials):
        accumulator = 0
        start = time.perf_counter()
        for i in range(iterations):
            accumulator += i & 7
        elapsed = time.perf_counter() - start
        best = max(best, iterations / elapsed)
    return best


def bench_switch(make_switch, cycles: int, trials: int) -> float:
    """Best-of-``trials`` simulated cycles per second at saturation.

    Traffic is generated and expanded into per-cycle packet lists before
    the clock starts; the timed region is injection + ``step`` only.
    """
    best = 0.0
    for _ in range(trials):
        switch = make_switch()
        traffic = UniformRandomTraffic(
            switch.num_ports, load=1.0, seed=TRAFFIC_SEED
        )
        staged = [
            list(traffic.packets_for_cycle(cycle)) for cycle in range(cycles)
        ]
        inject_many = getattr(switch, "inject_many", None)
        step = switch.step
        start = time.perf_counter()
        if inject_many is not None:
            for cycle in range(cycles):
                inject_many(staged[cycle])
                step(cycle)
        else:
            inject = switch.inject
            for cycle in range(cycles):
                for packet in staged[cycle]:
                    inject(packet)
                step(cycle)
        elapsed = time.perf_counter() - start
        best = max(best, cycles / elapsed)
    return best


def run_benchmarks(cycles: int, trials: int, include_reference: bool) -> dict:
    calibration = calibration_score()
    report = {
        "cycles": cycles,
        "trials": trials,
        "calibration_score": calibration,
        "benchmarks": {},
    }
    for name, factory in make_benchmarks().items():
        print(f"  {name} ...", end="", flush=True)
        rate = bench_switch(factory, cycles, trials)
        report["benchmarks"][name] = {
            "cycles_per_sec": round(rate, 1),
            "normalized": rate / calibration,
        }
        print(f" {rate:.0f} cycles/s")
    headline = report["benchmarks"]["hirise_64x4_c4"]["cycles_per_sec"]
    report["seed_commit_baseline"] = {
        "cycles_per_sec": SEED_COMMIT_CYCLES_PER_SEC,
        "speedup": round(headline / SEED_COMMIT_CYCLES_PER_SEC, 2),
        "note": (
            "seed kernel as committed (pre-refactor tree), same harness "
            "and machine as the committed benchmark numbers"
        ),
    }
    if include_reference:
        print("  reference kernel (hirise_64x4_c4) ...", end="", flush=True)
        reference_rate = bench_switch(
            lambda: ReferenceHiRiseSwitch(
                HiRiseConfig(
                    radix=RADIX, layers=LAYERS, channel_multiplicity=4
                )
            ),
            cycles,
            trials,
        )
        print(f" {reference_rate:.0f} cycles/s")
        report["reference_kernel"] = {
            "cycles_per_sec": round(reference_rate, 1),
            "normalized": reference_rate / calibration,
            "speedup": round(headline / reference_rate, 2),
            "note": (
                "frozen seed arbitration kernel running on the optimised "
                "network layer (ports/flits), so this understates the "
                "end-to-end speedup over the seed commit"
            ),
        }
    return report


def check_regression(report: dict, committed_path: Path) -> int:
    """Compare normalised scores against the committed report. 0 = pass."""
    if not committed_path.exists():
        print(f"no committed baseline at {committed_path}; nothing to check")
        return 0
    committed = json.loads(committed_path.read_text())
    failures = []
    for name, entry in committed.get("benchmarks", {}).items():
        current = report["benchmarks"].get(name)
        if current is None:
            failures.append(f"{name}: missing from current run")
            continue
        floor = entry["normalized"] * (1.0 - REGRESSION_TOLERANCE)
        status = "ok" if current["normalized"] >= floor else "REGRESSION"
        print(
            f"  {name}: normalized {current['normalized']:.3g} "
            f"vs committed {entry['normalized']:.3g} ({status})"
        )
        if current["normalized"] < floor:
            failures.append(
                f"{name}: {current['normalized']:.3g} < floor {floor:.3g}"
            )
    if failures:
        print("perf check FAILED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("perf check passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--cycles", type=int, default=6000,
        help="simulated cycles per trial (default 6000)",
    )
    parser.add_argument(
        "--trials", type=int, default=3,
        help="trials per benchmark, best kept (default 3)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI mode: 1500 cycles, 2 trials",
    )
    parser.add_argument(
        "--reference", action="store_true",
        help="also benchmark the frozen seed kernel for the speedup ratio",
    )
    parser.add_argument(
        "--check", action="store_true",
        help=f"fail on a >{REGRESSION_TOLERANCE:.0%} normalized regression "
             "against the committed JSON (does not overwrite it)",
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT,
        help="where to write (or check against) the JSON report",
    )
    args = parser.parse_args(argv)
    if args.cycles < 1:
        parser.error("--cycles must be >= 1")
    if args.trials < 1:
        parser.error("--trials must be >= 1")
    cycles = 1500 if args.quick else args.cycles
    trials = 2 if args.quick else args.trials

    print(f"benchmarking ({cycles} cycles x {trials} trials per model):")
    report = run_benchmarks(cycles, trials, include_reference=args.reference)
    print(f"calibration score: {report['calibration_score']:.3g} ops/s")

    if args.check:
        return check_regression(report, args.output)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

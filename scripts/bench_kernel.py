#!/usr/bin/env python
"""Cycle-kernel throughput benchmark (simulated cycles per wall-clock second).

Measures the hot cycle loop of every switch model at saturation (uniform
random traffic, load 1.0) with traffic fully pre-staged outside the timed
region, so the numbers isolate the arbitrate/transmit kernel itself:

* the flat 2D Swizzle-Switch and the 3D folded switch baselines,
* Hi-Rise at 1, 2, and 4 channels (the headline 64-port, 4-layer config),
* optionally (``--reference``) the frozen seed kernel on the headline
  config, giving the like-for-like speedup of the fast-path kernel.

Raw cycles/s are machine-dependent, so every run also times a fixed
integer busy-loop (the *calibration score*) and reports each benchmark
normalised by it.  ``--check`` compares normalised scores against the
committed ``BENCH_kernel.json`` and fails on a >30% regression, which is
what the CI perf-smoke job runs (with ``--quick``).

Every run also measures the observability overhead on the headline
config: tracing **off** (the headline benchmark itself — the untraced
kernel carries only one ``tracer is None`` branch per cycle) and tracing
**on**, both for the legacy row capture (a ``SwitchTracer`` recording
every event) and for the binary columnar capture (a full-fidelity
``BinaryTracer``, interleaved on/off pairs).  ``--check`` additionally
gates the tracing-off normalised score at <2% below the committed PR 1
fast-path baseline, so tracing support can never tax untraced runs, and
gates the binary tracing-on overhead at the 10% budget (a within-run
ratio, so machine-independent).  Every timed region runs with the
cyclic GC paused — a collection landing inside one side of an on/off
pair would otherwise dwarf the effects these gates measure.  The runtime invariant checker (``repro.check``) is
measured the same way: invariants-off is the headline benchmark itself
(covered by the same gate), and the invariants-on overhead is reported
alongside the tracing numbers.  The self-profiling counters
(``repro.obs.perf.PerfCounters``) get the same treatment: perf-off is
the headline benchmark (one ``perf is None`` branch, covered by the 2%
gate) and the perf-on overhead at the default sampling stride is gated
at 5%, again as a min-over-rounds within-run ratio.  ``--ledger FILE``
additionally appends the run's headline metrics to an append-only
``repro.perf/v1`` cross-run history (see ``python -m repro perf``).

With ``--fleet`` the batched structure-of-arrays fleet kernel
(:mod:`repro.core.fleet`) is benchmarked at B=32 lanes against the
scalar kernel on the same saturation config, writing ``BENCH_fleet.json``;
``--fleet --check`` gates the aggregate speedup at 5x (the within-run
ratio of adjacent trials, so the gate is machine-independent).

Usage:
    python scripts/bench_kernel.py                  # full run, write JSON
    python scripts/bench_kernel.py --quick --check  # CI regression gate
    python scripts/bench_kernel.py --fleet-only     # fleet vs scalar only
"""

import argparse
import contextlib
import gc
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.config import HiRiseConfig  # noqa: E402
from repro.core.hirise import HiRiseSwitch  # noqa: E402
from repro.core.reference import ReferenceHiRiseSwitch  # noqa: E402
from repro.switches import FoldedSwitch3D, SwizzleSwitch2D  # noqa: E402
from repro.traffic.uniform import UniformRandomTraffic  # noqa: E402

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_kernel.json"
DEFAULT_FLEET_OUTPUT = REPO_ROOT / "BENCH_fleet.json"
RADIX = 64
LAYERS = 4
TRAFFIC_SEED = 7
REGRESSION_TOLERANCE = 0.30
#: Lanes in the fleet benchmark (B switch instances per numpy op).
FLEET_LANES = 32
#: Minimum aggregate-cycles/s advantage of the fleet kernel over the
#: scalar fast kernel at B=32, gated by ``--fleet --check`` in CI.  The
#: ratio is measured within one run (adjacent trials), so it is
#: machine-independent in a way absolute cycles/s are not.
FLEET_SPEEDUP_FLOOR = 5.0
#: First lane's traffic seed; lane ``i`` uses ``FLEET_SEED + i``.
FLEET_SEED = 100
#: Maximum tolerated tracing-off normalised shortfall vs the committed
#: PR 1 fast-path baseline (the zero-cost-when-disabled contract).
TRACING_OFF_TOLERANCE = 0.02
#: Maximum tolerated binary-tracing-on overhead at full fidelity
#: (``BinaryTracer(capacity=None)``) on the headline saturation
#: benchmark.  Measured as a within-run interleaved on/off ratio, so
#: the gate is machine-independent.
TRACEBIN_OVERHEAD_BUDGET = 0.10
#: Maximum tolerated overhead of attached :class:`repro.obs.perf.PerfCounters`
#: at the default sampling stride, measured the same interleaved way.
#: The perf-off path is the headline benchmark itself (one ``perf is
#: None`` branch) and is covered by the tracing-off gate.
PERF_OVERHEAD_BUDGET = 0.05
#: The fast-path kernel's committed normalised score on hirise_64x4_c4
#: as of the PR that introduced it (pre-observability), the reference
#: point for the tracing-off overhead gate.
PR1_COMMIT_NORMALIZED = 0.00031593481937207705
#: Control benchmarks from the same committed run: neither touches the
#: Hi-Rise kernel, so their normalised drift between that run and the
#: current one measures machine state (load, cache pressure), not
#: observability overhead.  The tracing-off gate divides the drift out.
PR1_COMMIT_CONTROLS = {
    "swizzle2d_64": 0.0002975547147511787,
    "folded3d_64x4": 0.0002712424950848571,
}

#: Headline result recorded for posterity: the growth seed's kernel
#: (tuple-keyed dicts, nested closures, eager flit expansion all the way
#: down) measured 1471 cycles/s on the 64-port 4-layer 4-channel
#: saturation benchmark under this exact harness on the machine that
#: produced the committed BENCH_kernel.json.
SEED_COMMIT_CYCLES_PER_SEC = 1471.0


def make_benchmarks():
    """Name -> zero-argument switch factory, headline config last."""
    return {
        "swizzle2d_64": lambda: SwizzleSwitch2D(RADIX),
        "folded3d_64x4": lambda: FoldedSwitch3D(RADIX, LAYERS),
        "hirise_64x4_c1": lambda: HiRiseSwitch(
            HiRiseConfig(radix=RADIX, layers=LAYERS, channel_multiplicity=1)
        ),
        "hirise_64x4_c2": lambda: HiRiseSwitch(
            HiRiseConfig(radix=RADIX, layers=LAYERS, channel_multiplicity=2)
        ),
        "hirise_64x4_c4": lambda: HiRiseSwitch(
            HiRiseConfig(radix=RADIX, layers=LAYERS, channel_multiplicity=4)
        ),
    }


@contextlib.contextmanager
def gc_paused():
    """Pause the cyclic collector around a timed region.

    Every timed region in this harness runs under this guard: a GC pass
    landing inside one side of an on/off comparison skews tight (2-10%)
    overhead gates by far more than the effect being measured.
    """
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def calibration_score(trials: int = 3) -> float:
    """Fixed integer busy-loop throughput (iterations per second).

    Used to normalise kernel throughput across machines: the regression
    gate compares cycles/s *per calibration unit*, so a slower CI runner
    does not read as a kernel regression.
    """
    iterations = 2_000_000
    best = 0.0
    for _ in range(trials):
        accumulator = 0
        with gc_paused():
            start = time.perf_counter()
            for i in range(iterations):
                accumulator += i & 7
            elapsed = time.perf_counter() - start
        best = max(best, iterations / elapsed)
    return best


def bench_switch(make_switch, cycles: int, trials: int) -> float:
    """Best-of-``trials`` simulated cycles per second at saturation.

    Traffic is generated and expanded into per-cycle packet lists before
    the clock starts; the timed region is injection + ``step`` only.
    """
    best = 0.0
    for _ in range(trials):
        switch = make_switch()
        traffic = UniformRandomTraffic(
            switch.num_ports, load=1.0, seed=TRAFFIC_SEED
        )
        staged = [
            list(traffic.packets_for_cycle(cycle)) for cycle in range(cycles)
        ]
        inject_many = getattr(switch, "inject_many", None)
        step = switch.step
        with gc_paused():
            start = time.perf_counter()
            if inject_many is not None:
                for cycle in range(cycles):
                    inject_many(staged[cycle])
                    step(cycle)
            else:
                inject = switch.inject
                for cycle in range(cycles):
                    for packet in staged[cycle]:
                        inject(packet)
                    step(cycle)
            elapsed = time.perf_counter() - start
        best = max(best, cycles / elapsed)
    return best


def bench_normalized(make_switch, cycles: int, trials: int):
    """Best-of-``trials`` throughput with a *per-trial* calibration.

    Each trial re-times the calibration busy-loop immediately before the
    kernel, so transient machine contention — which slows both by the
    same factor — cancels in the normalised ratio.  The 2% tracing gate
    needs this; a single start-of-run calibration cannot see contention
    that arrives minutes later, and on a shared machine that reads as a
    20%+ phantom regression.  Returns ``(cycles_per_sec, normalized)``
    from the trial with the best normalised score.
    """
    best_norm = 0.0
    best_rate = 0.0
    for _ in range(trials):
        calibration = calibration_score(trials=1)
        rate = bench_switch(make_switch, cycles, 1)
        normalized = rate / calibration
        if normalized > best_norm:
            best_norm, best_rate = normalized, rate
    return best_rate, best_norm


def run_benchmarks(cycles: int, trials: int, include_reference: bool) -> dict:
    calibration = calibration_score()
    report = {
        "cycles": cycles,
        "trials": trials,
        "calibration_score": calibration,
        "benchmarks": {},
    }
    for name, factory in make_benchmarks().items():
        print(f"  {name} ...", end="", flush=True)
        rate = bench_switch(factory, cycles, trials)
        report["benchmarks"][name] = {
            "cycles_per_sec": round(rate, 1),
            "normalized": rate / calibration,
        }
        print(f" {rate:.0f} cycles/s")
    headline = report["benchmarks"]["hirise_64x4_c4"]["cycles_per_sec"]
    report["seed_commit_baseline"] = {
        "cycles_per_sec": SEED_COMMIT_CYCLES_PER_SEC,
        "speedup": round(headline / SEED_COMMIT_CYCLES_PER_SEC, 2),
        "note": (
            "seed kernel as committed (pre-refactor tree), same harness "
            "and machine as the committed benchmark numbers"
        ),
    }
    # Observability overhead on the headline config.  Tracing-off IS the
    # headline benchmark (an untraced switch carries the whole tracing
    # machinery dormant); tracing-on re-runs it with a recording tracer.
    # Both sides get extra trials: the gate below is a 2% bound, so the
    # best-of estimator needs tighter convergence than the 30% gate.
    from repro.obs.trace import SwitchTracer

    tracing_trials = max(trials, 3)
    tracers = []

    def untraced_factory():
        return HiRiseSwitch(
            HiRiseConfig(radix=RADIX, layers=LAYERS, channel_multiplicity=4)
        )

    def traced_factory():
        tracer = SwitchTracer(capacity=None)
        tracers.append(tracer)
        return HiRiseSwitch(
            HiRiseConfig(radix=RADIX, layers=LAYERS, channel_multiplicity=4),
            tracer=tracer,
        )

    gate_controls = {
        "swizzle2d_64": lambda: SwizzleSwitch2D(RADIX),
        "folded3d_64x4": lambda: FoldedSwitch3D(RADIX, LAYERS),
    }
    print("  hirise_64x4_c4 (untraced, gate) ...", end="", flush=True)
    off_rate = 0.0
    off_normalized = report["benchmarks"]["hirise_64x4_c4"]["normalized"]
    off_vs_controls = {name: 0.0 for name in gate_controls}
    for _ in range(tracing_trials):
        trial_calibration = calibration_score(trials=1)
        rate = bench_switch(untraced_factory, cycles, 1)
        off_rate = max(off_rate, rate)
        off_normalized = max(off_normalized, rate / trial_calibration)
        # Pair each gate trial with adjacent control-kernel runs: both
        # sides are dict-heavy Python switch kernels, so contention that
        # the integer busy-loop cannot see cancels in the ratio.
        for name, factory in gate_controls.items():
            control_rate = bench_switch(factory, cycles, 1)
            off_vs_controls[name] = max(
                off_vs_controls[name], rate / control_rate
            )
    print(f" {off_rate:.0f} cycles/s")
    print("  hirise_64x4_c4 (traced) ...", end="", flush=True)
    traced_rate, on_normalized = bench_normalized(
        traced_factory, cycles, tracing_trials
    )
    print(f" {traced_rate:.0f} cycles/s")
    report["tracing"] = {
        "off_cycles_per_sec": round(off_rate, 1),
        "off_normalized": off_normalized,
        "off_vs_controls": {
            name: round(ratio, 4)
            for name, ratio in off_vs_controls.items()
        },
        "on_cycles_per_sec": round(traced_rate, 1),
        "on_normalized": on_normalized,
        "on_overhead_frac": round(1.0 - on_normalized / off_normalized, 4),
        "events_per_trial": len(tracers[-1].events),
        "pr1_committed_normalized": PR1_COMMIT_NORMALIZED,
        "off_vs_pr1_baseline": off_normalized / PR1_COMMIT_NORMALIZED,
    }

    # Binary columnar tracing (repro.obs.tracebin) on the headline
    # config at full fidelity (capacity=None, no decimation).  Off and
    # on trials interleave so machine contention hits both sides; the
    # within-run on/off ratio is what --check gates at the 10% budget.
    try:
        from repro.obs.tracebin import BinaryTracer
    except ImportError:
        BinaryTracer = None
    bin_section = {"skipped": "numpy not available"}
    if BinaryTracer is not None:
        try:
            BinaryTracer(capacity=None)
        except RuntimeError:
            BinaryTracer = None
    if BinaryTracer is not None:
        bin_tracers = []

        def bin_traced_factory():
            tracer = BinaryTracer(capacity=None)
            # Keep only the most recent tracer (for events_per_trial):
            # each full-fidelity tracer pins the whole run's capture
            # (tens of MB), and letting a dozen accumulate skews the
            # allocator against later traced trials.
            bin_tracers[:] = [tracer]
            return HiRiseSwitch(
                HiRiseConfig(
                    radix=RADIX, layers=LAYERS, channel_multiplicity=4
                ),
                tracer=tracer,
            )

        # Overhead converges from above as runs lengthen (fixed
        # per-trial costs — allocator warm-up, first-touch growth of the
        # capture buffers — amortize away), so the gate measures at a
        # pinned floor of 6000 cycles even under --quick; shorter runs
        # overstate the steady-state capture cost.
        #
        # Shared/virtualised runners add a second distortion: bursts of
        # host contention that stretch whole stretches of wall-clock.
        # Interference can only *slow* a trial, so the measurement runs
        # several independent rounds of interleaved off/on pairs and
        # gates the cleanest round (minimum overhead across rounds) —
        # the same reasoning as timeit's min-of-repeats, applied to the
        # on/off ratio.  Every round is recorded in the report so a
        # noisy run is visible.
        bin_cycles = max(cycles, 6000)
        rounds, pairs_per_round = 4, max(trials, 3)
        print(f"  hirise_64x4_c4 (binary traced, {rounds} rounds x "
              f"{pairs_per_round} pairs x {bin_cycles} cycles) ...",
              end="", flush=True)
        round_overheads = []
        bin_off = bin_on = 0.0
        for _ in range(rounds):
            round_off = round_on = 0.0
            for _ in range(pairs_per_round):
                round_off = max(
                    round_off,
                    bench_switch(untraced_factory, bin_cycles, 1),
                )
                round_on = max(
                    round_on,
                    bench_switch(bin_traced_factory, bin_cycles, 1),
                )
            round_overheads.append(1.0 - round_on / round_off)
            if round_overheads[-1] == min(round_overheads):
                bin_off, bin_on = round_off, round_on
        bin_overhead = min(round_overheads)
        print(f" {bin_on:.0f} cycles/s (off {bin_off:.0f}, "
              f"overhead {bin_overhead:.1%}; rounds "
              f"{', '.join(f'{o:.1%}' for o in round_overheads)})")
        bin_section = {
            "off_cycles_per_sec": round(bin_off, 1),
            "on_cycles_per_sec": round(bin_on, 1),
            "on_overhead_frac": round(bin_overhead, 4),
            "round_overheads": [round(o, 4) for o in round_overheads],
            "overhead_budget": TRACEBIN_OVERHEAD_BUDGET,
            "events_per_trial": len(bin_tracers[-1]),
            "cycles": bin_cycles,
            "capacity": None,
            "note": (
                "full-fidelity BinaryTracer (capacity=None, stride 1) "
                "vs untraced, interleaved best-of pairs with the GC "
                "paused at a pinned >=6000-cycle floor; rounds repeat "
                "the measurement and the cleanest round (min overhead) "
                "is the --check gate — host interference only ever "
                "inflates a round"
            ),
        }
    report["tracing_bin"] = bin_section

    # Self-profiling counters (repro.obs.perf) on the headline config at
    # the default sampling stride.  Same methodology as the binary-trace
    # gate: independent rounds of interleaved off/on pairs at a pinned
    # cycle floor with the GC paused, gating the cleanest round.
    from repro.obs.perf import DEFAULT_STRIDE, PerfCounters

    perf_holder = []

    def perf_factory():
        counters = PerfCounters(stride=DEFAULT_STRIDE)
        perf_holder[:] = [counters]
        return HiRiseSwitch(
            HiRiseConfig(radix=RADIX, layers=LAYERS, channel_multiplicity=4),
            perf=counters,
        )

    perf_cycles = max(cycles, 6000)
    perf_rounds, perf_pairs = 4, max(trials, 3)
    print(f"  hirise_64x4_c4 (perf counters, stride {DEFAULT_STRIDE}, "
          f"{perf_rounds} rounds x {perf_pairs} pairs x {perf_cycles} "
          f"cycles) ...", end="", flush=True)
    perf_round_overheads = []
    perf_off = perf_on = 0.0
    for _ in range(perf_rounds):
        round_off = round_on = 0.0
        for _ in range(perf_pairs):
            round_off = max(
                round_off, bench_switch(untraced_factory, perf_cycles, 1)
            )
            round_on = max(
                round_on, bench_switch(perf_factory, perf_cycles, 1)
            )
        perf_round_overheads.append(1.0 - round_on / round_off)
        if perf_round_overheads[-1] == min(perf_round_overheads):
            perf_off, perf_on = round_off, round_on
    perf_overhead = min(perf_round_overheads)
    counters = perf_holder[-1]
    print(f" {perf_on:.0f} cycles/s (off {perf_off:.0f}, "
          f"overhead {perf_overhead:.1%}; rounds "
          f"{', '.join(f'{o:.1%}' for o in perf_round_overheads)})")
    report["perf_counters"] = {
        "off_cycles_per_sec": round(perf_off, 1),
        "on_cycles_per_sec": round(perf_on, 1),
        "on_overhead_frac": round(perf_overhead, 4),
        "round_overheads": [round(o, 4) for o in perf_round_overheads],
        "overhead_budget": PERF_OVERHEAD_BUDGET,
        "stride": DEFAULT_STRIDE,
        "cycles": perf_cycles,
        "cycles_sampled": counters.cycles_sampled,
        "phase_fractions": {
            phase: round(frac, 4)
            for phase, frac in counters.phase_fractions().items()
        },
        "note": (
            "PerfCounters attached at the default stride vs unattached, "
            "interleaved best-of pairs with the GC paused at a pinned "
            ">=6000-cycle floor; the cleanest round (min overhead) is "
            "the --check gate.  The perf-off path is the headline "
            "benchmark and is covered by the tracing-off gate."
        ),
    }

    # Runtime invariant checking (repro.check) on the headline config.
    # Checking-off is, like tracing-off, the headline benchmark itself
    # (an unchecked switch carries only one ``invariants is None`` branch
    # per cycle) and is covered by the same 2% gate above; checking-on
    # re-runs the kernel with a full InvariantChecker verifying every
    # cycle, which is expected to be expensive — it is a debugging and
    # fuzzing mode, not a production path.
    from repro.check.invariants import InvariantChecker

    def checked_factory():
        return HiRiseSwitch(
            HiRiseConfig(radix=RADIX, layers=LAYERS, channel_multiplicity=4),
            invariants=InvariantChecker(),
        )

    print("  hirise_64x4_c4 (invariants on) ...", end="", flush=True)
    checked_rate, checked_normalized = bench_normalized(
        checked_factory, cycles, tracing_trials
    )
    print(f" {checked_rate:.0f} cycles/s")
    report["invariants"] = {
        "on_cycles_per_sec": round(checked_rate, 1),
        "on_normalized": checked_normalized,
        "on_overhead_frac": round(
            1.0 - checked_normalized / off_normalized, 4
        ),
        "note": (
            "invariants-off is the headline benchmark and is gated by "
            "the tracing-off control-drift budget; invariants-on is a "
            "fuzzing/debug mode and is reported, not gated"
        ),
    }

    if include_reference:
        print("  reference kernel (hirise_64x4_c4) ...", end="", flush=True)
        reference_rate = bench_switch(
            lambda: ReferenceHiRiseSwitch(
                HiRiseConfig(
                    radix=RADIX, layers=LAYERS, channel_multiplicity=4
                )
            ),
            cycles,
            trials,
        )
        print(f" {reference_rate:.0f} cycles/s")
        report["reference_kernel"] = {
            "cycles_per_sec": round(reference_rate, 1),
            "normalized": reference_rate / calibration,
            "speedup": round(headline / reference_rate, 2),
            "note": (
                "frozen seed arbitration kernel running on the optimised "
                "network layer (ports/flits), so this understates the "
                "end-to-end speedup over the seed commit"
            ),
        }
    return report


def stage_fleet_traffic(num_lanes: int, cycles: int):
    """Per-cycle packed record batches for every lane, built off the clock.

    Mirrors the scalar protocol, where fully-constructed ``Packet``
    objects are staged before the clock starts: here the per-cycle rows
    are packed into the kernel's ``inject_packed`` form (sorted queue
    ids + int32 ring records + per-lane flit totals), so the timed
    region isolates the batched inject + arbitrate kernel.
    """
    import numpy as np

    traffics = [
        UniformRandomTraffic(RADIX, load=1.0, seed=FLEET_SEED + lane)
        for lane in range(num_lanes)
    ]
    staged = []
    for cycle in range(cycles):
        rows = [
            (lane, p.src, p.dst, p.num_flits, p.packet_id)
            for lane, traffic in enumerate(traffics)
            for p in traffic.packets_for_cycle(cycle)
        ]
        if not rows:
            staged.append(None)
            continue
        arr = np.array(rows, dtype=np.int64)
        if (arr[:, 3:].max() >> 31) or (cycle >> 31):
            raise OverflowError("fleet ring records are 32-bit")
        gid = arr[:, 0] * RADIX + arr[:, 1]
        if not (gid[1:] > gid[:-1]).all():
            raise AssertionError(
                "uniform traffic must inject at most one packet per "
                "source queue per cycle, in scan order"
            )
        recs = np.empty((gid.size, 4), dtype=np.int32)
        recs[:, 0] = arr[:, 2]
        recs[:, 1] = arr[:, 3]
        recs[:, 2] = cycle
        recs[:, 3] = arr[:, 4]
        lane_flits = np.bincount(
            arr[:, 0], weights=arr[:, 3], minlength=num_lanes
        ).astype(np.int64)
        staged.append((gid, recs, lane_flits))
    return staged


def run_fleet_benchmark(cycles: int, trials: int) -> dict:
    """Fleet (B=32) vs scalar on the headline saturation config.

    Scalar and fleet trials interleave so transient machine contention
    hits both sides; the reported speedup is best-fleet over best-scalar
    in *aggregate* simulated lane-cycles per second.
    """
    from repro.core.fleet import FleetKernel

    config = HiRiseConfig(
        radix=RADIX, layers=LAYERS, channel_multiplicity=4
    )
    staged = stage_fleet_traffic(FLEET_LANES, cycles)
    calibration = calibration_score()

    def scalar_factory():
        return HiRiseSwitch(config)

    best_scalar = 0.0
    best_fleet = 0.0
    for _ in range(trials):
        best_scalar = max(
            best_scalar, bench_switch(scalar_factory, cycles, 1)
        )
        kernel = FleetKernel(config, FLEET_LANES)
        inject_packed = kernel.inject_packed
        step = kernel.step
        with gc_paused():
            start = time.perf_counter()
            for cycle in range(cycles):
                batch = staged[cycle]
                if batch is not None:
                    inject_packed(*batch)
                step(cycle)
            elapsed = time.perf_counter() - start
        best_fleet = max(best_fleet, FLEET_LANES * cycles / elapsed)
    speedup = best_fleet / best_scalar
    return {
        "cycles": cycles,
        "trials": trials,
        "lanes": FLEET_LANES,
        "calibration_score": calibration,
        "scalar": {
            "cycles_per_sec": round(best_scalar, 1),
            "normalized": best_scalar / calibration,
        },
        "fleet": {
            "aggregate_lane_cycles_per_sec": round(best_fleet, 1),
            "us_per_fleet_cycle": round(
                1e6 * FLEET_LANES / best_fleet, 1
            ),
            "normalized": best_fleet / calibration,
        },
        "speedup": round(speedup, 2),
        "speedup_floor": FLEET_SPEEDUP_FLOOR,
        "note": (
            "speedup = aggregate fleet lane-cycles/s over scalar "
            "cycles/s, adjacent best-of trials on the 64-port 4-layer "
            "c=4 saturation benchmark with pre-staged traffic"
        ),
    }


def check_fleet(report: dict, committed_path: Path) -> int:
    """Gate the measured fleet speedup at the floor.  0 = pass.

    The within-run speedup ratio is the gate; committed normalised
    scores are printed for drift visibility but not gated (the 30%
    kernel gate already covers absolute regressions on the scalar
    side, and the ratio covers the fleet side).
    """
    speedup = report["speedup"]
    status = "ok" if speedup >= FLEET_SPEEDUP_FLOOR else "REGRESSION"
    print(
        f"  fleet speedup at B={report['lanes']}: {speedup:.2f}x "
        f"(floor {FLEET_SPEEDUP_FLOOR:.1f}x, {status})"
    )
    if committed_path.exists():
        committed = json.loads(committed_path.read_text())
        print(
            f"  committed speedup {committed.get('speedup')}x, "
            f"fleet normalized {report['fleet']['normalized']:.3g} vs "
            f"committed {committed.get('fleet', {}).get('normalized', 0):.3g}"
        )
    if speedup < FLEET_SPEEDUP_FLOOR:
        print(
            f"fleet perf check FAILED: {speedup:.2f}x < "
            f"{FLEET_SPEEDUP_FLOOR:.1f}x floor"
        )
        return 1
    print("fleet perf check passed")
    return 0


def check_regression(report: dict, committed_path: Path) -> int:
    """Compare normalised scores against the committed report. 0 = pass."""
    if not committed_path.exists():
        print(f"no committed baseline at {committed_path}; nothing to check")
        return 0
    committed = json.loads(committed_path.read_text())
    failures = []
    for name, entry in committed.get("benchmarks", {}).items():
        current = report["benchmarks"].get(name)
        if current is None:
            failures.append(f"{name}: missing from current run")
            continue
        floor = entry["normalized"] * (1.0 - REGRESSION_TOLERANCE)
        status = "ok" if current["normalized"] >= floor else "REGRESSION"
        print(
            f"  {name}: normalized {current['normalized']:.3g} "
            f"vs committed {entry['normalized']:.3g} ({status})"
        )
        if current["normalized"] < floor:
            failures.append(
                f"{name}: {current['normalized']:.3g} < floor {floor:.3g}"
            )
    tracing = report.get("tracing")
    if tracing is not None:
        # Calibration cancels CPU speed but the integer busy-loop cannot
        # see contention the way a dict-heavy kernel feels it, so the
        # gate also compares against control switch kernels measured
        # adjacent to the gate trials (ratio now vs ratio at the PR 1
        # commit).  A real tracing-off regression depresses EVERY view;
        # the gate fails only when the raw ratio and all control-relative
        # ratios fall below the floor.
        views = {"raw": tracing["off_vs_pr1_baseline"]}
        for name, committed_score in PR1_COMMIT_CONTROLS.items():
            observed = tracing.get("off_vs_controls", {}).get(name)
            if observed is None:
                continue
            views[f"vs {name}"] = (
                observed / (PR1_COMMIT_NORMALIZED / committed_score)
            )
        ratio = max(views.values())
        floor = 1.0 - TRACING_OFF_TOLERANCE
        status = "ok" if ratio >= floor else "REGRESSION"
        detail = ", ".join(
            f"{name} {value:.3f}x" for name, value in views.items()
        )
        print(
            f"  tracing-off vs PR 1 baseline: {ratio:.3f}x best view "
            f"({detail}; floor {floor:.2f}x, {status}); "
            f"tracing-on overhead {tracing['on_overhead_frac']:.1%}"
        )
        if ratio < floor:
            failures.append(
                f"tracing-off is more than {TRACING_OFF_TOLERANCE:.0%} "
                f"below the PR 1 fast-path baseline in every view "
                f"({detail})"
            )
    tracing_bin = report.get("tracing_bin")
    if tracing_bin is not None and "on_overhead_frac" in tracing_bin:
        overhead = tracing_bin["on_overhead_frac"]
        status = (
            "ok" if overhead <= TRACEBIN_OVERHEAD_BUDGET else "REGRESSION"
        )
        print(
            f"  binary tracing-on overhead: {overhead:.1%} "
            f"(budget {TRACEBIN_OVERHEAD_BUDGET:.0%}, {status}; "
            f"{tracing_bin['events_per_trial']} events/trial at "
            f"full fidelity)"
        )
        if overhead > TRACEBIN_OVERHEAD_BUDGET:
            failures.append(
                f"binary tracing-on overhead {overhead:.1%} exceeds "
                f"the {TRACEBIN_OVERHEAD_BUDGET:.0%} budget"
            )
    perf_section = report.get("perf_counters")
    if perf_section is not None and "on_overhead_frac" in perf_section:
        overhead = perf_section["on_overhead_frac"]
        status = "ok" if overhead <= PERF_OVERHEAD_BUDGET else "REGRESSION"
        print(
            f"  perf-counters-on overhead: {overhead:.1%} "
            f"(budget {PERF_OVERHEAD_BUDGET:.0%}, {status}; "
            f"stride {perf_section['stride']}, "
            f"{perf_section['cycles_sampled']} cycles sampled)"
        )
        if overhead > PERF_OVERHEAD_BUDGET:
            failures.append(
                f"perf-counters-on overhead {overhead:.1%} exceeds "
                f"the {PERF_OVERHEAD_BUDGET:.0%} budget"
            )
    invariants = report.get("invariants")
    if invariants is not None:
        # Informational: the checked kernel is a fuzzing/debug mode.
        # The zero-cost-when-disabled contract is what the gate above
        # enforces (the unchecked kernel IS the headline benchmark).
        print(
            f"  invariants-on overhead "
            f"{invariants['on_overhead_frac']:.1%} "
            f"({invariants['on_cycles_per_sec']:.0f} cycles/s; "
            f"reported, not gated)"
        )
    if failures:
        print("perf check FAILED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("perf check passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--cycles", type=int, default=6000,
        help="simulated cycles per trial (default 6000)",
    )
    parser.add_argument(
        "--trials", type=int, default=3,
        help="trials per benchmark, best kept (default 3)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI mode: 1500 cycles, 2 trials",
    )
    parser.add_argument(
        "--reference", action="store_true",
        help="also benchmark the frozen seed kernel for the speedup ratio",
    )
    parser.add_argument(
        "--check", action="store_true",
        help=f"fail on a >{REGRESSION_TOLERANCE:.0%} normalized regression "
             "against the committed JSON (does not overwrite it)",
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT,
        help="where to write (or check against) the JSON report",
    )
    parser.add_argument(
        "--fleet", action="store_true",
        help=f"also benchmark the batched fleet kernel (B={FLEET_LANES}) "
             f"against the scalar kernel; with --check, gate the "
             f"speedup at {FLEET_SPEEDUP_FLOOR:.0f}x",
    )
    parser.add_argument(
        "--fleet-only", action="store_true",
        help="run only the fleet benchmark (implies --fleet)",
    )
    parser.add_argument(
        "--fleet-cycles", type=int, default=400,
        help="simulated cycles per fleet trial (default 400; the fleet "
             "side simulates lanes x cycles lane-cycles per trial)",
    )
    parser.add_argument(
        "--fleet-output", type=Path, default=DEFAULT_FLEET_OUTPUT,
        help="where to write (or check against) the fleet JSON report",
    )
    parser.add_argument(
        "--ledger", type=Path, default=None,
        help="also append the headline metrics to this repro.perf/v1 "
             "cross-run ledger (see `python -m repro perf`)",
    )
    args = parser.parse_args(argv)
    if args.cycles < 1:
        parser.error("--cycles must be >= 1")
    if args.trials < 1:
        parser.error("--trials must be >= 1")
    if args.fleet_cycles < 1:
        parser.error("--fleet-cycles must be >= 1")
    cycles = 1500 if args.quick else args.cycles
    trials = 2 if args.quick else args.trials
    fleet_cycles = min(args.fleet_cycles, 200) if args.quick \
        else args.fleet_cycles
    run_fleet = args.fleet or args.fleet_only

    exit_code = 0
    if not args.fleet_only:
        print(f"benchmarking ({cycles} cycles x {trials} trials per model):")
        report = run_benchmarks(
            cycles, trials, include_reference=args.reference
        )
        print(f"calibration score: {report['calibration_score']:.3g} ops/s")
        if args.ledger is not None:
            from repro.obs.perf import (
                append_ledger_entry, make_ledger_entry,
            )

            headline_config = HiRiseConfig(
                radix=RADIX, layers=LAYERS, channel_multiplicity=4
            )
            headline_entry = report["benchmarks"]["hirise_64x4_c4"]
            metrics = {
                "cycles_per_sec": headline_entry["cycles_per_sec"],
                "normalized": headline_entry["normalized"],
                "calibration_ops_per_sec": report["calibration_score"],
            }
            for section, metric in (
                ("perf_counters", "perf_on_overhead_frac"),
                ("tracing_bin", "tracebin_on_overhead_frac"),
            ):
                overhead = report.get(section, {}).get("on_overhead_frac")
                if overhead is not None:
                    metrics[metric] = overhead
            append_ledger_entry(args.ledger, make_ledger_entry(
                headline_config,
                f"bench_kernel/saturation_uniform_64x4_c4_{cycles}c",
                metrics,
            ))
            print(f"appended headline metrics to ledger {args.ledger}")
        if args.check:
            exit_code = check_regression(report, args.output)
        else:
            args.output.write_text(json.dumps(report, indent=2) + "\n")
            print(f"wrote {args.output}")

    if run_fleet:
        try:
            from repro.core.fleet import FLEET_AVAILABLE
        except ImportError:
            FLEET_AVAILABLE = False
        if not FLEET_AVAILABLE:
            print("fleet benchmark skipped: numpy not available")
            return exit_code
        print(
            f"fleet benchmark ({FLEET_LANES} lanes x {fleet_cycles} "
            f"cycles x {trials} trials):"
        )
        fleet_report = run_fleet_benchmark(fleet_cycles, trials)
        print(
            f"  scalar {fleet_report['scalar']['cycles_per_sec']:.0f} "
            f"cycles/s, fleet "
            f"{fleet_report['fleet']['aggregate_lane_cycles_per_sec']:.0f} "
            f"lane-cycles/s -> {fleet_report['speedup']:.2f}x"
        )
        if args.check:
            exit_code = max(
                exit_code, check_fleet(fleet_report, args.fleet_output)
            )
        else:
            args.fleet_output.write_text(
                json.dumps(fleet_report, indent=2) + "\n"
            )
            print(f"wrote {args.fleet_output}")
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Scheduler-zoo matrix: CLRG vs LRG vs iSLIP(k) vs MWM, with CI gates.

Runs :func:`repro.harness.schedulers.compare_schedulers` across the
traffic zoo and writes the two artifacts CI uploads:

* ``scheduler-matrix.json`` — the raw ``repro.schedulers/v1`` dict
* ``scheduler-matrix.md``   — the rendered per-pattern markdown tables

``--check`` turns the run into the CI ``scheduler-smoke`` gate:

1. **Schema** — the result validates against ``repro.schedulers/v1``.
2. **Legality** — every matrix cell ran with the matching invariant
   checker attached, checked a nonzero number of cycles, and reported
   zero violations (a violation raises inside the run, so a completed
   matrix already proves this; the gate makes it explicit).
3. **Iteration payoff** — overdriven uniform saturation throughput of
   iSLIP with 4 iterations is at least that of iSLIP with 1 iteration:
   extra request/grant/accept rounds must never lose matching quality.

Usage:
    python scripts/scheduler_matrix.py                 # full matrix
    python scripts/scheduler_matrix.py --quick --check # CI gate
    python scripts/scheduler_matrix.py --out-dir DIR
"""

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.harness.schedulers import (  # noqa: E402
    compare_schedulers,
    render_markdown,
    validate_comparison,
)


def run_matrix(args):
    if args.quick:
        kwargs = dict(
            radix=8, layers=2, channels=2,
            warmup_cycles=150, measure_cycles=800,
        )
    else:
        kwargs = dict(
            radix=16, layers=2, channels=2,
            warmup_cycles=300, measure_cycles=2000,
        )
    return compare_schedulers(
        load=args.load, seed=args.seed, invariants=True,
        saturation=True, saturation_pattern="uniform", **kwargs,
    )


def check_gates(comparison) -> list:
    """Return the list of gate failures (empty means all gates pass)."""
    failures = []
    try:
        validate_comparison(comparison)
    except ValueError as error:
        failures.append(f"schema: {error}")
        return failures

    for pattern, row in comparison["matrix"].items():
        for name, cell in row.items():
            if cell["invariant_violations"] != 0:
                failures.append(
                    f"legality: {pattern}/{name} reported "
                    f"{cell['invariant_violations']} invariant violations"
                )
            if cell["invariant_cycles_checked"] <= 0:
                failures.append(
                    f"legality: {pattern}/{name} ran without the "
                    "matching invariant checker"
                )

    rates = comparison["saturation"]["throughput_packets_per_cycle"]
    if "islip1" not in rates or "islip4" not in rates:
        failures.append(
            "iteration payoff: saturation sweep is missing islip1/islip4"
        )
    elif rates["islip4"] < rates["islip1"]:
        failures.append(
            "iteration payoff: iSLIP-4 saturation "
            f"{rates['islip4']:.4f} pkt/cyc fell below iSLIP-1 "
            f"{rates['islip1']:.4f}"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out-dir", default="scheduler-matrix",
                        help="artifact directory (default ./scheduler-matrix)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--load", type=float, default=0.3)
    parser.add_argument("--quick", action="store_true",
                        help="small radix / short windows for CI")
    parser.add_argument("--check", action="store_true",
                        help="apply the CI gates; exit 1 on failure")
    args = parser.parse_args(argv)

    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    comparison = run_matrix(args)
    markdown = render_markdown(comparison)

    json_path = out_dir / "scheduler-matrix.json"
    md_path = out_dir / "scheduler-matrix.md"
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(comparison, handle, indent=2, sort_keys=True)
        handle.write("\n")
    with open(md_path, "w", encoding="utf-8") as handle:
        handle.write(markdown)
    print(markdown)
    print(f"wrote {json_path} and {md_path}")

    if args.check:
        failures = check_gates(comparison)
        if failures:
            for failure in failures:
                print(f"GATE FAILED: {failure}", file=sys.stderr)
            return 1
        rates = comparison["saturation"]["throughput_packets_per_cycle"]
        print("gates passed: schema valid, zero invariant violations, "
              f"islip4 saturation {rates['islip4']:.4f} >= "
              f"islip1 {rates['islip1']:.4f} pkt/cyc")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""CI service smoke: the sweep daemon's whole robustness story, end to end.

Drives `python -m repro serve` the way CI wants it — fast,
deterministic, loud on failure — and gates the service's headline
claims:

1. **Campaign + cache** — submit a mixed simulate/sweep/audit/chaos
   campaign, collect every result, then submit the identical campaign
   again: the second pass must be 100% cache hits with the simulation
   counter frozen.
2. **Forced worker crash** — a `chaos` job calls `os._exit` in its
   worker on first attempt; the daemon must rebuild the pool, retry,
   and still produce the baseline answer (crash counter > 0).
3. **kill -9 + restart** — the daemon is SIGKILLed mid-campaign and
   restarted on the same state directory; every result (recovered or
   replayed) must be bit-identical to a direct, uninterrupted
   computation of the same specs, with zero re-simulation of work
   that had already settled.
4. **Artifacts** — the write-ahead journal and a Prometheus scrape of
   the service counters land in the out dir for upload.

Usage:
    python scripts/service_smoke.py                # writes into ./service-smoke
    python scripts/service_smoke.py --out-dir DIR
"""

import argparse
import json
import os
import re
import shutil
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service import (  # noqa: E402
    ServiceClient,
    job_fingerprint,
    run_job,
)

SERVE_PATTERN = re.compile(r"serving on [^:]+:(\d+)")


def fail(message):
    print(f"service_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def start_daemon(state_dir, log_path):
    log = open(log_path, "a", encoding="utf-8")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--state", str(state_dir), "--workers", "2", "--max-batch", "2"],
        stdout=subprocess.PIPE, stderr=log, text=True,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
    )
    line = process.stdout.readline()
    log.write(line)
    log.flush()
    match = SERVE_PATTERN.search(line)
    if not match:
        process.kill()
        fail(f"daemon did not start: {line!r}")
    client = ServiceClient("127.0.0.1", int(match.group(1)), timeout=120.0)
    client.wait_until_up(deadline_s=30.0)
    return process, client


def campaign_specs():
    """Small but mixed: every job kind, plus a scripted worker crash."""
    return [
        {"kind": "chaos", "seed": 1},
        {"kind": "chaos", "seed": 2},
        {"kind": "chaos", "seed": 5, "mode": "crash_once"},
        {"kind": "simulate", "load": 0.2, "cycles": 200, "warmup": 20},
        {"kind": "simulate", "load": 0.35, "cycles": 200, "warmup": 20,
         "traffic": "hotspot", "seed": 2},
        {"kind": "sweep", "loads": [0.1, 0.3], "cycles": 120,
         "warmup": 10, "replications": 2},
        {"kind": "audit", "cycles": 150, "warmup": 20, "window": 32},
        {"kind": "fuzz", "seed": 3, "cases": 2, "max_radix": 8},
    ]


def collect(client, baselines):
    """Fetch every fingerprint's result and gate it against baseline."""
    for fingerprint, baseline in baselines.items():
        outcome = client.result(fingerprint=fingerprint, wait_s=600)
        if outcome.get("payload") != baseline:
            fail(f"result diverged from baseline for {fingerprint}:\n"
                 f"  got      {outcome.get('payload')!r}\n"
                 f"  expected {baseline!r}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out-dir", default="service-smoke")
    args = parser.parse_args()
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    state = out_dir / "state"
    log_path = out_dir / "daemon.log"

    specs = campaign_specs()
    print(f"computing {len(specs)} baselines (uninterrupted, direct)...")
    baselines = {job_fingerprint(s): run_job(s) for s in specs}

    # ------------------------------------------------------------------
    # Phase 1: campaign with a forced worker crash, then a pure-cache
    # second pass.
    # ------------------------------------------------------------------
    process, client = start_daemon(state, log_path)
    print(f"phase 1: daemon pid {process.pid}, campaign of {len(specs)}")
    for spec in specs:
        client.submit_with_backpressure(spec)
    collect(client, baselines)
    counters = client.metrics()["counters"]
    if counters["crashes"] < 1:
        fail("the crash_once drill never crashed a worker")
    if counters["simulations"] < len(specs):
        fail(f"expected >= {len(specs)} simulations, "
             f"got {counters['simulations']}")
    print(f"phase 1 ok: {counters['simulations']} computed, "
          f"{counters['crashes']} worker crash(es) survived")

    simulations_before = counters["simulations"]
    for spec in specs:
        response = client.submit(spec)
        if response.get("cache_hit") is not True:
            fail(f"second pass missed the cache for {spec}")
    counters = client.metrics()["counters"]
    if counters["simulations"] != simulations_before:
        fail("second pass re-simulated despite the cache")
    if counters["cache_hits"] < len(specs):
        fail(f"expected >= {len(specs)} cache hits, "
             f"got {counters['cache_hits']}")
    print(f"phase 2 ok: second pass 100% cache hits "
          f"({counters['cache_hits']} hits, simulations frozen at "
          f"{counters['simulations']})")

    # ------------------------------------------------------------------
    # Phase 3: kill -9 mid-campaign on a fresh state, restart, recover.
    # ------------------------------------------------------------------
    client.shutdown()
    process.wait(timeout=60)
    shutil.rmtree(state)

    process, client = start_daemon(state, log_path)
    print(f"phase 3: daemon pid {process.pid}, kill -9 mid-campaign")
    for spec in specs:
        client.submit_with_backpressure(spec)
    deadline = time.monotonic() + 300
    while time.monotonic() < deadline:
        if client.metrics()["counters"]["completed"] >= 2:
            break
        time.sleep(0.05)
    else:
        fail("campaign made no progress before the kill")
    os.kill(process.pid, signal.SIGKILL)
    process.wait(timeout=60)
    print("daemon SIGKILLed; restarting on the same state...")

    process, client = start_daemon(state, log_path)
    collect(client, baselines)
    simulations_before = client.metrics()["counters"]["simulations"]
    for spec in specs:
        response = client.submit(spec)
        if response.get("cache_hit") is not True:
            fail(f"post-recovery pass missed the cache for {spec}")
    counters = client.metrics()["counters"]
    if counters["simulations"] != simulations_before:
        fail("post-recovery pass re-simulated despite the cache")
    print(f"phase 3 ok: recovery bit-identical; restarted daemon "
          f"computed {simulations_before} job(s), served the rest "
          f"from cache")

    # ------------------------------------------------------------------
    # Artifacts: journal + Prometheus scrape.
    # ------------------------------------------------------------------
    metrics = client.metrics()
    (out_dir / "service.prom").write_text(
        str(metrics["prometheus"]), encoding="utf-8"
    )
    (out_dir / "counters.json").write_text(
        json.dumps(metrics["counters"], indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    shutil.copyfile(state / "journal.jsonl", out_dir / "journal.jsonl")
    client.shutdown()
    process.wait(timeout=60)
    print(f"service_smoke: OK (artifacts in {out_dir})")


if __name__ == "__main__":
    main()

"""Setup shim so `pip install -e .` works without the `wheel` package.

All project metadata lives in pyproject.toml; this file only enables
legacy editable installs (`--no-use-pep517` fallback on offline machines).
"""
from setuptools import setup

setup()

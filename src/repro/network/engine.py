"""Cycle-driven simulation engine.

``SwitchModel`` is the interface every switch implementation in this
repository satisfies (2D Swizzle-Switch, 3D folded switch, Hi-Rise).  The
``Simulation`` class couples a traffic source to a switch model and drives
the canonical loop:

    for each cycle:
        generate packets          (traffic source)
        enqueue at input ports    (switch.inject)
        advance the switch        (switch.step -> ejected flits)
        record statistics

Statistics are accumulated only after an optional warm-up period, which is
the standard methodology for measuring saturation throughput and latency.
"""

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Protocol

from repro.network.flit import Flit
from repro.network.packet import Packet


class TrafficSource(Protocol):
    """Anything that can generate packets for a given cycle."""

    def packets_for_cycle(self, cycle: int) -> Iterable[Packet]:
        """Packets generated during ``cycle`` (possibly none)."""
        ...


class SwitchModel(ABC):
    """Common interface of all cycle-accurate switch models."""

    num_ports: int

    @abstractmethod
    def inject(self, packet: Packet) -> None:
        """Hand a generated packet to the source queue of its input port."""

    @abstractmethod
    def step(self, cycle: int) -> List[Flit]:
        """Advance one cycle; return the flits ejected at outputs."""

    @abstractmethod
    def occupancy(self) -> int:
        """Total flits currently inside the switch (buffers + source queues)."""


@dataclass
class SimulationResult:
    """Aggregate results of one simulation run.

    Attributes:
        cycles: Number of measured cycles (after warm-up).
        packets_injected: Packets generated during the measured window.
        packets_ejected: Packets fully delivered during the measured window.
        flits_ejected: Flits delivered during the measured window.
        packet_latencies: Per-packet latency in cycles (generation to tail
            ejection) for packets that completed in the measured window.
        per_input_ejected: Delivered packet count by source port.
        per_input_latency_sum: Sum of delivered packet latencies by source.
        per_output_ejected: Delivered packet count by destination port.
    """

    cycles: int = 0
    packets_injected: int = 0
    packets_ejected: int = 0
    flits_ejected: int = 0
    packet_latencies: List[int] = field(default_factory=list)
    per_input_ejected: Dict[int, int] = field(default_factory=dict)
    per_input_latency_sum: Dict[int, int] = field(default_factory=dict)
    per_output_ejected: Dict[int, int] = field(default_factory=dict)

    @property
    def avg_latency_cycles(self) -> float:
        """Mean packet latency in cycles over the measured window."""
        if not self.packet_latencies:
            return float("nan")
        return sum(self.packet_latencies) / len(self.packet_latencies)

    @property
    def throughput_packets_per_cycle(self) -> float:
        """Aggregate accepted throughput in packets per cycle."""
        if self.cycles == 0:
            return 0.0
        return self.packets_ejected / self.cycles

    @property
    def throughput_flits_per_cycle(self) -> float:
        """Aggregate accepted throughput in flits per cycle."""
        if self.cycles == 0:
            return 0.0
        return self.flits_ejected / self.cycles

    def per_input_throughput(self, num_ports: int) -> List[float]:
        """Delivered packets per cycle for each input port."""
        if self.cycles == 0:
            return [0.0] * num_ports
        return [
            self.per_input_ejected.get(port, 0) / self.cycles
            for port in range(num_ports)
        ]

    def per_input_avg_latency(self, num_ports: int) -> List[float]:
        """Mean delivered-packet latency (cycles) for each input port."""
        result = []
        for port in range(num_ports):
            count = self.per_input_ejected.get(port, 0)
            if count == 0:
                result.append(float("nan"))
            else:
                result.append(self.per_input_latency_sum[port] / count)
        return result


class Simulation:
    """Couples a traffic source to a switch model and runs the cycle loop."""

    def __init__(
        self,
        switch: SwitchModel,
        traffic: TrafficSource,
        warmup_cycles: int = 0,
    ) -> None:
        if warmup_cycles < 0:
            raise ValueError("warm-up must be non-negative")
        self.switch = switch
        self.traffic = traffic
        self.warmup_cycles = warmup_cycles
        self._cycle = 0
        # Tail flits observed before the measurement window opened; their
        # packets must not be counted even if observed again (they cannot
        # be), but packets created during warm-up that finish during the
        # window are counted: the window measures delivered traffic.

    @property
    def cycle(self) -> int:
        """The next cycle to be simulated."""
        return self._cycle

    def run(self, measure_cycles: int, drain: bool = False) -> SimulationResult:
        """Run warm-up plus ``measure_cycles`` measured cycles.

        Args:
            measure_cycles: Number of cycles in the measurement window.
            drain: If True, after the measurement window keep cycling
                (without injecting) until the switch is empty, still
                recording deliveries.  Useful for closed-form workloads
                where every generated packet must be accounted for.

        Returns:
            The accumulated :class:`SimulationResult`.
        """
        result = SimulationResult()
        end_warmup = self._cycle + self.warmup_cycles
        end_measure = end_warmup + measure_cycles

        while self._cycle < end_measure:
            measuring = self._cycle >= end_warmup
            self._tick(result, measuring, inject=True)
        if drain:
            idle_cycles = 0
            while self.switch.occupancy() > 0 and idle_cycles < 100000:
                before = self.switch.occupancy()
                self._tick(result, measuring=True, inject=False)
                idle_cycles = idle_cycles + 1 if self.switch.occupancy() == before else 0
        return result

    def _tick(self, result: SimulationResult, measuring: bool, inject: bool) -> None:
        cycle = self._cycle
        if inject:
            for packet in self.traffic.packets_for_cycle(cycle):
                self.switch.inject(packet)
                if measuring:
                    result.packets_injected += 1
        ejected = self.switch.step(cycle)
        if measuring:
            result.cycles += 1
            result.flits_ejected += len(ejected)
            for flit in ejected:
                if flit.is_tail:
                    result.packets_ejected += 1
                    latency = cycle - flit.created_cycle
                    result.packet_latencies.append(latency)
                    result.per_input_ejected[flit.src] = (
                        result.per_input_ejected.get(flit.src, 0) + 1
                    )
                    result.per_input_latency_sum[flit.src] = (
                        result.per_input_latency_sum.get(flit.src, 0) + latency
                    )
                    result.per_output_ejected[flit.dst] = (
                        result.per_output_ejected.get(flit.dst, 0) + 1
                    )
        self._cycle += 1

"""Cycle-driven simulation engine.

``SwitchModel`` is the interface every switch implementation in this
repository satisfies (2D Swizzle-Switch, 3D folded switch, Hi-Rise).  The
``Simulation`` class couples a traffic source to a switch model and drives
the canonical loop:

    for each cycle:
        generate packets          (traffic source)
        enqueue at input ports    (switch.inject)
        advance the switch        (switch.step -> ejected flits)
        record statistics

Statistics are accumulated only after an optional warm-up period, which is
the standard methodology for measuring saturation throughput and latency.
"""

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Protocol

from repro.network.flit import Flit
from repro.network.packet import Packet

#: Consecutive no-progress drain cycles tolerated before the drain loop
#: declares the switch wedged and raises.  Read at call time so tests can
#: lower it to exercise the failure path.
DRAIN_IDLE_LIMIT = 100_000

#: Default cap on the number of per-packet latency samples retained in
#: ``SimulationResult.packet_latencies``.  Aggregate statistics
#: (``avg_latency_cycles`` and friends) always use exact streaming sums;
#: the sample list exists for distribution plots and exact-trace tests,
#: and decimates deterministically once it outgrows this bound.
DEFAULT_LATENCY_SAMPLE_LIMIT = 1 << 20


class TrafficSource(Protocol):
    """Anything that can generate packets for a given cycle."""

    def packets_for_cycle(self, cycle: int) -> Iterable[Packet]:
        """Packets generated during ``cycle`` (possibly none)."""
        ...


class SwitchModel(ABC):
    """Common interface of all cycle-accurate switch models."""

    num_ports: int

    @abstractmethod
    def inject(self, packet: Packet) -> None:
        """Hand a generated packet to the source queue of its input port."""

    @abstractmethod
    def step(self, cycle: int) -> List[Flit]:
        """Advance one cycle; return the flits ejected at outputs."""

    @abstractmethod
    def occupancy(self) -> int:
        """Total flits currently inside the switch (buffers + source queues)."""


@dataclass
class SimulationResult:
    """Aggregate results of one simulation run.

    Attributes:
        cycles: Number of measured cycles (after warm-up).
        packets_injected: Packets generated during the measured window.
        packets_ejected: Packets fully delivered during the measured window.
        flits_ejected: Flits delivered during the measured window.
        packet_latencies: Per-packet latency samples in cycles (generation
            to tail ejection) for packets that completed in the measured
            window.  Bounded: once the list exceeds
            ``latency_sample_limit`` it is deterministically decimated
            (every other sample kept, sampling stride doubled), so memory
            stays O(limit) on arbitrarily long runs.  Aggregate statistics
            do **not** depend on this list — they come from the exact
            streaming fields below.
        latency_count: Exact number of delivered packets recorded.
        latency_sum: Exact sum of all delivered-packet latencies.
        latency_sumsq: Exact sum of squared latencies (for the variance).
        latency_sample_limit: Sample-list bound (``None`` = unbounded).
        per_input_ejected: Delivered packet count by source port.
        per_input_latency_sum: Sum of delivered packet latencies by source.
        per_output_ejected: Delivered packet count by destination port.
    """

    cycles: int = 0
    packets_injected: int = 0
    packets_ejected: int = 0
    flits_ejected: int = 0
    packet_latencies: List[int] = field(default_factory=list)
    latency_count: int = 0
    latency_sum: int = 0
    latency_sumsq: int = 0
    latency_sample_limit: Optional[int] = DEFAULT_LATENCY_SAMPLE_LIMIT
    per_input_ejected: Dict[int, int] = field(default_factory=dict)
    per_input_latency_sum: Dict[int, int] = field(default_factory=dict)
    per_output_ejected: Dict[int, int] = field(default_factory=dict)
    # Current sampling stride for packet_latencies (1 = keep everything).
    _sample_stride: int = field(default=1, repr=False)

    def record_latency(self, latency: int) -> None:
        """Record one delivered packet's latency.

        Streaming aggregates are always exact; the sample list keeps
        every ``_sample_stride``-th packet and halves itself (doubling
        the stride) whenever it outgrows ``latency_sample_limit``.
        """
        index = self.latency_count
        self.latency_count = index + 1
        self.latency_sum += latency
        self.latency_sumsq += latency * latency
        if index % self._sample_stride == 0:
            samples = self.packet_latencies
            samples.append(latency)
            limit = self.latency_sample_limit
            if limit is not None and len(samples) > limit:
                samples[:] = samples[::2]
                self._sample_stride *= 2

    @property
    def avg_latency_cycles(self) -> float:
        """Mean packet latency in cycles over the measured window (exact)."""
        if self.latency_count:
            return self.latency_sum / self.latency_count
        # Results assembled by hand (tests, analysis helpers) may fill the
        # sample list without going through record_latency.
        if not self.packet_latencies:
            return float("nan")
        return sum(self.packet_latencies) / len(self.packet_latencies)

    @property
    def latency_variance_cycles(self) -> float:
        """Population variance of packet latency over the window (exact)."""
        if not self.latency_count:
            return float("nan")
        mean = self.latency_sum / self.latency_count
        return self.latency_sumsq / self.latency_count - mean * mean

    @property
    def throughput_packets_per_cycle(self) -> float:
        """Aggregate accepted throughput in packets per cycle."""
        if self.cycles == 0:
            return 0.0
        return self.packets_ejected / self.cycles

    @property
    def throughput_flits_per_cycle(self) -> float:
        """Aggregate accepted throughput in flits per cycle."""
        if self.cycles == 0:
            return 0.0
        return self.flits_ejected / self.cycles

    def per_input_throughput(self, num_ports: int) -> List[float]:
        """Delivered packets per cycle for each input port."""
        if self.cycles == 0:
            return [0.0] * num_ports
        return [
            self.per_input_ejected.get(port, 0) / self.cycles
            for port in range(num_ports)
        ]

    def per_input_avg_latency(self, num_ports: int) -> List[float]:
        """Mean delivered-packet latency (cycles) for each input port."""
        result = []
        for port in range(num_ports):
            count = self.per_input_ejected.get(port, 0)
            if count == 0:
                result.append(float("nan"))
            else:
                result.append(self.per_input_latency_sum[port] / count)
        return result

    def to_stats(self, registry, prefix: str = "sim",
                 num_ports: Optional[int] = None) -> None:
        """Export this result onto a :class:`repro.obs.StatsRegistry`.

        Scalars for the window counters, a latency distribution folded in
        from the exact streaming moments, throughput formulas, and —
        when a port count is known or inferable — per-input/per-output
        delivered-packet vectors.
        """
        registry.scalar(f"{prefix}.cycles", "measured cycles").set(self.cycles)
        registry.scalar(
            f"{prefix}.packets_injected", "packets generated in the window"
        ).set(self.packets_injected)
        registry.scalar(
            f"{prefix}.packets_ejected", "packets delivered in the window"
        ).set(self.packets_ejected)
        registry.scalar(
            f"{prefix}.flits_ejected", "flits delivered in the window"
        ).set(self.flits_ejected)
        latency = registry.distribution(
            f"{prefix}.latency", "packet latency (cycles)"
        )
        if self.latency_count:
            samples = self.packet_latencies
            latency.merge_moments(
                self.latency_count, self.latency_sum, self.latency_sumsq,
                min(samples) if samples else None,
                max(samples) if samples else None,
            )
        registry.formula(
            f"{prefix}.throughput_packets_per_cycle",
            lambda reg: (
                reg.get(f"{prefix}.packets_ejected")
                / reg.get(f"{prefix}.cycles")
                if reg.get(f"{prefix}.cycles") else 0.0
            ),
            "accepted throughput (packets/cycle)",
        )
        registry.formula(
            f"{prefix}.throughput_flits_per_cycle",
            lambda reg: (
                reg.get(f"{prefix}.flits_ejected")
                / reg.get(f"{prefix}.cycles")
                if reg.get(f"{prefix}.cycles") else 0.0
            ),
            "accepted throughput (flits/cycle)",
        )
        if num_ports is None:
            observed = list(self.per_input_ejected) + list(self.per_output_ejected)
            num_ports = max(observed) + 1 if observed else 0
        if num_ports:
            registry.vector(
                f"{prefix}.per_input_ejected", num_ports,
                "delivered packets by source port",
            ).load(self.per_input_ejected.get(p, 0) for p in range(num_ports))
            registry.vector(
                f"{prefix}.per_output_ejected", num_ports,
                "delivered packets by destination port",
            ).load(self.per_output_ejected.get(p, 0) for p in range(num_ports))


class Simulation:
    """Couples a traffic source to a switch model and runs the cycle loop."""

    def __init__(
        self,
        switch: SwitchModel,
        traffic: TrafficSource,
        warmup_cycles: int = 0,
        latency_sample_limit: Optional[int] = DEFAULT_LATENCY_SAMPLE_LIMIT,
    ) -> None:
        if warmup_cycles < 0:
            raise ValueError("warm-up must be non-negative")
        if latency_sample_limit is not None and latency_sample_limit < 1:
            raise ValueError("latency sample limit must be >= 1 or None")
        self.switch = switch
        self.traffic = traffic
        self.warmup_cycles = warmup_cycles
        self.latency_sample_limit = latency_sample_limit
        self._cycle = 0
        # Tail flits observed before the measurement window opened; their
        # packets must not be counted even if observed again (they cannot
        # be), but packets created during warm-up that finish during the
        # window are counted: the window measures delivered traffic.

    @property
    def cycle(self) -> int:
        """The next cycle to be simulated."""
        return self._cycle

    def run(self, measure_cycles: int, drain: bool = False) -> SimulationResult:
        """Run warm-up plus ``measure_cycles`` measured cycles.

        Args:
            measure_cycles: Number of cycles in the measurement window.
            drain: If True, after the measurement window keep cycling
                (without injecting) until the switch is empty, still
                recording deliveries.  Useful for closed-form workloads
                where every generated packet must be accounted for.

        Returns:
            The accumulated :class:`SimulationResult`.

        Raises:
            RuntimeError: If, while draining, the switch makes no progress
                for ``DRAIN_IDLE_LIMIT`` consecutive cycles (a wedged
                switch model would otherwise spin silently forever).
        """
        result = SimulationResult(latency_sample_limit=self.latency_sample_limit)
        end_warmup = self._cycle + self.warmup_cycles
        end_measure = end_warmup + measure_cycles

        while self._cycle < end_measure:
            measuring = self._cycle >= end_warmup
            self._tick(result, measuring, inject=True)
        if drain:
            idle_cycles = 0
            while self.switch.occupancy() > 0:
                if idle_cycles >= DRAIN_IDLE_LIMIT:
                    # DrainStallError subclasses RuntimeError, so
                    # existing except/raises sites keep working, while
                    # repro check classifies the stall as a structured
                    # violation instead of crashing the fuzz loop.
                    from repro.check.invariants import DrainStallError

                    message, snapshot = self._drain_stall_message(idle_cycles)
                    raise DrainStallError(
                        message,
                        cycle=self._cycle,
                        idle_cycles=idle_cycles,
                        occupancy=self.switch.occupancy(),
                        snapshot=snapshot,
                    )
                before = self.switch.occupancy()
                self._tick(result, measuring=True, inject=False)
                idle_cycles = idle_cycles + 1 if self.switch.occupancy() == before else 0
        return result

    def _drain_stall_message(self, idle_cycles: int):
        """Telemetry message + snapshot for the drain-stall error.

        Embeds the machine-readable :func:`repro.obs.telemetry_snapshot`
        (per-port occupancy, busy resources with owner and last-grant
        cycle, owned outputs, and — when fault injection is in play —
        the live fault state: failed channels, stuck inputs, pending
        schedule events) and, when the switch is traced, records a
        ``drain_stall`` event so the stall is visible on the timeline.
        A drain stalled by an unrepaired partition is therefore
        diagnosable straight from the error message.
        """
        # Lazy import: the engine stays importable without the obs
        # package in the picture for every hot-loop user.
        from repro.obs.snapshot import render_snapshot, telemetry_snapshot
        from repro.obs.trace import DRAIN_STALL

        switch = self.switch
        occupancy = switch.occupancy()
        tracer = getattr(switch, "_tracer", None)
        if tracer is not None:
            tracer.emit(DRAIN_STALL, idle_cycles, occupancy)
        snapshot = telemetry_snapshot(switch, max_ports=8)
        message = (
            f"drain made no progress for {idle_cycles} consecutive cycles "
            f"at cycle {self._cycle}: {occupancy} flits still "
            f"inside the switch; telemetry: {render_snapshot(snapshot)}"
        )
        return message, snapshot

    def _tick(self, result: SimulationResult, measuring: bool, inject: bool) -> None:
        cycle = self._cycle
        if inject:
            inject_many = getattr(self.switch, "inject_many", None)
            if inject_many is not None:
                count = inject_many(self.traffic.packets_for_cycle(cycle))
                if measuring:
                    result.packets_injected += count
            else:
                for packet in self.traffic.packets_for_cycle(cycle):
                    self.switch.inject(packet)
                    if measuring:
                        result.packets_injected += 1
        ejected = self.switch.step(cycle)
        if measuring:
            result.cycles += 1
            result.flits_ejected += len(ejected)
            for flit in ejected:
                if flit.is_tail:
                    result.packets_ejected += 1
                    latency = cycle - flit.created_cycle
                    result.record_latency(latency)
                    result.per_input_ejected[flit.src] = (
                        result.per_input_ejected.get(flit.src, 0) + 1
                    )
                    result.per_input_latency_sum[flit.src] = (
                        result.per_input_latency_sum.get(flit.src, 0) + latency
                    )
                    result.per_output_ejected[flit.dst] = (
                        result.per_output_ejected.get(flit.dst, 0) + 1
                    )
        self._cycle += 1

"""Input port: source queue, virtual channels, and connection state.

Each switch input port owns:

* an unbounded *source queue* (the network interface) holding packets the
  traffic source generated but that have not yet obtained buffer space —
  packet latency is measured from generation, so source queueing counts;
* ``num_vcs`` virtual channels of ``vc_depth`` flits each;
* the port's *connection state*: a matrix-crossbar input drives a single
  input bus, so at most one packet streams from a port at a time and the
  port arbitrates for a new output only while idle.

The port refills VCs from the source queue at one flit per cycle and selects
the candidate VC for arbitration round-robin among VCs with a routable head
flit, mirroring a single request per input per cycle (the Swizzle-Switch
reuses the input data lines to index the requested output).
"""

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from repro.network.flit import Flit
from repro.network.packet import Packet
from repro.network.vc import VirtualChannel


class SourceQueue:
    """Unbounded network-interface queue with lazy flit expansion.

    Packets wait here as whole :class:`Packet` objects; a packet's flits
    are only materialised when it reaches the front of the queue and its
    first flit is about to enter a virtual channel.  At saturation the
    queue backs up by design (source queueing counts toward latency), so
    deferring the per-flit object creation keeps memory proportional to
    the number of *packets* waiting and moves the expansion cost off the
    injection path entirely for packets still queued.

    ``len()`` reports the queue length in **flits**, matching the eager
    flit deque this replaces.
    """

    __slots__ = ("_packets", "_flits", "_pending_flits")

    def __init__(self) -> None:
        self._packets: Deque[Packet] = deque()
        # Flits of the packet currently being streamed into a VC.
        self._flits: Deque[Flit] = deque()
        self._pending_flits = 0

    def __len__(self) -> int:
        return self._pending_flits

    def append_packet(self, packet: Packet) -> None:
        """Enqueue a packet without materialising its flits yet."""
        self._packets.append(packet)
        self._pending_flits += packet.num_flits

    def front(self) -> Optional[Flit]:
        """The next flit to enter a VC, or None when the queue is empty.

        Expands the next packet on demand; repeated calls are O(1).
        """
        if not self._flits:
            if not self._packets:
                return None
            self._flits.extend(self._packets.popleft().to_flits())
        return self._flits[0]

    def popleft(self) -> Flit:
        """Remove and return the front flit (callers use front() first)."""
        self._pending_flits -= 1
        return self._flits.popleft()


@dataclass(frozen=True)
class PortConfig:
    """Buffering configuration of an input port.

    The defaults follow Section V of the paper: 4 virtual channels per port
    with a buffer depth of 4 flits per virtual channel.
    """

    num_vcs: int = 4
    vc_depth: int = 4

    def __post_init__(self) -> None:
        if self.num_vcs < 1:
            raise ValueError("need at least one virtual channel")
        if self.vc_depth < 1:
            raise ValueError("virtual channel depth must be >= 1")


class InputPort:
    """Buffered input port of a switch."""

    def __init__(self, port_id: int, config: Optional[PortConfig] = None) -> None:
        self.port_id = port_id
        self.config = config or PortConfig()
        self.vcs: List[VirtualChannel] = [
            VirtualChannel(self.config.vc_depth) for _ in range(self.config.num_vcs)
        ]
        self.source_queue = SourceQueue()
        self._rr_next_vc = 0
        # Index of the VC streaming the packet that currently holds a
        # connection through the switch, or None when the port is idle.
        self.active_vc: Optional[int] = None
        # True while the source-queue front flit cannot enter any VC.
        # VC state only changes when a flit is popped (transmit), so the
        # refill scan can be skipped until then.
        self._refill_blocked = False
        # VC that accepted the most recent head flit: the rest of that
        # packet can only enter the same VC, so body refills skip the scan.
        self._refill_vc = 0

    # ------------------------------------------------------------------
    # Injection side
    # ------------------------------------------------------------------
    def enqueue_packet(self, packet: Packet) -> None:
        """Append a freshly generated packet to the source queue.

        Flit objects are materialised lazily when the packet reaches the
        queue front (see :class:`SourceQueue`).
        """
        self.source_queue.append_packet(packet)

    def refill(self, cycle: int) -> None:
        """Move up to one flit from the source queue into a VC.

        A head flit requires a free VC; body/tail flits go to the VC their
        packet owns.  If no VC can accept the front flit, nothing moves
        (head-of-line order is preserved at the network interface).
        """
        if self._refill_blocked:
            return
        queue = self.source_queue
        flits = queue._flits
        if not flits:
            packets = queue._packets
            if not packets:
                return
            flits.extend(packets.popleft().to_flits())
        flit = flits[0]
        if flit.seq == 0:
            # Head flit: first free VC (a free VC is always empty).
            for idx, vc in enumerate(self.vcs):
                if vc._owner_packet is None and len(vc._fifo) < vc.depth:
                    flits.popleft()
                    queue._pending_flits -= 1
                    flit.injected_cycle = cycle
                    vc._owner_packet = flit.packet_id
                    vc._fifo.append(flit)
                    self._refill_vc = idx
                    return
        else:
            # Body/tail flit: only its packet's owner VC may take it.
            vc = self.vcs[self._refill_vc]
            if vc._owner_packet != flit.packet_id:
                for idx, other in enumerate(self.vcs):
                    if other._owner_packet == flit.packet_id:
                        self._refill_vc = idx
                        vc = other
                        break
                else:
                    self._refill_blocked = True
                    return
            if len(vc._fifo) < vc.depth:
                flits.popleft()
                queue._pending_flits -= 1
                flit.injected_cycle = cycle
                vc._fifo.append(flit)
                return
        self._refill_blocked = True

    # ------------------------------------------------------------------
    # Arbitration side
    # ------------------------------------------------------------------
    @property
    def is_busy(self) -> bool:
        """True while a packet is streaming through an established path."""
        return self.active_vc is not None

    def candidate_vc(self, viable=None) -> Optional[int]:
        """Pick the VC whose head flit should arbitrate this cycle.

        Returns the VC index, chosen round-robin among VCs holding a head
        flit at their front, or None when the port is busy or has nothing
        to request.

        Args:
            viable: Optional predicate on the head flit.  The switch passes
                a check that the flit's path resources (final output, L2LC)
                are currently free — the cross-points expose channel-free
                status, so a request for a busy resource is never made and
                another VC may use the input's request lines instead.
        """
        if self.active_vc is not None:
            return None
        vcs = self.vcs
        num_vcs = len(vcs)
        start = self._rr_next_vc
        for offset in range(num_vcs):
            idx = start + offset
            if idx >= num_vcs:
                idx -= num_vcs
            fifo = vcs[idx]._fifo
            if fifo:
                front = fifo[0]
                if front.seq == 0 and (viable is None or viable(front)):
                    return idx
        return None

    def requested_output(self, viable=None) -> Optional[int]:
        """Destination port of this cycle's candidate head flit, if any."""
        vc = self.candidate_vc(viable)
        if vc is None:
            return None
        front = self.vcs[vc].front()
        assert front is not None
        return front.dst

    def grant(self, vc_index: int) -> None:
        """Record that the head flit of ``vc_index`` won a path.

        Advances the round-robin pointer past the granted VC so other VCs
        get a turn once this packet completes.
        """
        if self.is_busy:
            raise RuntimeError(f"port {self.port_id} already has a connection")
        self.active_vc = vc_index
        self._rr_next_vc = (vc_index + 1) % len(self.vcs)

    def transmit(self) -> Flit:
        """Stream one flit of the active packet; release the path on tail.

        Raises:
            RuntimeError: If the port has no active connection.
        """
        if self.active_vc is None:
            raise RuntimeError(f"port {self.port_id} has no active connection")
        flit = self.vcs[self.active_vc].pop()
        if flit.seq == flit.num_flits - 1:  # tail: release the connection
            self.active_vc = None
        # Popping freed buffer space (and possibly a VC): the source-queue
        # front may fit now.
        self._refill_blocked = False
        return flit

    def peek_active(self) -> Flit:
        """The next flit the active connection will transmit."""
        if self.active_vc is None:
            raise RuntimeError(f"port {self.port_id} has no active connection")
        front = self.vcs[self.active_vc].front()
        if front is None:
            raise RuntimeError(
                f"port {self.port_id} active VC ran dry mid-packet"
            )
        return front

    def active_has_flit(self) -> bool:
        """Whether the active VC has a buffered flit ready to transmit."""
        if self.active_vc is None:
            return False
        return self.vcs[self.active_vc].front() is not None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def buffered_flits(self) -> int:
        """Total flits currently buffered in this port's VCs."""
        return sum(len(vc) for vc in self.vcs)

    def total_occupancy(self) -> int:
        """Flits buffered in VCs plus flits waiting in the source queue."""
        return self.buffered_flits() + len(self.source_queue)

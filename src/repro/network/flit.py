"""Flit: the unit of switch-level flow control.

A packet is decomposed into flits before injection.  The head flit carries
the routing information (source and destination port); body and tail flits
follow the head on the connection the head established.  Timestamps are
plain cycle counts stamped by the simulation engine.
"""

from dataclasses import dataclass, field
from typing import Optional


@dataclass(slots=True)
class Flit:
    """One flit of a packet.

    Attributes:
        packet_id: Identifier of the packet this flit belongs to.
        src: Source input port of the switch.
        dst: Destination output port of the switch.
        seq: Position of this flit within its packet (0 = head).
        num_flits: Total number of flits in the parent packet.
        created_cycle: Cycle at which the parent packet was generated
            (source-queueing time counts toward packet latency).
        injected_cycle: Cycle at which this flit entered an input buffer.
        ejected_cycle: Cycle at which this flit left the switch.
        payload: Optional opaque payload carried to the destination
            (used by the many-core simulator to carry memory requests).
    """

    packet_id: int
    src: int
    dst: int
    seq: int
    num_flits: int
    created_cycle: int = 0
    injected_cycle: Optional[int] = None
    ejected_cycle: Optional[int] = None
    payload: object = field(default=None, repr=False)

    @property
    def is_head(self) -> bool:
        """True for the first flit of a packet (carries routing info)."""
        return self.seq == 0

    @property
    def is_tail(self) -> bool:
        """True for the last flit of a packet (releases the connection)."""
        return self.seq == self.num_flits - 1

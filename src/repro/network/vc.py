"""Virtual channel: a bounded flit FIFO with packet-granularity allocation.

A virtual channel is allocated to a packet when its head flit is enqueued
and freed when the tail flit is dequeued.  This mirrors the per-port virtual
channel buffers of the paper's simulator (4 VCs x 4 flits per port).
"""

from collections import deque
from typing import Deque, Optional

from repro.network.flit import Flit


class VirtualChannel:
    """A single virtual channel buffer at an input port."""

    def __init__(self, depth: int = 4) -> None:
        if depth < 1:
            raise ValueError("virtual channel depth must be >= 1")
        self.depth = depth
        self._fifo: Deque[Flit] = deque()
        self._owner_packet: Optional[int] = None

    def __len__(self) -> int:
        return len(self._fifo)

    @property
    def owner_packet(self) -> Optional[int]:
        """Packet id currently holding this VC, or None if free."""
        return self._owner_packet

    @property
    def is_free(self) -> bool:
        """True when no packet owns this VC (a new head flit may enter)."""
        return self._owner_packet is None

    @property
    def has_space(self) -> bool:
        """True when the FIFO can accept another flit."""
        return len(self._fifo) < self.depth

    def can_accept(self, flit: Flit) -> bool:
        """Whether the given flit may be enqueued right now.

        A head flit needs the VC to be free; a body/tail flit must belong to
        the packet that owns the VC.  Both need buffer space.
        """
        if not self.has_space:
            return False
        if flit.is_head:
            return self.is_free
        return self._owner_packet == flit.packet_id

    def accept(self, flit: Flit) -> bool:
        """Check-and-push in a single call (the port refill fast path).

        Equivalent to ``can_accept(flit) and push(flit)`` without the
        duplicated validation; returns whether the flit was enqueued.
        """
        if len(self._fifo) >= self.depth:
            return False
        if flit.seq == 0:  # head flit: needs a free VC
            if self._owner_packet is not None:
                return False
            self._owner_packet = flit.packet_id
        elif self._owner_packet != flit.packet_id:
            return False
        self._fifo.append(flit)
        return True

    def push(self, flit: Flit) -> None:
        """Enqueue a flit, allocating the VC on a head flit.

        Raises:
            RuntimeError: If :meth:`can_accept` would have returned False.
        """
        if not self.can_accept(flit):
            raise RuntimeError(
                f"VC cannot accept flit {flit.packet_id}.{flit.seq} "
                f"(owner={self._owner_packet}, occupancy={len(self._fifo)})"
            )
        if flit.is_head:
            self._owner_packet = flit.packet_id
        self._fifo.append(flit)

    def front(self) -> Optional[Flit]:
        """The flit at the head of the FIFO, or None when empty."""
        return self._fifo[0] if self._fifo else None

    def pop(self) -> Flit:
        """Dequeue the front flit, freeing the VC after the tail flit.

        Raises:
            IndexError: If the VC is empty.
        """
        flit = self._fifo.popleft()
        if flit.is_tail and not self._fifo:
            self._owner_packet = None
        return flit

"""Network substrate: flits, packets, virtual channels, ports, cycle engine.

This subpackage provides the building blocks shared by every switch model in
the repository: the flit/packet data model (``flit``, ``packet``), buffered
input ports with virtual channels (``vc``, ``port``), and the cycle-driven
simulation loop that couples a traffic source to a switch model
(``engine``).

The default parameters follow Section V of the Hi-Rise paper: 4 virtual
channels per port, 4-flit buffers per virtual channel, 128-bit flits and
4-flit packets.
"""

from repro.network.flit import Flit
from repro.network.packet import Packet, PacketFactory
from repro.network.vc import VirtualChannel
from repro.network.port import InputPort, PortConfig
from repro.network.engine import Simulation, SimulationResult, SwitchModel

FLIT_BITS = 128
"""Flit width in bits used throughout the paper (matches the data bus)."""

PACKET_FLITS = 4
"""Packet length in flits used for all simulations in the paper."""

__all__ = [
    "Flit",
    "Packet",
    "PacketFactory",
    "VirtualChannel",
    "InputPort",
    "PortConfig",
    "Simulation",
    "SimulationResult",
    "SwitchModel",
    "FLIT_BITS",
    "PACKET_FLITS",
]

"""Synthetic trace-style core model.

Each core retires instructions at its pipeline width until it accumulates
too many outstanding memory misses (a small out-of-order window), drawing
the gaps between L1 misses from the benchmark profile's miss rate — a
geometric inter-miss distribution, i.e. the memoryless abstraction of a
Pin trace's miss stream.  Miss requests go to an address-interleaved
shared L2 bank; replies retire the miss and unblock the pipeline.

Time advances in *network cycles*: the system tells the core how many
instructions fit in one network cycle given the core clock (Table III:
2-way out-of-order at 2 GHz).
"""

from dataclasses import dataclass

import numpy as np

from repro.manycore.workloads import BenchmarkProfile


@dataclass(frozen=True)
class CoreParams:
    """Core pipeline parameters (Table III defaults).

    Attributes:
        frequency_ghz: Core clock.
        width: Issue/retire width (2-way out-of-order).
        miss_window: Outstanding L1 misses the core tolerates before the
            pipeline stalls — the core's effective memory-level
            parallelism.  Table III's "up to 16 outstanding requests per
            core" is the hard MSHR cap; the default window of 8 was tuned
            so the Table VI speedup band is reproduced (see EXPERIMENTS.md).
        mshr_limit: Hard cap on outstanding misses.
    """

    frequency_ghz: float = 2.0
    width: int = 2
    miss_window: int = 8
    mshr_limit: int = 16

    def __post_init__(self) -> None:
        if self.width < 1 or self.miss_window < 1:
            raise ValueError("width and miss window must be >= 1")
        if self.mshr_limit < self.miss_window:
            raise ValueError("MSHR limit must cover the miss window")


class SyntheticCore:
    """One core executing a benchmark profile."""

    def __init__(
        self,
        core_id: int,
        profile: BenchmarkProfile,
        params: CoreParams,
        rng: np.random.Generator,
    ) -> None:
        self.core_id = core_id
        self.profile = profile
        self.params = params
        self.rng = rng
        self.retired_instructions = 0.0
        self.outstanding = 0
        self.misses_issued = 0
        self.replies_received = 0
        self._gap = self._draw_gap()

    def _draw_gap(self) -> float:
        """Instructions until the next L1 miss (geometric; inf if none).

        The rate is sampled at the current progress point, so phased
        profiles (time-varying MPKI) modulate the miss stream.
        """
        rate = self.profile.l1_mpki_at(self.retired_instructions) / 1000.0
        if rate <= 0.0:
            return float("inf")
        return float(self.rng.exponential(1.0 / rate))

    @property
    def stalled(self) -> bool:
        """True when the miss window is full and retirement is blocked."""
        return self.outstanding >= self.params.miss_window

    def instructions_per_network_cycle(self, network_cycle_ns: float) -> float:
        """Peak retirement budget for one network cycle."""
        return self.params.width * self.params.frequency_ghz * network_cycle_ns

    def advance(self, budget: float) -> int:
        """Retire up to ``budget`` instructions; return new misses issued.

        Retirement stops early when the miss window fills.  The caller is
        responsible for routing each issued miss to its L2 bank.
        """
        misses = 0
        while budget > 0.0 and not self.stalled:
            if self._gap > budget:
                self._gap -= budget
                self.retired_instructions += budget
                budget = 0.0
                if self._gap == float("inf"):
                    # A zero-rate (compute-only) phase: re-sample at the
                    # new progress point so the next phase's misses start.
                    self._gap = self._draw_gap()
            else:
                self.retired_instructions += self._gap
                budget -= self._gap
                # A compute-bound stretch (infinite gap) must re-sample
                # when a phased profile can turn memory-bound again.
                self._gap = self._draw_gap()
                if self.outstanding < self.params.mshr_limit:
                    self.outstanding += 1
                    self.misses_issued += 1
                    misses += 1
        return misses

    def receive_reply(self) -> None:
        """A miss reply returned: unblock one window slot.

        Raises:
            RuntimeError: If no miss was outstanding (protocol error).
        """
        if self.outstanding <= 0:
            raise RuntimeError(
                f"core {self.core_id} received a reply with no miss in flight"
            )
        self.outstanding -= 1
        self.replies_received += 1

    def ipc(self, elapsed_ns: float) -> float:
        """Retired instructions per core cycle over ``elapsed_ns``."""
        if elapsed_ns <= 0:
            return 0.0
        core_cycles = elapsed_ns * self.params.frequency_ghz
        return self.retired_instructions / core_cycles

"""Phased benchmark profiles: time-varying memory intensity.

Real SPEC traces alternate between compute-bound and memory-bound phases;
a single average MPKI hides the bursts that stress the interconnect (and
that CLRG's counter-halving rule is designed to forgive, Section III-B.4).
``PhasedProfile`` cycles through (instruction-count, L1 MPKI, L2 MPKI)
phases as the core retires instructions, while exposing the same interface
the constant :class:`BenchmarkProfile` offers, so cores and the system are
oblivious to which kind they run.
"""

from dataclasses import dataclass
from typing import Tuple

from repro.manycore.workloads import BenchmarkProfile


@dataclass(frozen=True)
class Phase:
    """One execution phase of a benchmark."""

    instructions: float
    l1_mpki: float
    l2_mpki: float

    def __post_init__(self) -> None:
        if self.instructions <= 0:
            raise ValueError("a phase must span a positive instruction count")
        if self.l1_mpki < 0 or self.l2_mpki < 0:
            raise ValueError("MPKI values must be non-negative")
        if self.l2_mpki > self.l1_mpki:
            raise ValueError("L2 misses cannot exceed L1 misses")


@dataclass(frozen=True)
class PhasedProfile:
    """A benchmark whose miss rates vary by phase.

    Phases repeat cyclically over retired instructions.  The aggregate
    (instruction-weighted) MPKI is exposed through the same properties as
    :class:`BenchmarkProfile` so workload accounting stays uniform.
    """

    name: str
    phases: Tuple[Phase, ...]

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("need at least one phase")
        object.__setattr__(self, "phases", tuple(self.phases))

    @property
    def period(self) -> float:
        """Instructions in one full cycle through the phases."""
        return sum(phase.instructions for phase in self.phases)

    def _phase_at(self, instructions: float) -> Phase:
        position = instructions % self.period
        for phase in self.phases:
            if position < phase.instructions:
                return phase
            position -= phase.instructions
        return self.phases[-1]

    # ------------------------------------------------------------------
    # Instantaneous rates (what the core model samples)
    # ------------------------------------------------------------------
    def l1_mpki_at(self, instructions: float) -> float:
        """L1 MPKI of the phase active after ``instructions`` retired."""
        return self._phase_at(instructions).l1_mpki

    def l2_ratio_at(self, instructions: float) -> float:
        """L2 miss ratio of the phase active at this progress point."""
        phase = self._phase_at(instructions)
        if phase.l1_mpki == 0:
            return 0.0
        return phase.l2_mpki / phase.l1_mpki

    # ------------------------------------------------------------------
    # Aggregates (BenchmarkProfile-compatible accounting)
    # ------------------------------------------------------------------
    @property
    def l1_mpki(self) -> float:
        weighted = sum(p.instructions * p.l1_mpki for p in self.phases)
        return weighted / self.period

    @property
    def l2_mpki(self) -> float:
        weighted = sum(p.instructions * p.l2_mpki for p in self.phases)
        return weighted / self.period

    @property
    def total_mpki(self) -> float:
        return self.l1_mpki + self.l2_mpki

    @property
    def l2_miss_ratio(self) -> float:
        if self.l1_mpki == 0:
            return 0.0
        return self.l2_mpki / self.l1_mpki


def with_phases(
    profile: BenchmarkProfile,
    burst_ratio: float = 4.0,
    duty_cycle: float = 0.25,
    period_instructions: float = 50_000.0,
) -> PhasedProfile:
    """Derive a two-phase (burst/quiet) profile with the same average MPKI.

    Args:
        profile: The constant profile to phase.
        burst_ratio: Burst-phase MPKI relative to the quiet phase.
        duty_cycle: Fraction of instructions spent in the burst phase.
        period_instructions: Length of one burst+quiet cycle.

    The instruction-weighted averages equal the source profile's rates, so
    mixes keep their Table VI MPKI while the *temporal* load becomes
    bursty.
    """
    if burst_ratio < 1.0:
        raise ValueError("burst ratio must be >= 1")
    if not 0.0 < duty_cycle < 1.0:
        raise ValueError("duty cycle must be in (0, 1)")
    # Solve quiet-rate q: duty*burst_ratio*q + (1-duty)*q = average.
    denominator = duty_cycle * burst_ratio + (1.0 - duty_cycle)
    quiet_scale = 1.0 / denominator
    burst_scale = burst_ratio * quiet_scale
    burst = Phase(
        instructions=period_instructions * duty_cycle,
        l1_mpki=profile.l1_mpki * burst_scale,
        l2_mpki=profile.l2_mpki * burst_scale,
    )
    quiet = Phase(
        instructions=period_instructions * (1.0 - duty_cycle),
        l1_mpki=profile.l1_mpki * quiet_scale,
        l2_mpki=profile.l2_mpki * quiet_scale,
    )
    return PhasedProfile(name=f"{profile.name}-phased", phases=(burst, quiet))

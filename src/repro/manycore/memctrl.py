"""Memory controller model.

Table III: 8 on-chip memory controllers, 4 DDR channels each at 16 GB/s,
80 ns access latency, request queues.  The model is a bandwidth-limited
server: a controller starts one 64-byte access per ``service_interval``
cycles per channel group (aggregate bandwidth), and each access completes
``access_latency`` after it starts.
"""

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Tuple


@dataclass
class DramRequest:
    core_id: int
    request_id: int
    arrival_cycle: int


class MemoryController:
    """One memory controller with queued, bandwidth-limited service."""

    def __init__(
        self,
        mc_id: int,
        access_latency_cycles: int,
        service_interval_cycles: float,
        queue_limit: int = 256,
    ) -> None:
        if access_latency_cycles < 1:
            raise ValueError("DRAM latency must be at least one cycle")
        if service_interval_cycles <= 0:
            raise ValueError("service interval must be positive")
        self.mc_id = mc_id
        self.access_latency_cycles = access_latency_cycles
        self.service_interval_cycles = service_interval_cycles
        self.queue_limit = queue_limit
        self._queue: Deque[DramRequest] = deque()
        self._inflight: Deque[Tuple[int, DramRequest]] = deque()
        self._next_service = 0.0
        self.served = 0
        self.rejected = 0

    @property
    def occupancy(self) -> int:
        return len(self._queue) + len(self._inflight)

    def accept(self, core_id: int, request_id: int, cycle: int) -> bool:
        """Queue a DRAM request; False when the queue is full."""
        if len(self._queue) >= self.queue_limit:
            self.rejected += 1
            return False
        self._queue.append(DramRequest(core_id, request_id, cycle))
        return True

    def step(self, cycle: int) -> List[DramRequest]:
        """Start eligible accesses and return those completing this cycle."""
        # Start new accesses as bandwidth allows.
        while self._queue and self._next_service <= cycle:
            request = self._queue.popleft()
            self._inflight.append(
                (cycle + self.access_latency_cycles, request)
            )
            start = max(self._next_service, float(cycle))
            self._next_service = start + self.service_interval_cycles
        done: List[DramRequest] = []
        while self._inflight and self._inflight[0][0] <= cycle:
            done.append(self._inflight.popleft()[1])
            self.served += 1
        return done

"""Benchmark profiles and the Table VI workload mixes.

Each benchmark is characterised by its per-core network load: L1 MPKI
(requests from the core into the shared L2, all of which may cross the
switch) and L2 MPKI (requests that continue to a memory controller).  The
paper reports only the aggregate ``avg. MPKI`` per mix — the sum of L1 and
L2 MPKI averaged over cores — so individual benchmark values were fitted
by bounded least squares against all eight published mix averages
simultaneously, anchored at public SPEC CPU2006 / commercial-workload
characterisation priors.  Every mix's recomputed average lands within
0.1 MPKI of Table VI (asserted in the test suite).

The split between L1 and L2 MPKI uses a fixed locality ratio (L2 misses
are ~35% of L1 misses), a documented modelling choice; only their sum is
constrained by the paper.
"""

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

# Fraction of L1 misses that also miss in the shared L2.
L2_MISS_FRACTION = 0.35

# Total (L1 + L2) MPKI per benchmark, fitted against Table VI.
_TOTAL_MPKI: Dict[str, float] = {
    "Gems": 84.9,
    "applu": 9.1,
    "art": 43.8,
    "astar": 11.6,
    "barnes": 13.5,
    "deal": 13.4,
    "gcc": 2.2,
    "gromacs": 3.8,
    "hmmer": 20.1,
    "lbm": 53.4,
    "leslie": 23.9,
    "libquantum": 46.8,
    "mcf": 150.0,
    "milc": 49.1,
    "namd": 21.2,
    "ocean": 32.6,
    "omnet": 41.8,
    "povray": 7.3,
    "sap": 53.7,
    "sjas": 54.8,
    "sjbb": 36.6,
    "sjeng": 0.2,
    "soplex": 43.2,
    "swim": 53.5,
    "tonto": 0.2,
    "tpcw": 70.4,
    "xalan": 29.1,
}


@dataclass(frozen=True)
class BenchmarkProfile:
    """Synthetic memory-reference profile of one benchmark instance."""

    name: str
    l1_mpki: float
    l2_mpki: float

    def __post_init__(self) -> None:
        if self.l1_mpki < 0 or self.l2_mpki < 0:
            raise ValueError("MPKI values must be non-negative")
        if self.l2_mpki > self.l1_mpki:
            raise ValueError("L2 misses cannot exceed L1 misses")

    @property
    def total_mpki(self) -> float:
        """L1 + L2 MPKI: the paper's per-core network load measure."""
        return self.l1_mpki + self.l2_mpki

    @property
    def l2_miss_ratio(self) -> float:
        """Probability an L2 access (an L1 miss) misses in the L2."""
        if self.l1_mpki == 0:
            return 0.0
        return self.l2_mpki / self.l1_mpki

    # Instantaneous-rate interface shared with PhasedProfile: a constant
    # profile's rates do not depend on progress.
    def l1_mpki_at(self, instructions: float) -> float:
        """L1 MPKI after ``instructions`` retired (constant here)."""
        return self.l1_mpki

    def l2_ratio_at(self, instructions: float) -> float:
        """L2 miss ratio after ``instructions`` retired (constant here)."""
        return self.l2_miss_ratio


def _profile(name: str) -> BenchmarkProfile:
    total = _TOTAL_MPKI[name]
    l2 = total * L2_MISS_FRACTION / (1.0 + L2_MISS_FRACTION)
    return BenchmarkProfile(name=name, l1_mpki=total - l2, l2_mpki=l2)


BENCHMARKS: Dict[str, BenchmarkProfile] = {
    name: _profile(name) for name in _TOTAL_MPKI
}


@dataclass(frozen=True)
class WorkloadMix:
    """One multi-programmed workload from Table VI.

    Attributes:
        name: Mix name (Mix1..Mix8).
        entries: (benchmark, instance count) pairs.  Counts are exactly as
            published; Mix7's published counts sum to 63, leaving one core
            idle.
        paper_avg_mpki: The ``avg. MPKI`` column of Table VI.
        paper_speedup: The published Hi-Rise over 2D system speedup.
    """

    name: str
    entries: Tuple[Tuple[str, int], ...]
    paper_avg_mpki: float
    paper_speedup: float

    @property
    def total_instances(self) -> int:
        return sum(count for _, count in self.entries)

    @property
    def avg_mpki(self) -> float:
        """Recomputed average MPKI per core (should match the paper)."""
        weighted = sum(
            BENCHMARKS[name].total_mpki * count for name, count in self.entries
        )
        return weighted / self.total_instances


MIXES: List[WorkloadMix] = [
    WorkloadMix(
        "Mix1",
        (("milc", 11), ("applu", 11), ("astar", 10),
         ("sjeng", 11), ("tonto", 11), ("hmmer", 10)),
        15.0, 1.02,
    ),
    WorkloadMix(
        "Mix2",
        (("sjas", 11), ("gcc", 11), ("sjbb", 11),
         ("gromacs", 11), ("sjeng", 10), ("xalan", 10)),
        21.3, 1.04,
    ),
    WorkloadMix(
        "Mix3",
        (("milc", 11), ("libquantum", 10), ("astar", 11),
         ("barnes", 11), ("tpcw", 11), ("povray", 10)),
        33.3, 1.06,
    ),
    WorkloadMix(
        "Mix4",
        (("astar", 11), ("swim", 11), ("leslie", 10),
         ("omnet", 10), ("sjas", 11), ("art", 11)),
        38.4, 1.06,
    ),
    WorkloadMix(
        "Mix5",
        (("mcf", 11), ("ocean", 10), ("gromacs", 10),
         ("lbm", 11), ("deal", 11), ("sap", 11)),
        52.2, 1.08,
    ),
    WorkloadMix(
        "Mix6",
        (("mcf", 10), ("namd", 11), ("hmmer", 11),
         ("tpcw", 11), ("omnet", 10), ("swim", 11)),
        58.4, 1.09,
    ),
    WorkloadMix(
        "Mix7",
        (("Gems", 10), ("sjbb", 11), ("sjas", 11),
         ("mcf", 10), ("xalan", 11), ("sap", 10)),
        66.9, 1.16,
    ),
    WorkloadMix(
        "Mix8",
        (("milc", 11), ("tpcw", 10), ("Gems", 11),
         ("mcf", 11), ("sjas", 11), ("soplex", 10)),
        76.0, 1.15,
    ),
]


def mix_core_assignment(
    mix: WorkloadMix, num_cores: int = 64, seed: int = 0
) -> List[BenchmarkProfile]:
    """Randomly allocate a mix's instances to cores (Section VI-D: "the
    applications' allocation is done randomly, and is oblivious of the
    layer-to-layer dependencies in the switch").

    Cores beyond the mix's instance count (Mix7 has 63) run an idle
    profile with zero MPKI.
    """
    if mix.total_instances > num_cores:
        raise ValueError(
            f"{mix.name} has {mix.total_instances} instances for "
            f"{num_cores} cores"
        )
    profiles: List[BenchmarkProfile] = []
    for name, count in mix.entries:
        profiles.extend([BENCHMARKS[name]] * count)
    while len(profiles) < num_cores:
        profiles.append(BenchmarkProfile(name="idle", l1_mpki=0.0, l2_mpki=0.0))
    rng = np.random.default_rng(seed)
    order = rng.permutation(num_cores)
    return [profiles[i] for i in order]

"""Application-level simulation: 64 tiles over a single radix-64 switch.

Reproduces the Section VI-D methodology: a trace-style, cycle-level
many-core simulator (cores + private L1s + shared L2 banks + memory
controllers, Table III parameters) whose interconnect fabric is one of the
cycle-accurate switch models from this repository.

The paper drives its cores with Pin instruction traces of SPEC CPU2006 and
commercial workloads; offline those traces are unavailable, so each
benchmark is modelled by a *synthetic memory-reference profile* — its L1
and L2 misses-per-kilo-instruction.  Per-benchmark MPKI values were fitted
(non-negative least squares, anchored at published characterisation
priors) so that each of the paper's eight workload mixes reproduces the
average MPKI column of Table VI exactly.
"""

from repro.manycore.workloads import (
    BENCHMARKS,
    MIXES,
    BenchmarkProfile,
    WorkloadMix,
    mix_core_assignment,
)
from repro.manycore.core import CoreParams, SyntheticCore
from repro.manycore.phases import Phase, PhasedProfile, with_phases
from repro.manycore.cache import L2Bank
from repro.manycore.memctrl import MemoryController
from repro.manycore.system import ManyCoreSystem, SystemConfig, system_speedup

__all__ = [
    "BENCHMARKS",
    "MIXES",
    "BenchmarkProfile",
    "WorkloadMix",
    "mix_core_assignment",
    "CoreParams",
    "Phase",
    "PhasedProfile",
    "with_phases",
    "SyntheticCore",
    "L2Bank",
    "MemoryController",
    "ManyCoreSystem",
    "SystemConfig",
    "system_speedup",
]

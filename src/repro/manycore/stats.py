"""Memory-request latency instrumentation for the many-core system.

Tracks every request from issue to reply and attributes its latency to the
level that served it (shared L2 hit vs DRAM), giving the per-core and
system-level breakdowns an interconnect study needs: how much of average
memory latency is network, how it shifts between the 2D and Hi-Rise
fabrics, and which cores are hurt most.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.metrics.stats import LatencyStats


@dataclass
class RequestRecord:
    """Lifecycle of one memory request (cycles in the network domain)."""

    core_id: int
    issue_cycle: int
    reply_cycle: Optional[int] = None
    served_by_dram: bool = False

    @property
    def latency(self) -> int:
        if self.reply_cycle is None:
            raise ValueError("request still in flight")
        return self.reply_cycle - self.issue_cycle


class MemoryLatencyTracker:
    """Accumulates request lifecycles and summarises them.

    The system calls :meth:`issued` when a core creates a request,
    :meth:`went_to_dram` when the home L2 misses, and :meth:`replied` when
    the data returns to the core.
    """

    def __init__(self) -> None:
        self._inflight: Dict[int, RequestRecord] = {}
        self.completed: List[RequestRecord] = []

    def issued(self, request_id: int, core_id: int, cycle: int) -> None:
        """Record a new request leaving its core.

        Raises:
            ValueError: On a duplicate in-flight request id.
        """
        if request_id in self._inflight:
            raise ValueError(f"request {request_id} already in flight")
        self._inflight[request_id] = RequestRecord(
            core_id=core_id, issue_cycle=cycle
        )

    def went_to_dram(self, request_id: int) -> None:
        """Mark an in-flight request as an L2 miss headed to memory."""
        record = self._inflight.get(request_id)
        if record is not None:
            record.served_by_dram = True

    def replied(self, request_id: int, cycle: int) -> None:
        """Complete a request when its data reply reaches the core."""
        record = self._inflight.pop(request_id, None)
        if record is None:
            return  # tracking may be attached mid-run; ignore strangers
        record.reply_cycle = cycle
        self.completed.append(record)

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        return len(self._inflight)

    def latencies(
        self, dram_only: Optional[bool] = None, core_id: Optional[int] = None
    ) -> List[int]:
        """Completed latencies, optionally filtered by level or core."""
        return [
            record.latency
            for record in self.completed
            if (dram_only is None or record.served_by_dram == dram_only)
            and (core_id is None or record.core_id == core_id)
        ]

    def summary(self, dram_only: Optional[bool] = None) -> LatencyStats:
        """Latency distribution summary (cycles).

        Raises:
            ValueError: If no matching request completed.
        """
        return LatencyStats.from_samples(self.latencies(dram_only))

    def dram_fraction(self) -> float:
        """Fraction of completed requests that went to memory."""
        if not self.completed:
            return 0.0
        dram = sum(1 for record in self.completed if record.served_by_dram)
        return dram / len(self.completed)

    def to_stats(self, registry, prefix: str = "mem") -> None:
        """Export the tracked lifecycles onto a
        :class:`~repro.obs.StatsRegistry`: request counters, the DRAM
        fraction, and latency distributions split by serving level."""
        registry.scalar(
            f"{prefix}.completed", "completed memory requests"
        ).set(len(self.completed))
        registry.scalar(
            f"{prefix}.in_flight", "requests still in flight"
        ).set(self.in_flight)
        registry.scalar(
            f"{prefix}.dram_fraction", "fraction of requests served by DRAM"
        ).set(self.dram_fraction())
        total = registry.distribution(
            f"{prefix}.latency", "memory request latency (cycles)"
        )
        l2_hit = registry.distribution(
            f"{prefix}.l2_hit_latency", "shared-L2 hit latency (cycles)"
        )
        dram = registry.distribution(
            f"{prefix}.dram_latency", "DRAM-served latency (cycles)"
        )
        for record in self.completed:
            latency = record.latency
            total.add(latency)
            (dram if record.served_by_dram else l2_hit).add(latency)

    def breakdown(self, network_cycle_ns: float) -> "LatencyBreakdown":
        """Mean latency split by serving level, converted to nanoseconds.

        Raises:
            ValueError: If nothing completed yet.
        """
        if not self.completed:
            raise ValueError("no completed requests to summarise")
        hits = self.latencies(dram_only=False)
        misses = self.latencies(dram_only=True)
        return LatencyBreakdown(
            mean_ns=sum(r.latency for r in self.completed)
            / len(self.completed) * network_cycle_ns,
            l2_hit_mean_ns=(
                sum(hits) / len(hits) * network_cycle_ns if hits else None
            ),
            dram_mean_ns=(
                sum(misses) / len(misses) * network_cycle_ns
                if misses else None
            ),
            dram_fraction=self.dram_fraction(),
            completed=len(self.completed),
        )


@dataclass(frozen=True)
class LatencyBreakdown:
    """Mean memory latency by serving level, in nanoseconds."""

    mean_ns: float
    l2_hit_mean_ns: Optional[float]
    dram_mean_ns: Optional[float]
    dram_fraction: float
    completed: int

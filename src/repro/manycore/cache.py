"""Shared L2 bank model.

One bank per tile (Table III: 64 banks, 256 KB each, 6-cycle latency, 32
MSHRs).  The bank is pipelined: every accepted request completes a fixed
access latency after arrival, bounded by the MSHR count; whether it hits
is drawn from the *requesting core's* benchmark profile (the synthetic
equivalent of the trace's address stream hitting this bank's arrays).
"""

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Tuple

import numpy as np


@dataclass
class L2Request:
    """A request resident in the bank's MSHRs."""

    core_id: int
    request_id: int
    l2_miss_ratio: float
    ready_cycle: int


class L2Bank:
    """One address-interleaved shared L2 bank."""

    def __init__(
        self,
        bank_id: int,
        latency_cycles: int,
        mshr_limit: int,
        rng: np.random.Generator,
    ) -> None:
        if latency_cycles < 1:
            raise ValueError("L2 latency must be at least one cycle")
        if mshr_limit < 1:
            raise ValueError("need at least one MSHR")
        self.bank_id = bank_id
        self.latency_cycles = latency_cycles
        self.mshr_limit = mshr_limit
        self.rng = rng
        self._inflight: Deque[L2Request] = deque()
        self.hits = 0
        self.misses = 0
        self.rejected = 0

    @property
    def occupancy(self) -> int:
        return len(self._inflight)

    def accept(
        self, core_id: int, request_id: int, l2_miss_ratio: float, cycle: int
    ) -> bool:
        """Accept a request into the MSHRs; False when full (retry later)."""
        if len(self._inflight) >= self.mshr_limit:
            self.rejected += 1
            return False
        self._inflight.append(
            L2Request(
                core_id=core_id,
                request_id=request_id,
                l2_miss_ratio=l2_miss_ratio,
                ready_cycle=cycle + self.latency_cycles,
            )
        )
        return True

    def completions(self, cycle: int) -> List[Tuple[L2Request, bool]]:
        """Requests whose access finished this cycle, with hit/miss drawn.

        Returns a list of (request, hit) pairs; misses must be forwarded
        to a memory controller by the caller.
        """
        done: List[Tuple[L2Request, bool]] = []
        while self._inflight and self._inflight[0].ready_cycle <= cycle:
            request = self._inflight.popleft()
            hit = bool(self.rng.random() >= request.l2_miss_ratio)
            if hit:
                self.hits += 1
            else:
                self.misses += 1
            done.append((request, hit))
        return done

"""The 64-core system: tiles, caches, memory controllers over one switch.

Structure follows Section VI-D: every tile holds a core, its private L1
and one bank of the address-interleaved shared L2; eight memory
controllers attach at evenly spread tiles; the interconnect fabric is a
single radix-64 switch — either the flat 2D Swizzle-Switch or Hi-Rise.

The system runs in the *network clock domain* (the switch's modelled
frequency).  Core progress, cache latencies and DRAM latency are converted
from nanoseconds, so comparing a 1.69 GHz 2D switch against a 2.2 GHz
Hi-Rise automatically credits the 3D switch's higher clock and lower
zero-load latency — exactly the comparison of Table VI.

Message flows (request ids match replies to cores):

* L1 miss at core c -> request (1 flit) to home bank h (uniform random
  home, the synthetic analogue of address interleaving); same-tile
  requests bypass the switch;
* L2 hit -> data reply (4 flits) h -> c;
* L2 miss -> request (1 flit) h -> its memory controller tile; after
  queued DRAM access, data reply (4 flits) mc -> c.
"""

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.manycore.cache import L2Bank
from repro.manycore.core import CoreParams, SyntheticCore
from repro.manycore.memctrl import MemoryController
from repro.manycore.stats import MemoryLatencyTracker
from repro.manycore.workloads import BenchmarkProfile, WorkloadMix, mix_core_assignment
from repro.network.engine import SwitchModel
from repro.network.packet import PacketFactory


@dataclass(frozen=True)
class SystemConfig:
    """System parameters (Table III defaults)."""

    num_cores: int = 64
    core: CoreParams = field(default_factory=CoreParams)
    l2_latency_ns: float = 3.0          # 6 cycles at the 2 GHz core clock
    l2_mshrs: int = 32
    dram_latency_ns: float = 80.0
    num_memory_controllers: int = 8
    mc_service_interval_ns: float = 1.0  # 64 B per ns (4 ch x 16 GB/s)
    request_flits: int = 1
    reply_flits: int = 4
    writeback_fraction: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.writeback_fraction <= 1.0:
            raise ValueError("writeback fraction must be in [0, 1]")


# Message kinds carried in head-flit payloads.
_REQ_L2 = 0
_REQ_MEM = 1
_REPLY = 2
_WRITEBACK = 3


class ManyCoreSystem:
    """A 64-core system simulated over a cycle-accurate switch model."""

    def __init__(
        self,
        switch: SwitchModel,
        switch_frequency_ghz: float,
        profiles: Sequence[BenchmarkProfile],
        config: Optional[SystemConfig] = None,
    ) -> None:
        self.config = config or SystemConfig()
        cfg = self.config
        if switch.num_ports != cfg.num_cores:
            raise ValueError(
                f"switch radix {switch.num_ports} != {cfg.num_cores} cores"
            )
        if len(profiles) != cfg.num_cores:
            raise ValueError("need one benchmark profile per core")
        if switch_frequency_ghz <= 0:
            raise ValueError("switch frequency must be positive")
        self.switch = switch
        self.network_cycle_ns = 1.0 / switch_frequency_ghz
        self.rng = np.random.default_rng(cfg.seed)

        self.cores = [
            SyntheticCore(i, profiles[i], cfg.core,
                          np.random.default_rng(cfg.seed * 1000003 + i))
            for i in range(cfg.num_cores)
        ]
        l2_cycles = max(1, math.ceil(cfg.l2_latency_ns / self.network_cycle_ns))
        self.banks = [
            L2Bank(i, l2_cycles, cfg.l2_mshrs,
                   np.random.default_rng(cfg.seed * 2000003 + i))
            for i in range(cfg.num_cores)
        ]
        dram_cycles = max(1, math.ceil(cfg.dram_latency_ns / self.network_cycle_ns))
        service = cfg.mc_service_interval_ns / self.network_cycle_ns
        self.mcs = [
            MemoryController(i, dram_cycles, service)
            for i in range(cfg.num_memory_controllers)
        ]
        stride = cfg.num_cores // cfg.num_memory_controllers
        self.mc_tiles = [i * stride for i in range(cfg.num_memory_controllers)]
        self._mc_of_bank = {
            bank: bank % cfg.num_memory_controllers
            for bank in range(cfg.num_cores)
        }

        self.packets = PacketFactory()
        self._next_request = 0
        self._request_core: Dict[int, int] = {}
        self._request_ratio: Dict[int, float] = {}
        # (delivery_cycle, dst_tile, message) for same-tile bypass traffic.
        self._local: List[Tuple[int, int, Tuple[int, int, int]]] = []
        # Messages rejected by a full MSHR/queue, retried each cycle.
        self._retry: List[Tuple[int, Tuple[int, int, int]]] = []
        # Payload of a packet's head, delivered when its tail ejects.
        self._payloads: Dict[int, Tuple[int, int, int]] = {}
        self.cycle = 0
        self.messages_sent = 0
        self.writebacks_sent = 0
        self.writebacks_received = 0
        # Per-request latency instrumentation (issue -> reply).
        self.memory_latency = MemoryLatencyTracker()

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def _send(self, kind: int, src_tile: int, dst_tile: int,
              request_id: int, flits: int) -> None:
        message = (kind, request_id, dst_tile)
        self.messages_sent += 1
        if src_tile == dst_tile:
            self._local.append((self.cycle + 1, dst_tile, message))
            return
        packet = self.packets.create(
            src_tile, dst_tile, created_cycle=self.cycle,
            num_flits=flits, payload=message,
        )
        self.switch.inject(packet)

    def _deliver(self, dst_tile: int, message: Tuple[int, int, int]) -> None:
        kind, request_id, _ = message
        if kind == _REQ_L2:
            bank = self.banks[dst_tile]
            accepted = bank.accept(
                self._request_core[request_id],
                request_id,
                self._request_ratio[request_id],
                self.cycle,
            )
            if not accepted:
                self._retry.append((dst_tile, message))
        elif kind == _REQ_MEM:
            mc = self.mcs[self.mc_tiles.index(dst_tile)]
            if not mc.accept(self._request_core[request_id], request_id, self.cycle):
                self._retry.append((dst_tile, message))
        elif kind == _REPLY:
            core = self.cores[self._request_core.pop(request_id)]
            self._request_ratio.pop(request_id, None)
            self.memory_latency.replied(request_id, self.cycle)
            core.receive_reply()
        elif kind == _WRITEBACK:
            # Dirty-line eviction data arriving at its home bank: absorbed
            # without a reply (fire-and-forget; bandwidth is its cost).
            self.writebacks_received += 1
        else:
            raise ValueError(f"unknown message kind {kind}")

    # ------------------------------------------------------------------
    # Cycle loop
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the whole system (network, caches, MCs, cores) 1 cycle."""
        cycle = self.cycle
        # 1. Network delivers traffic.
        for flit in self.switch.step(cycle):
            if flit.is_head and flit.payload is not None:
                self._payloads[flit.packet_id] = flit.payload
            if flit.is_tail:
                message = self._payloads.pop(flit.packet_id)
                self._deliver(flit.dst, message)

        # 2. Same-tile bypass deliveries.
        if self._local:
            due = [entry for entry in self._local if entry[0] <= cycle]
            self._local = [entry for entry in self._local if entry[0] > cycle]
            for _, dst_tile, message in due:
                self._deliver(dst_tile, message)

        # 3. Retries of MSHR/queue-full rejections.
        if self._retry:
            retries, self._retry = self._retry, []
            for dst_tile, message in retries:
                self._deliver(dst_tile, message)

        # 4. L2 banks complete accesses.
        for tile, bank in enumerate(self.banks):
            for request, hit in bank.completions(cycle):
                core_tile = request.core_id
                if hit:
                    self._send(_REPLY, tile, core_tile, request.request_id,
                               self.config.reply_flits)
                else:
                    self.memory_latency.went_to_dram(request.request_id)
                    mc_tile = self.mc_tiles[self._mc_of_bank[tile]]
                    self._send(_REQ_MEM, tile, mc_tile, request.request_id,
                               self.config.request_flits)

        # 5. Memory controllers complete accesses.
        for mc_index, mc in enumerate(self.mcs):
            mc_tile = self.mc_tiles[mc_index]
            for request in mc.step(cycle):
                self._send(_REPLY, mc_tile, request.core_id,
                           request.request_id, self.config.reply_flits)

        # 6. Cores retire instructions and issue new misses.
        for core in self.cores:
            budget = core.instructions_per_network_cycle(self.network_cycle_ns)
            misses = core.advance(budget)
            for _ in range(misses):
                request_id = self._next_request
                self._next_request += 1
                self.memory_latency.issued(request_id, core.core_id, cycle)
                self._request_core[request_id] = core.core_id
                self._request_ratio[request_id] = core.profile.l2_ratio_at(
                    core.retired_instructions
                )
                home = int(self.rng.integers(self.config.num_cores))
                self._send(_REQ_L2, core.core_id, home, request_id,
                           self.config.request_flits)
                # A fraction of misses evict a dirty line: the victim's
                # data travels to its own (random) home as fire-and-forget
                # writeback traffic, loading the network without adding
                # core-visible latency.
                if (
                    self.config.writeback_fraction > 0.0
                    and self.rng.random() < self.config.writeback_fraction
                ):
                    victim_home = int(self.rng.integers(self.config.num_cores))
                    self.writebacks_sent += 1
                    self._send(_WRITEBACK, core.core_id, victim_home,
                               request_id, self.config.reply_flits)
        self.cycle += 1

    def run(self, network_cycles: int) -> "SystemResult":
        """Advance the whole system and summarise per-core progress."""
        start_cycle = self.cycle
        start_instructions = [core.retired_instructions for core in self.cores]
        for _ in range(network_cycles):
            self.step()
        elapsed_ns = (self.cycle - start_cycle) * self.network_cycle_ns
        retired = [
            core.retired_instructions - start
            for core, start in zip(self.cores, start_instructions)
        ]
        return SystemResult(
            elapsed_ns=elapsed_ns,
            retired_per_core=retired,
            core_frequency_ghz=self.config.core.frequency_ghz,
        )


@dataclass(frozen=True)
class SystemResult:
    """Progress of one system run."""

    elapsed_ns: float
    retired_per_core: List[float]
    core_frequency_ghz: float

    @property
    def total_instructions(self) -> float:
        return sum(self.retired_per_core)

    @property
    def system_ipc(self) -> float:
        """Aggregate instructions per core-clock cycle across all cores."""
        core_cycles = self.elapsed_ns * self.core_frequency_ghz
        return self.total_instructions / core_cycles

    def per_core_ipc(self) -> List[float]:
        """Retired instructions per core cycle, for each core."""
        core_cycles = self.elapsed_ns * self.core_frequency_ghz
        return [retired / core_cycles for retired in self.retired_per_core]


def system_speedup(
    mix: WorkloadMix,
    build_baseline,
    build_candidate,
    baseline_frequency_ghz: float,
    candidate_frequency_ghz: float,
    network_cycles_baseline: int = 20000,
    config: Optional[SystemConfig] = None,
    seed: int = 0,
) -> float:
    """Candidate-over-baseline system speedup for one workload mix.

    Both systems get identical core-to-benchmark assignments and identical
    RNG seeds; they run for the same *wall-clock time* (the candidate runs
    proportionally more network cycles at its higher clock), and speedup
    is the ratio of aggregate retired instructions.
    """
    cfg = config or SystemConfig(seed=seed)
    profiles = mix_core_assignment(mix, cfg.num_cores, seed=seed)
    baseline = ManyCoreSystem(
        build_baseline(), baseline_frequency_ghz, profiles, cfg
    )
    candidate = ManyCoreSystem(
        build_candidate(), candidate_frequency_ghz, profiles, cfg
    )
    wall_ns = network_cycles_baseline / baseline_frequency_ghz
    candidate_cycles = int(round(wall_ns * candidate_frequency_ghz))
    base_result = baseline.run(network_cycles_baseline)
    cand_result = candidate.run(candidate_cycles)
    return cand_result.total_instructions / base_result.total_instructions

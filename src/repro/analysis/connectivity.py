"""Connectivity analysis of the Hi-Rise datapath as a resource graph.

The hierarchical datapath is a three-stage directed graph: input ports ->
local resources (the input's dedicated intermediate outputs and its
reachable L2LCs) -> final outputs.  Building it explicitly (networkx)
lets reachability be *proven* rather than sampled — including under
injected TSV failures, where the rerouting rule must preserve full
connectivity (the property the configuration validator enforces).
"""

from typing import Iterable, Optional, Set, Tuple

import networkx as nx

from repro.core.config import AllocationPolicy, HiRiseConfig
from repro.core.channels import make_allocation


def _input_node(port: int) -> Tuple[str, int]:
    return ("in", port)


def _output_node(port: int) -> Tuple[str, int]:
    return ("out", port)


def build_resource_graph(
    config: HiRiseConfig,
    failed_channels: Optional[Iterable[Tuple[int, int, int]]] = None,
) -> "nx.DiGraph":
    """The datapath as a directed graph honouring allocation and failures.

    Nodes: ``("in", port)``, ``("out", port)``, intermediate outputs
    ``("int", layer, local)`` and channels ``("ch", src, dst, k)``.
    Edges follow the paths packets may actually take: same-layer flows
    through the dedicated intermediate output; cross-layer flows through
    the healthy channel(s) the allocation policy permits.

    ``failed_channels`` overrides the static ``config.failed_channels``
    set; dynamic fault injection can fail *every* channel of a layer
    pair, so unlike the static validator this graph tolerates a
    partition — the dead pair simply contributes no edges.
    """
    graph = nx.DiGraph()
    alloc = make_allocation(config)
    if failed_channels is None:
        failed = set(config.failed_channels)
    else:
        failed = {tuple(entry) for entry in failed_channels}

    def healthy(src_layer: int, dst_layer: int, nominal: int) -> Optional[int]:
        c = config.channel_multiplicity
        for offset in range(c):
            channel = (nominal + offset) % c
            if (src_layer, dst_layer, channel) not in failed:
                return channel
        return None

    for src in range(config.radix):
        src_layer = config.layer_of_port(src)
        local_input = config.local_index(src)
        graph.add_node(_input_node(src))
        for dst in range(config.radix):
            dst_layer = config.layer_of_port(dst)
            out_node = _output_node(dst)
            if dst_layer == src_layer:
                middle = ("int", src_layer, config.local_index(dst))
                graph.add_edge(_input_node(src), middle)
                graph.add_edge(middle, out_node)
            elif config.allocation is AllocationPolicy.PRIORITY:
                for channel in range(config.channel_multiplicity):
                    if (src_layer, dst_layer, channel) in failed:
                        continue
                    middle = ("ch", src_layer, dst_layer, channel)
                    graph.add_edge(_input_node(src), middle)
                    graph.add_edge(middle, out_node)
            else:
                nominal = alloc.channel_for(local_input, dst)
                channel = healthy(src_layer, dst_layer, nominal)
                if channel is None:
                    continue
                middle = ("ch", src_layer, dst_layer, channel)
                graph.add_edge(_input_node(src), middle)
                graph.add_edge(middle, out_node)
    return graph


def reachable_outputs(
    config: HiRiseConfig,
    src: int,
    failed_channels: Optional[Iterable[Tuple[int, int, int]]] = None,
) -> Set[int]:
    """Outputs reachable from an input through the resource graph."""
    if not 0 <= src < config.radix:
        raise ValueError(f"port {src} out of range")
    graph = build_resource_graph(config, failed_channels=failed_channels)
    reached = nx.descendants(graph, _input_node(src))
    return {node[1] for node in reached if node[0] == "out"}


def is_fully_connected(
    config: HiRiseConfig,
    failed_channels: Optional[Iterable[Tuple[int, int, int]]] = None,
) -> bool:
    """True when every input can reach every output.

    Note: output-binned allocation dedicates each (input, output) pair a
    channel, so reachability via *some* channel suffices; the graph edges
    already encode the per-destination channel choice.
    """
    graph = build_resource_graph(config, failed_channels=failed_channels)
    all_outputs = {_output_node(dst) for dst in range(config.radix)}
    for src in range(config.radix):
        reached = nx.descendants(graph, _input_node(src))
        if not all_outputs <= reached:
            return False
    return True

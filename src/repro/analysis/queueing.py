"""Queueing-theoretic latency estimates for contested switch outputs.

A switch output serving fixed-length packets is close to an M/D/1 queue:
Poisson-ish arrivals (many independent Bernoulli sources), deterministic
service of ``flits + 1`` cycles (data plus the arbitration cycle).  The
Pollaczek-Khinchine mean wait for deterministic service,

    W = rho * S / (2 * (1 - rho)),

predicts the hockey-stick onset of Fig 10 and the hotspot latency scale
of Fig 11(a); the tests validate both against the simulator.
"""


def service_cycles(packet_flits: int = 4) -> int:
    """Cycles one packet occupies its output (flits + arbitration)."""
    if packet_flits < 1:
        raise ValueError("packets need at least one flit")
    return packet_flits + 1


def zero_load_latency_cycles(packet_flits: int = 4) -> int:
    """Uncontended packet latency: pure serialisation.

    The head is granted the cycle it arrives and flits stream one per
    cycle, so the tail leaves ``packet_flits`` cycles after generation
    (matches the simulator's isolated-packet latency exactly).
    """
    if packet_flits < 1:
        raise ValueError("packets need at least one flit")
    return packet_flits


def md1_wait_cycles(load: float, packet_flits: int = 4) -> float:
    """Mean M/D/1 queueing wait at an output, in cycles.

    Args:
        load: Aggregate offered load on the output in packets/cycle.
        packet_flits: Packet length.

    Raises:
        ValueError: If the load is negative or at/above saturation
            (rho >= 1 has no steady state).
    """
    if load < 0:
        raise ValueError("load must be non-negative")
    service = service_cycles(packet_flits)
    rho = load * service
    if rho >= 1.0:
        raise ValueError(
            f"offered load {load} saturates the output "
            f"(rho = {rho:.2f} >= 1); no steady-state wait exists"
        )
    return rho * service / (2.0 * (1.0 - rho))


def output_latency_estimate(load: float, packet_flits: int = 4) -> float:
    """Mean packet latency at a contested output: wait + serialisation."""
    return md1_wait_cycles(load, packet_flits) + zero_load_latency_cycles(
        packet_flits
    )

"""Analytical models: capacity bounds, queueing estimates, connectivity.

The cycle simulator *measures*; this subpackage *predicts*, giving the
closed-form cross-checks a systems evaluation should have:

* ``capacity`` — exact per-resource throughput bounds for fixed-route
  (binned) traffic, explaining e.g. the 1-channel configuration's early
  saturation and the Section VI-B pathological corner analytically;
* ``queueing`` — M/D/1-style latency estimates for contested outputs and
  zero-load latency, matching the simulator's hockey-stick onset;
* ``connectivity`` — a networkx resource graph of the Hi-Rise datapath
  for reachability proofs, including under injected TSV failures.

Every prediction is validated against the simulator in the test suite.
"""

from repro.analysis.capacity import (
    ResourceLoad,
    bottleneck,
    resource_loads,
    throughput_bound,
)
from repro.analysis.queueing import (
    md1_wait_cycles,
    output_latency_estimate,
    service_cycles,
    zero_load_latency_cycles,
)
from repro.analysis.connectivity import (
    build_resource_graph,
    is_fully_connected,
    reachable_outputs,
)

__all__ = [
    "ResourceLoad",
    "bottleneck",
    "resource_loads",
    "throughput_bound",
    "md1_wait_cycles",
    "output_latency_estimate",
    "service_cycles",
    "zero_load_latency_cycles",
    "build_resource_graph",
    "is_fully_connected",
    "reachable_outputs",
]

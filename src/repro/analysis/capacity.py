"""Exact capacity bounds for fixed-route traffic on the Hi-Rise datapath.

Under binned channel allocation every (input, output) flow has a fixed
path: input port -> (intermediate output | one specific L2LC) -> final
output.  Each resource serialises packets at ``1 / (flits + 1)`` packets
per cycle (the packet's flits plus its arbitration cycle), so a demand
matrix is sustainable iff every resource's aggregate load stays below its
capacity — and the largest sustainable scaling of the demands is set by
the most loaded resource.

This reproduces the paper's structural arguments in closed form: the
1-channel configuration saturates when one L2LC must carry 16 inputs'
remote traffic; the Section VI-B pathological pattern is bounded by
``c / (flits + 1)`` packets per cycle per layer pair; uniform random
traffic's binding constraint for c >= 2 is the output (not the channels).
"""

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.config import AllocationPolicy, HiRiseConfig
from repro.core.channels import make_allocation

Demands = Dict[Tuple[int, int], float]
"""Offered load per (src, dst) pair, in packets/cycle."""


@dataclass(frozen=True)
class ResourceLoad:
    """Aggregate offered load and capacity of one datapath resource."""

    resource: Tuple
    load: float
    capacity: float

    @property
    def utilisation(self) -> float:
        return self.load / self.capacity


def service_capacity(packet_flits: int) -> float:
    """Packets/cycle one resource can serialise (flits + arbitration)."""
    if packet_flits < 1:
        raise ValueError("packets need at least one flit")
    return 1.0 / (packet_flits + 1)


def resource_loads(
    config: HiRiseConfig,
    demands: Demands,
    packet_flits: int = 4,
) -> List[ResourceLoad]:
    """Per-resource loads for a demand matrix under fixed routing.

    Covers input ports, final outputs, and (for cross-layer flows) the
    L2LC each flow is binned to.  Priority allocation pools a layer
    pair's channels into one resource of ``c``-fold capacity.

    Raises:
        ValueError: On out-of-range ports or negative demands.
    """
    capacity = service_capacity(packet_flits)
    alloc = make_allocation(config)
    loads: Dict[Tuple, float] = {}

    def add(resource: Tuple, rate: float) -> None:
        loads[resource] = loads.get(resource, 0.0) + rate

    for (src, dst), rate in demands.items():
        if not 0 <= src < config.radix or not 0 <= dst < config.radix:
            raise ValueError(f"demand {src}->{dst} out of range")
        if rate < 0:
            raise ValueError("demands must be non-negative")
        if rate == 0:
            continue
        add(("input", src), rate)
        add(("output", dst), rate)
        src_layer = config.layer_of_port(src)
        dst_layer = config.layer_of_port(dst)
        if src_layer == dst_layer:
            continue
        if config.allocation is AllocationPolicy.PRIORITY:
            add(("pair", src_layer, dst_layer), rate)
        else:
            channel = alloc.channel_for(config.local_index(src), dst)
            add(("ch", src_layer, dst_layer, channel), rate)

    result = []
    for resource, load in loads.items():
        if resource[0] == "pair":
            resource_capacity = capacity * config.channel_multiplicity
        else:
            resource_capacity = capacity
        result.append(
            ResourceLoad(resource=resource, load=load,
                         capacity=resource_capacity)
        )
    return result


def bottleneck(
    config: HiRiseConfig,
    demands: Demands,
    packet_flits: int = 4,
) -> ResourceLoad:
    """The most utilised resource for a demand matrix.

    Raises:
        ValueError: If the demand matrix is empty.
    """
    loads = resource_loads(config, demands, packet_flits)
    if not loads:
        raise ValueError("no demands")
    return max(loads, key=lambda entry: entry.utilisation)


def throughput_bound(
    config: HiRiseConfig,
    demands: Demands,
    packet_flits: int = 4,
) -> float:
    """Upper bound on deliverable aggregate throughput (packets/cycle).

    The demand *pattern* is scaled until its bottleneck resource
    saturates; the bound is the scaled aggregate (capped at the offered
    aggregate when the pattern is already sustainable).  Exact for fixed
    routing and work-conserving arbitration; the simulator lands below it
    by its two-phase matching efficiency.
    """
    total = sum(demands.values())
    if total == 0:
        return 0.0
    worst = bottleneck(config, demands, packet_flits)
    scale = min(1.0, 1.0 / worst.utilisation)
    return total * scale

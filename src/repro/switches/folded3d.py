"""Cycle model of the baseline 3D folded switch (Sewell et al.).

Folding a 2D Swizzle-Switch over L silicon layers redistributes the inputs
and outputs (N/L of each per layer) but leaves the datapath a single
radix-N matrix with the same LRG arbitration: every layer has a cross-point
for all N outputs and the 64 output buses run through all layers on TSVs.
Cycle-for-cycle the folded switch therefore behaves exactly like the 2D
switch; what changes is physical — more capacitance (TSVs), hence a lower
clock, and a very large TSV count (N x flit-width = 8192 for the paper's
64-radix, 128-bit switch).  Those effects are modelled in
:mod:`repro.physical`.
"""

from typing import Optional

from repro.network.port import PortConfig
from repro.switches.swizzle2d import SwizzleSwitch2D


class FoldedSwitch3D(SwizzleSwitch2D):
    """Radix-N 2D switch folded over ``layers`` silicon layers.

    Args:
        radix: Switch radix; must divide evenly by ``layers``.
        layers: Number of stacked silicon layers.
        port_config: Virtual-channel configuration for every input port.
    """

    def __init__(
        self,
        radix: int,
        layers: int = 4,
        port_config: Optional[PortConfig] = None,
    ) -> None:
        if layers < 2:
            raise ValueError("a folded switch needs at least two layers")
        if radix % layers != 0:
            raise ValueError(
                f"radix {radix} must divide evenly across {layers} layers"
            )
        super().__init__(radix, port_config)
        self.layers = layers
        self.ports_per_layer = radix // layers

    def layer_of_port(self, port: int) -> int:
        """Silicon layer (0-based) hosting the given input/output port."""
        if not 0 <= port < self.radix:
            raise ValueError(f"port {port} out of range")
        return port // self.ports_per_layer

    def local_index(self, port: int) -> int:
        """Index of the port within its layer."""
        if not 0 <= port < self.radix:
            raise ValueError(f"port {port} out of range")
        return port % self.ports_per_layer

"""Cycle-accurate model of the flat 2D Swizzle-Switch.

The Swizzle-Switch is a matrix crossbar with arbitration embedded in the
cross-points: each output column holds an LRG priority vector over all
inputs.  A cycle is spent either arbitrating for an output or streaming a
data flit across an established connection ("arbitrate or transmit in a
single cycle"), so a ``k``-flit packet occupies its output for ``k + 1``
cycles.  Connections persist from the head flit's grant until the tail flit
transfers.

Cycle order within :meth:`step`:

1. *transmit* — every established connection moves one flit to its output;
   tails release the input and the output (a freed output can be
   re-arbitrated in the same cycle's arbitration phase);
2. *refill*  — each input port moves up to one flit from its source queue
   into a virtual channel;
3. *arbitrate* — idle inputs present the destination of their candidate
   head flit; each free output grants its highest-LRG-priority requestor
   and the winner's priority drops to the bottom.
"""

from typing import Dict, List, Optional

from repro.arbitration.lrg import LRGArbiter
from repro.network.engine import SwitchModel
from repro.network.flit import Flit
from repro.network.packet import Packet
from repro.network.port import InputPort, PortConfig


class SwizzleSwitch2D(SwitchModel):
    """A radix-N flat matrix crossbar with per-output LRG arbitration.

    Args:
        radix: Number of input ports (= number of output ports).
        port_config: Virtual-channel configuration for every input port.
    """

    def __init__(self, radix: int, port_config: Optional[PortConfig] = None) -> None:
        if radix < 2:
            raise ValueError("radix must be >= 2")
        self.radix = radix
        self.num_ports = radix
        self.ports: List[InputPort] = [
            InputPort(i, port_config) for i in range(radix)
        ]
        self.output_arbiters: List[LRGArbiter] = [
            LRGArbiter(radix) for _ in range(radix)
        ]
        # output -> input currently holding it (None = free).
        self.output_owner: List[Optional[int]] = [None] * radix
        # input -> output it currently drives (mirror of output_owner).
        self.input_target: List[Optional[int]] = [None] * radix

    # ------------------------------------------------------------------
    # SwitchModel interface
    # ------------------------------------------------------------------
    def inject(self, packet: Packet) -> None:
        if not 0 <= packet.src < self.radix:
            raise ValueError(f"source port {packet.src} out of range")
        if not 0 <= packet.dst < self.radix:
            raise ValueError(f"destination port {packet.dst} out of range")
        self.ports[packet.src].enqueue_packet(packet)

    def step(self, cycle: int) -> List[Flit]:
        ejected = self._transmit(cycle)
        for port in self.ports:
            port.refill(cycle)
        # An output (or input) whose tail transferred this cycle had its
        # wires busy with data, so it cannot also arbitrate this cycle:
        # every packet pays one arbitration cycle ("arbitrate or transmit
        # in a single cycle").
        cooling_outputs = {f.dst for f in ejected if f.is_tail}
        cooling_inputs = {f.src for f in ejected if f.is_tail}
        self._arbitrate(cooling_inputs, cooling_outputs)
        return ejected

    def occupancy(self) -> int:
        return sum(port.total_occupancy() for port in self.ports)

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------
    def _transmit(self, cycle: int) -> List[Flit]:
        ejected: List[Flit] = []
        for port in self.ports:
            if port.active_has_flit():
                flit = port.transmit()
                flit.ejected_cycle = cycle
                ejected.append(flit)
                if flit.is_tail:
                    self.output_owner[flit.dst] = None
                    self.input_target[flit.src] = None
        return ejected

    def _arbitrate(self, cooling_inputs=frozenset(), cooling_outputs=frozenset()) -> None:
        # Gather one request per idle input.
        requests_by_output: Dict[int, List[int]] = {}
        candidate_vcs: Dict[int, int] = {}

        def viable(flit: Flit) -> bool:
            return (
                self.output_owner[flit.dst] is None
                and flit.dst not in cooling_outputs
            )

        for port in self.ports:
            if port.port_id in cooling_inputs:
                continue
            vc = port.candidate_vc(viable)
            if vc is None:
                continue
            front = port.vcs[vc].front()
            assert front is not None and front.is_head
            candidate_vcs[port.port_id] = vc
            requests_by_output.setdefault(front.dst, []).append(port.port_id)

        for output, requestors in requests_by_output.items():
            if self.output_owner[output] is not None:
                continue
            arbiter = self.output_arbiters[output]
            winner = arbiter.arbitrate(requestors)
            assert winner is not None
            arbiter.update(winner)
            self.ports[winner].grant(candidate_vcs[winner])
            self.output_owner[output] = winner
            self.input_target[winner] = output

"""Baseline switch models and the input-queued VOQ fabric.

The flat 2D Swizzle-Switch and the 3D folded switch are matrix
crossbars with embedded per-output LRG arbitration.  Both are
behaviourally identical — folding redistributes inputs/outputs over
layers without changing the datapath or arbitration — so the 3D cycle
model subclasses the 2D model; the differences (TSV count, wire
loading, clock frequency) live in :mod:`repro.physical`.

:class:`VOQSwitch` is the input-queued counterpoint: virtual output
queues per input scheduled by iSLIP or a maximum-weight-matching
oracle (:mod:`repro.arbitration.islip` / :mod:`repro.arbitration.mwm`),
selected via ``config.arbitration`` like every Hi-Rise scheme.

:func:`make_switch` is the scheme-dispatching factory the harness
uses: it builds a :class:`repro.core.HiRiseSwitch` for the paper's
schemes and a :class:`VOQSwitch` for the VOQ schemes, passing the
observability hooks through unchanged.
"""

from typing import Optional

from repro.switches.swizzle2d import SwizzleSwitch2D
from repro.switches.folded3d import FoldedSwitch3D
from repro.switches.voq import VOQStage, VOQSwitch

__all__ = [
    "SwizzleSwitch2D",
    "FoldedSwitch3D",
    "VOQStage",
    "VOQSwitch",
    "make_switch",
]


def make_switch(
    config,
    tracer: Optional[object] = None,
    faults: Optional[object] = None,
    invariants: Optional[object] = None,
    perf: Optional[object] = None,
):
    """Build the switch model that implements ``config.arbitration``.

    VOQ schemes (``config.uses_voq``) get a :class:`VOQSwitch`; every
    Hi-Rise scheme gets the fast :class:`repro.core.HiRiseSwitch`.  The
    opt-in hooks are forwarded unchanged, so callers wire tracing,
    faults, invariants, and perf counters identically for both families.
    """
    if config.uses_voq:
        return VOQSwitch(
            config,
            tracer=tracer,
            faults=faults,
            invariants=invariants,
            perf=perf,
        )
    from repro.core.hirise import HiRiseSwitch

    return HiRiseSwitch(
        config,
        tracer=tracer,
        faults=faults,
        invariants=invariants,
        perf=perf,
    )

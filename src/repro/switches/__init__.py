"""Baseline switch models: the flat 2D Swizzle-Switch and the 3D folded switch.

Both baselines are matrix crossbars with embedded per-output LRG
arbitration.  The 3D folded switch (Sewell et al.) is *behaviourally*
identical to the 2D switch — folding redistributes inputs/outputs over
layers without changing the datapath or arbitration — so its cycle model
subclasses the 2D model; the differences (TSV count, wire loading, clock
frequency) live in :mod:`repro.physical`.
"""

from repro.switches.swizzle2d import SwizzleSwitch2D
from repro.switches.folded3d import FoldedSwitch3D

__all__ = ["SwizzleSwitch2D", "FoldedSwitch3D"]

"""Virtual-output-queued crossbar driven by iterative schedulers.

The input-queued architecture the paper positions Hi-Rise against: each
input fans its source queue into one FIFO per output (a *virtual output
queue*), eliminating head-of-line blocking, and a centralized scheduler
computes an input/output matching every cycle over a weight matrix of
head-of-line flit ages (oldest-cell-first weighting; see
:meth:`VOQSwitch._schedule`) — iSLIP (``arbitration="islip"``, iteration
count from
``config.islip_iterations``) or the maximum-weight-matching oracle
(``arbitration="mwm"``).  The switch keeps the Hi-Rise timing contract
so comparisons are fair: one flit per established connection per cycle,
connections persist from the head flit's grant until the tail transfers,
and a port whose tail moved this cycle cannot also be scheduled this
cycle ("arbitrate or transmit in a single cycle").

Cycle order within :meth:`step` (mirrors ``SwizzleSwitch2D``):

1. *faults* — due :class:`repro.faults.FaultSchedule` events land first,
   so an input stuck at cycle ``k`` is masked from cycle ``k``'s
   scheduling;
2. *transmit* — every established connection moves one flit from its
   VOQ to its output; tails release both endpoints;
3. *refill* — each unstuck input moves up to one flit from its source
   queue into the VOQ of that flit's destination;
4. *schedule* — the scheduler matches idle inputs to free outputs over
   the head-of-line-age weight matrix; every matched pair locks a
   connection that starts streaming next cycle.

Stuck-input faults freeze the whole input: no refill (so the VOQ
occupancy the scheduler could see stops growing), a zeroed row in the
weight matrix (so iSLIP/MWM never chase the phantom backlog of a port
that cannot transmit), and its source queue simply backs up until the
repair event.  An already-established connection of a stuck input keeps
draining — the wedge is at the request path, matching the Hi-Rise
kernels' "stopped requesting" semantics.

Observability hooks match the Hi-Rise constructors: ``tracer=`` (emits
``inject``/``eject``/``cool``/``p2_grant`` exactly like the 3D switch —
with the flat resource id of a connection being its output port id —
plus the VOQ-specific ``sched_grant``/``sched_accept`` rounds),
``faults=``, ``invariants=`` (see
:class:`repro.check.MatchingInvariantChecker`), and ``perf=``.
"""

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

import time

from repro.arbitration.islip import ISLIPArbiter
from repro.arbitration.mwm import MWMOracle
from repro.core.config import ArbitrationScheme, HiRiseConfig
from repro.faults import FaultCursor, FaultSchedule, apply_fault_events
from repro.network.engine import SwitchModel
from repro.network.flit import Flit
from repro.network.packet import Packet
from repro.network.port import SourceQueue
from repro.obs.trace import COOL, EJECT, P2_GRANT, SCHED_ACCEPT, SCHED_GRANT


class VOQStage:
    """One input's virtual-output-queue bank.

    Fans the input's unbounded :class:`SourceQueue` into one flit FIFO
    per output at one flit per cycle (the network-interface bandwidth),
    and exposes the per-output occupancy row the schedulers weigh.
    """

    __slots__ = ("input_id", "source", "voqs", "occupancy_row")

    def __init__(self, input_id: int, num_outputs: int) -> None:
        self.input_id = input_id
        self.source = SourceQueue()
        self.voqs: List[Deque[Flit]] = [deque() for _ in range(num_outputs)]
        #: Per-output VOQ length in flits; aliased by the switch into
        #: the scheduler's weight matrix (updated in place).
        self.occupancy_row: List[int] = [0] * num_outputs

    def refill(self) -> None:
        """Move up to one flit from the source queue into its VOQ."""
        flit = self.source.front()
        if flit is None:
            return
        self.source.popleft()
        self.voqs[flit.dst].append(flit)
        self.occupancy_row[flit.dst] += 1

    def pop(self, output: int) -> Flit:
        """Dequeue the front flit of the VOQ toward ``output``."""
        self.occupancy_row[output] -= 1
        return self.voqs[output].popleft()

    def total_occupancy(self) -> int:
        """Flits resident in this stage (source queue + all VOQs)."""
        return len(self.source) + sum(self.occupancy_row)


class VOQSwitch(SwitchModel):
    """Radix-N input-queued crossbar scheduled by iSLIP or MWM.

    Args:
        config: A :class:`HiRiseConfig` whose ``arbitration`` is one of
            the VOQ schemes (``config.uses_voq`` true).  Geometry fields
            beyond ``radix`` are ignored — the VOQ fabric is flat — but
            keeping the shared config type lets the harness sweep VOQ
            and Hi-Rise points through identical machinery.
        tracer / faults / invariants / perf: The same opt-in hooks the
            Hi-Rise constructors take, observing-only (traced runs are
            bit-identical to untraced runs).
    """

    def __init__(
        self,
        config: HiRiseConfig,
        tracer: Optional[object] = None,
        faults: Optional[FaultSchedule] = None,
        invariants: Optional[object] = None,
        perf: Optional[object] = None,
    ) -> None:
        if not config.uses_voq:
            raise ValueError(
                f"VOQSwitch requires a VOQ scheme, got {config.arbitration!r}"
            )
        self.config = config
        radix = config.radix
        self.radix = radix
        self.num_ports = radix
        self.stages: List[VOQStage] = [
            VOQStage(i, radix) for i in range(radix)
        ]
        if config.arbitration is ArbitrationScheme.ISLIP:
            self.scheduler = ISLIPArbiter(radix, config.islip_iterations)
        else:
            self.scheduler = MWMOracle(radix)
        # Fault-hook compatibility: CORRUPT_CLRG events index
        # ``subblock_arbiters[output]`` and no-op when the arbiter has
        # no ``counters`` bank — which the VOQ schedulers never do.
        self.subblock_arbiters: Dict[int, object] = {
            out: self.scheduler for out in range(radix)
        }
        # input -> (resource id, output).  The VOQ fabric is flat, so a
        # connection's flat resource id is its output port id — probes,
        # the analyzer, and telemetry snapshots read these fields with
        # the same shapes the Hi-Rise kernels expose.
        self.connections: Dict[int, Tuple[int, int]] = {}
        self.output_owner: List[Optional[int]] = [None] * radix
        self.grant_cycle: Dict[int, int] = {}
        self.failed_channels = frozenset(config.failed_channels)
        self.stuck_inputs: set = set()
        self._fault_cursor = (
            FaultCursor(faults) if faults is not None else None
        )
        # Weight matrix handed to the scheduler: rows alias the stages'
        # occupancy rows except when masking requires a scratch copy.
        self._zero_row = [0] * radix

        self._tracer = tracer
        if tracer is not None:
            tracer.bind(self)
        self._perf = perf
        if perf is not None:
            perf.bind(self)
        self._invariants = invariants
        if invariants is not None:
            invariants.bind(self)

    # ------------------------------------------------------------------
    # SwitchModel interface
    # ------------------------------------------------------------------
    def inject(self, packet: Packet) -> None:
        src = packet.src
        if not 0 <= src < self.num_ports:
            raise ValueError(f"source port {src} out of range")
        if not 0 <= packet.dst < self.num_ports:
            raise ValueError(f"destination port {packet.dst} out of range")
        self.stages[src].source.append_packet(packet)
        if self._tracer is not None:
            self._tracer.inject(
                packet.created_cycle, src, packet.dst,
                packet.num_flits, packet.packet_id,
            )

    def step(self, cycle: int) -> List[Flit]:
        perf = self._perf
        if perf is None:
            return self._step(cycle)
        perf.cycles_total += 1
        if cycle % perf.stride:
            return self._step(cycle)
        perf.cycles_sampled += 1
        t0 = time.perf_counter_ns()
        ejected = self._step(cycle)
        perf.add("step", time.perf_counter_ns() - t0, len(ejected))
        return ejected

    def occupancy(self) -> int:
        return sum(stage.total_occupancy() for stage in self.stages)

    # ------------------------------------------------------------------
    # Fault hook
    # ------------------------------------------------------------------
    def _refresh_fault_state(self) -> None:
        """Nothing to rebuild: stuck/failed state is read per cycle."""

    # ------------------------------------------------------------------
    # Cycle phases
    # ------------------------------------------------------------------
    def _step(self, cycle: int) -> List[Flit]:
        tracer = self._tracer
        if tracer is not None:
            tracer.cycle = cycle
        cursor = self._fault_cursor
        if cursor is not None:
            due = cursor.take(cycle)
            if due:
                apply_fault_events(self, due)
        ejected = self._transmit(cycle)
        stuck = self.stuck_inputs
        for stage in self.stages:
            if stage.input_id not in stuck:
                stage.refill()
        cooling_inputs = set()
        cooling_outputs = set()
        for flit in ejected:
            if flit.is_tail:
                cooling_inputs.add(flit.src)
                cooling_outputs.add(flit.dst)
        self._schedule(cycle, cooling_inputs, cooling_outputs)
        if self._invariants is not None:
            self._invariants.after_step(self, cycle, ejected)
        return ejected

    def _transmit(self, cycle: int) -> List[Flit]:
        ejected: List[Flit] = []
        released: List[int] = []
        tracer = self._tracer
        for inp, (resource, output) in self.connections.items():
            stage = self.stages[inp]
            if not stage.voqs[output]:
                # The rest of the packet has not refilled yet: the
                # connection stalls this cycle but stays locked.
                continue
            flit = stage.pop(output)
            flit.ejected_cycle = cycle
            ejected.append(flit)
            if flit.is_tail:
                released.append(inp)
                self.output_owner[output] = None
                if tracer is not None:
                    tracer.emit(EJECT, flit.src, flit.dst, flit.seq, 1)
                    tracer.emit(
                        COOL, resource, inp, output,
                        self.grant_cycle.get(inp, -1),
                    )
            elif tracer is not None:
                tracer.emit(EJECT, flit.src, flit.dst, flit.seq, 0)
        for inp in released:
            del self.connections[inp]
        return ejected

    def _schedule(self, cycle, cooling_inputs, cooling_outputs) -> None:
        """Match idle inputs to free outputs over head-of-line ages.

        The weight of (input, output) is the age of the VOQ's head flit
        plus one — the oldest-cell-first weighting, which MWM turns into
        the OCF discipline.  Occupancy-weighted MWM (longest queue
        first) equalizes queue *lengths*, so under an oversubscribed
        output each input's service is its arrivals minus a common queue
        level: a small mean carrying full arrival noise, i.e. unfair at
        any horizon.  Age weights approximate FCFS across inputs
        instead.  iSLIP only reads weights as request indicators, so for
        it the two weightings are identical.
        """
        radix = self.radix
        connections = self.connections
        output_owner = self.output_owner
        stuck = self.stuck_inputs
        blocked = [
            output_owner[out] is not None or out in cooling_outputs
            for out in range(radix)
        ]
        weights: List[List[int]] = []
        any_request = False
        for inp in range(radix):
            if (
                inp in connections
                or inp in stuck
                or inp in cooling_inputs
            ):
                weights.append(self._zero_row)
                continue
            voqs = self.stages[inp].voqs
            row = [
                0 if blocked[out] or not voqs[out]
                else cycle - voqs[out][0].created_cycle + 1
                for out in range(radix)
            ]
            if not any_request and any(row):
                any_request = True
            weights.append(row)
        if not any_request:
            return

        tracer = self._tracer
        observer = None
        if tracer is not None:
            emit = tracer.emit

            def observer(iteration, stage_name, pairs):
                kind = SCHED_GRANT if stage_name == "grant" else SCHED_ACCEPT
                for port, partner in pairs:
                    if stage_name == "grant":
                        weight = weights[partner][port]
                    else:
                        weight = weights[port][partner]
                    emit(kind, iteration, port, partner, weight)

        matching = self.scheduler.match(weights, observer=observer)
        if tracer is not None and isinstance(self.scheduler, MWMOracle):
            # MWM has no rounds: report the final matching as a single
            # iteration-0 grant+accept so audits see one schema.
            for inp, out in matching.items():
                emit(SCHED_GRANT, 0, out, inp, weights[inp][out])
                emit(SCHED_ACCEPT, 0, inp, out, weights[inp][out])
        for inp, out in matching.items():
            connections[inp] = (out, out)
            output_owner[out] = inp
            self.grant_cycle[inp] = cycle
            if tracer is not None:
                emit = tracer.emit
                emit(P2_GRANT, out, inp, out, -1)

"""Generic parameter sweeps with replication and confidence intervals.

The figure functions cover the paper's sweeps; this module provides the
machinery for *new* studies: cross any parameter grid with any scalar
measurement, optionally replicating each point over seeds to get
confidence intervals, and render or export the result like any other
harness product.
"""

import itertools
import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.metrics.confidence import ConfidenceInterval, replicate


@dataclass(frozen=True)
class SweepPoint:
    """One measured grid point."""

    parameters: Dict[str, object]
    value: float
    interval: Optional[ConfidenceInterval] = None


Measurement = Callable[..., float]
"""Measurement callable: keyword parameters (+ ``seed``) -> scalar."""


def parameter_grid(**axes: Sequence) -> List[Dict[str, object]]:
    """Cross the named axes into a list of parameter dictionaries.

    >>> parameter_grid(a=[1, 2], b=["x"])
    [{'a': 1, 'b': 'x'}, {'a': 2, 'b': 'x'}]
    """
    if not axes:
        return [{}]
    names = list(axes)
    combinations = itertools.product(*(axes[name] for name in names))
    return [dict(zip(names, combo)) for combo in combinations]


def run_sweep(
    measurement: Measurement,
    grid: Sequence[Dict[str, object]],
    replications: int = 1,
    confidence: float = 0.95,
    base_seed: int = 0,
    workers: int = 1,
    telemetry=None,
    task_timeout: Optional[float] = None,
    max_retries: Optional[int] = None,
    backoff_base: Optional[float] = None,
    checkpoint=None,
) -> List[SweepPoint]:
    """Measure every grid point, optionally replicated over seeds.

    Args:
        measurement: Called as ``measurement(seed=..., **parameters)``;
            must return a scalar.  Must be picklable (a module-level
            function) for ``workers > 1`` to actually parallelise.
        grid: Parameter dictionaries (see :func:`parameter_grid`).
        replications: Independent seeds per point; with more than one, a
            t-confidence interval accompanies each point.
        workers: Processes to spread the (point, replication) tasks over.
            Results are identical to the serial path for any value; see
            :mod:`repro.harness.parallel`.
        telemetry: Optional :class:`repro.obs.SweepTelemetry`; receives a
            heartbeat per completed (point, replication) task, for any
            worker count, without affecting the results.
        task_timeout / max_retries / backoff_base / checkpoint: Passing
            any of these routes execution through the crash-resilient
            scheduler (:class:`repro.harness.parallel.ResiliencePolicy`):
            per-task timeouts, bounded retries with exponential backoff,
            worker-crash isolation, and JSONL checkpoint/resume.
            Results stay bit-identical to the plain serial sweep.

    Raises:
        ValueError: If ``replications`` or ``workers`` is not positive.
    """
    if replications < 1:
        raise ValueError("need at least one replication")
    resilient = any(
        option is not None
        for option in (task_timeout, max_retries, backoff_base, checkpoint)
    )
    # Fleet-aware measurements go through the parallel dispatcher even
    # serially: its prepass batches same-config tasks through the
    # vectorized fleet kernel (bit-identical per lane, scalar fallback).
    fleet_capable = hasattr(measurement, "fleet_plan")
    if workers != 1 or telemetry is not None or resilient or fleet_capable:
        from repro.harness import parallel
        return parallel.run_sweep(
            measurement, grid, replications=replications,
            confidence=confidence, base_seed=base_seed, workers=workers,
            telemetry=telemetry, task_timeout=task_timeout,
            max_retries=max_retries, backoff_base=backoff_base,
            checkpoint=checkpoint,
        )
    points: List[SweepPoint] = []
    for parameters in grid:
        if replications == 1:
            value = float(measurement(seed=base_seed, **parameters))
            points.append(SweepPoint(parameters=dict(parameters), value=value))
        else:
            interval = replicate(
                lambda seed: float(measurement(seed=seed, **parameters)),
                num_replications=replications,
                confidence=confidence,
                base_seed=base_seed,
            )
            points.append(
                SweepPoint(
                    parameters=dict(parameters),
                    value=interval.mean,
                    interval=interval,
                )
            )
    return points


def render_sweep(points: Sequence[SweepPoint], title: str) -> str:
    """Aligned text rendering of sweep results."""
    lines = [title, "=" * len(title)]
    if not points:
        lines.append("(no points)")
        return "\n".join(lines)
    names = list(points[0].parameters)
    header = "  ".join(f"{name:>12}" for name in names) + f"  {'value':>12}"
    if points[0].interval is not None:
        header += f"  {'95% hw':>10}"
    lines.append(header)
    for point in points:
        row = "  ".join(
            f"{str(point.parameters[name]):>12}" for name in names
        )
        row += f"  {point.value:>12.4g}"
        if point.interval is not None:
            row += f"  {point.interval.half_width:>10.3g}"
        lines.append(row)
    return "\n".join(lines)


def to_json(points: Sequence[SweepPoint], title: Optional[str] = None) -> str:
    """Machine-readable JSON rendering of sweep results.

    The schema mirrors :class:`SweepPoint`: a ``points`` list of
    ``{parameters, value}`` objects, each with an ``interval`` object
    (``mean``/``half_width``/``confidence``/``observations``) when the
    point was replicated.  Non-JSON parameter values (enums, objects) are
    stringified rather than rejected.
    """
    payload: Dict[str, object] = {}
    if title is not None:
        payload["title"] = title
    payload["points"] = [
        {
            "parameters": point.parameters,
            "value": point.value,
            **(
                {
                    "interval": {
                        "mean": point.interval.mean,
                        "half_width": point.interval.half_width,
                        "confidence": point.interval.confidence,
                        "observations": point.interval.observations,
                    }
                }
                if point.interval is not None else {}
            ),
        }
        for point in points
    ]
    return json.dumps(payload, indent=2, default=str)


def to_series(
    points: Sequence[SweepPoint],
    x: str,
    series_by: Optional[str] = None,
) -> Dict[str, List[Tuple[float, float]]]:
    """Regroup sweep points into figure-style series for export.

    Args:
        x: Parameter name used as the x-axis.
        series_by: Optional parameter whose values name the series (a
            single unnamed series otherwise).
    """
    series: Dict[str, List[Tuple[float, float]]] = {}
    for point in points:
        key = (
            str(point.parameters[series_by]) if series_by is not None
            else "sweep"
        )
        series.setdefault(key, []).append(
            (point.parameters[x], point.value)
        )
    return series

"""Text rendering of regenerated tables and figure series."""

from typing import Dict, List, Sequence, Tuple, Union

from repro.harness.tables import CostRow, SpeedupRow


def _fmt(value, digits=3) -> str:
    if value is None:
        return "-"
    if isinstance(value, int):
        return str(value)
    return f"{value:.{digits}g}" if abs(value) < 1000 else f"{value:.0f}"


def render_table(rows: Sequence[Union[CostRow, SpeedupRow]], title: str) -> str:
    """Render cost or speedup rows as aligned text with paper columns."""
    lines = [title, "=" * len(title)]
    if rows and isinstance(rows[0], CostRow):
        header = (
            f"{'Design':<18} {'Configuration':<24} "
            f"{'Area mm2':>14} {'Freq GHz':>14} {'E pJ':>12} "
            f"{'Tbps':>14} {'#TSVs':>12}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in rows:
            lines.append(
                f"{row.design:<18} {row.configuration:<24} "
                f"{_fmt(row.area_mm2):>6} ({_fmt(row.paper_area_mm2):>5}) "
                f"{_fmt(row.frequency_ghz):>6} ({_fmt(row.paper_frequency_ghz):>5}) "
                f"{_fmt(row.energy_pj, 3):>5} ({_fmt(row.paper_energy_pj):>4}) "
                f"{_fmt(row.throughput_tbps):>6} ({_fmt(row.paper_throughput_tbps):>5}) "
                f"{row.tsv_count:>5} ({_fmt(row.paper_tsv_count):>5})"
            )
        lines.append("(measured value first, paper value in parentheses)")
    else:
        header = (
            f"{'Mix':<6} {'avg MPKI':>16} {'Speedup':>18}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in rows:
            lines.append(
                f"{row.mix:<6} "
                f"{_fmt(row.avg_mpki):>7} ({_fmt(row.paper_avg_mpki):>5}) "
                f"{_fmt(row.speedup):>8} ({_fmt(row.paper_speedup):>5})"
            )
        lines.append("(measured value first, paper value in parentheses)")
    return "\n".join(lines)


def render_series(
    series: Dict[str, List[Tuple]], title: str, columns: Sequence[str]
) -> str:
    """Render figure data series as aligned text blocks."""
    lines = [title, "=" * len(title)]
    for name, points in series.items():
        lines.append(f"\n[{name}]")
        lines.append("  ".join(f"{c:>12}" for c in columns))
        for point in points:
            lines.append("  ".join(f"{_fmt(v, 4):>12}" for v in point))
    return "\n".join(lines)

"""Text rendering of regenerated tables, figure series, and audit reports."""

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.harness.tables import CostRow, SpeedupRow


def _fmt(value, digits=3) -> str:
    if value is None:
        return "-"
    if isinstance(value, int):
        return str(value)
    return f"{value:.{digits}g}" if abs(value) < 1000 else f"{value:.0f}"


def render_table(rows: Sequence[Union[CostRow, SpeedupRow]], title: str) -> str:
    """Render cost or speedup rows as aligned text with paper columns."""
    lines = [title, "=" * len(title)]
    if rows and isinstance(rows[0], CostRow):
        header = (
            f"{'Design':<18} {'Configuration':<24} "
            f"{'Area mm2':>14} {'Freq GHz':>14} {'E pJ':>12} "
            f"{'Tbps':>14} {'#TSVs':>12}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in rows:
            lines.append(
                f"{row.design:<18} {row.configuration:<24} "
                f"{_fmt(row.area_mm2):>6} ({_fmt(row.paper_area_mm2):>5}) "
                f"{_fmt(row.frequency_ghz):>6} ({_fmt(row.paper_frequency_ghz):>5}) "
                f"{_fmt(row.energy_pj, 3):>5} ({_fmt(row.paper_energy_pj):>4}) "
                f"{_fmt(row.throughput_tbps):>6} ({_fmt(row.paper_throughput_tbps):>5}) "
                f"{row.tsv_count:>5} ({_fmt(row.paper_tsv_count):>5})"
            )
        lines.append("(measured value first, paper value in parentheses)")
    else:
        header = (
            f"{'Mix':<6} {'avg MPKI':>16} {'Speedup':>18}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in rows:
            lines.append(
                f"{row.mix:<6} "
                f"{_fmt(row.avg_mpki):>7} ({_fmt(row.paper_avg_mpki):>5}) "
                f"{_fmt(row.speedup):>8} ({_fmt(row.paper_speedup):>5})"
            )
        lines.append("(measured value first, paper value in parentheses)")
    return "\n".join(lines)


def render_series(
    series: Dict[str, List[Tuple]], title: str, columns: Sequence[str]
) -> str:
    """Render figure data series as aligned text blocks."""
    lines = [title, "=" * len(title)]
    for name, points in series.items():
        lines.append(f"\n[{name}]")
        lines.append("  ".join(f"{c:>12}" for c in columns))
        for point in points:
            lines.append("  ".join(f"{_fmt(v, 4):>12}" for v in point))
    return "\n".join(lines)


def _md(value, digits: int = 4) -> str:
    if value is None:
        return "—"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{digits}g}"
    return str(value)


def render_audit_markdown(
    summary: Dict[str, object],
    regressions: Optional[Sequence[object]] = None,
) -> str:
    """Render an audit summary (``AuditReport.summary()``) as markdown.

    Takes the plain summary dict — not the report object — so a
    previously saved ``audit.json`` renders identically, and this module
    stays import-independent of :mod:`repro.obs.analyze`.  ``regressions``
    (from ``compare_audits``) adds a baseline-comparison section.
    """
    meta = summary.get("meta", {})
    trace = summary.get("trace", {})
    traffic = summary.get("traffic", {})
    fairness = summary.get("fairness", {})
    starvation = summary.get("starvation", {})
    clrg = summary.get("clrg", {})
    utilization = summary.get("utilization", {})
    anomalies = summary.get("anomalies", {})
    service = summary.get("service", {})
    faults = summary.get("faults", {})

    lines = ["# Switch trace audit", ""]
    config = ", ".join(
        f"{key}={meta[key]}"
        for key in (
            "radix", "layers", "channel_multiplicity", "arbitration",
            "allocation",
        )
        if key in meta
    )
    if config:
        lines += [f"*Configuration:* {config}", ""]
    lines += [
        "## Trace",
        "",
        "| metric | value |",
        "| --- | --- |",
        f"| events | {_md(trace.get('events'))} |",
        f"| cycles | {_md(trace.get('cycles'))} |",
        f"| dropped events | {_md(trace.get('dropped', 0))} |",
        "",
        "## Traffic",
        "",
        "| metric | value |",
        "| --- | --- |",
        f"| packets injected | {_md(traffic.get('packets_injected'))} |",
        f"| packets ejected | {_md(traffic.get('packets_ejected'))} |",
        f"| flits ejected | {_md(traffic.get('flits_ejected'))} |",
        "| throughput (flits/cycle) | "
        f"{_md(traffic.get('throughput_flits_per_cycle'))} |",
        "",
        "## Fairness",
        "",
        "| metric | value |",
        "| --- | --- |",
        f"| active inputs | {_md(service.get('active_inputs'))} |",
        f"| Jain index (whole trace) | {_md(fairness.get('jain'))} |",
        f"| max/min service ratio | {_md(fairness.get('max_min'))} |",
        f"| fairness window (cycles) | {_md(fairness.get('window'))} |",
        f"| epochs evaluated | {_md(fairness.get('epochs'))} |",
        f"| unfair epochs | {_md(fairness.get('unfair_epochs'))} |",
        "| unfair epoch fraction | "
        f"{_md(fairness.get('unfair_epoch_fraction'))} |",
        f"| epoch Jain minimum | {_md(fairness.get('jain_epoch_min'))} |",
        "",
        "## Starvation",
        "",
        "| metric | value |",
        "| --- | --- |",
        "| longest backlogged grant gap (cycles) | "
        f"{_md(starvation.get('max_gap_cycles'))} |",
        f"| worst input | {_md(starvation.get('max_gap_input'))} |",
        f"| starvation limit (cycles) | {_md(starvation.get('gap_limit'))} |",
        f"| starved inputs | {_md(starvation.get('starved_inputs', []))} |",
        "",
        "## CLRG dynamics",
        "",
        "| metric | value |",
        "| --- | --- |",
        f"| counter-bank halvings | {_md(clrg.get('halvings'))} |",
    ]
    class_grants = clrg.get("class_grants") or {}
    if class_grants:
        grants_by_class = ", ".join(
            f"c{cls}:{count}" for cls, count in class_grants.items()
        )
        lines.append(f"| grants by class | {grants_by_class} |")
    lines += ["", "## Utilization", ""]
    busiest = utilization.get("busiest") or []
    if busiest:
        lines += [
            "| resource | busy fraction | grants |",
            "| --- | --- | --- |",
        ]
        for entry in busiest:
            lines.append(
                f"| {entry.get('label', entry.get('resource'))} | "
                f"{_md(entry.get('busy_frac'))} | "
                f"{_md(entry.get('grants'))} |"
            )
    else:
        lines.append("No resource-hold events in the trace.")
    lines += ["", "## Anomalies", ""]
    items = anomalies.get("items") or []
    count = anomalies.get("count", 0)
    if not count:
        lines.append("None flagged.")
    else:
        lines += ["| kind | cycle | detail |", "| --- | --- | --- |"]
        for item in items:
            detail = ", ".join(
                f"{key}={_md(value)}"
                for key, value in (item.get("detail") or {}).items()
            )
            lines.append(
                f"| {item.get('kind')} | {_md(item.get('cycle'))} | "
                f"{detail} |"
            )
        dropped = anomalies.get("dropped", 0)
        if dropped:
            lines.append("")
            lines.append(f"*({dropped} further anomalies not stored.)*")
    # Fault-free traces (and pre-fault audit JSONs) skip this section,
    # so existing reports render unchanged.
    if faults.get("fault_events") or faults.get("repair_events"):
        lines += [
            "",
            "## Faults & degradation",
            "",
            "| metric | value |",
            "| --- | --- |",
            f"| fault injections | {_md(faults.get('fault_events'))} |",
            f"| fault repairs | {_md(faults.get('repair_events'))} |",
            f"| CLRG corruptions | {_md(faults.get('clrg_corruptions'))} |",
            "| peak failed channels | "
            f"{_md(faults.get('max_failed_channels'))} |",
            "| failed channels at end | "
            f"{_md(faults.get('final_failed_channels', []))} |",
            "| stuck inputs at end | "
            f"{_md(faults.get('final_stuck_inputs', []))} |",
            "| degraded/healthy throughput | "
            f"{_md(faults.get('degraded_throughput_ratio'))} |",
        ]
        degradation = faults.get("degradation") or {}
        if degradation:
            lines += [
                "",
                "| failed channels | cycles | flits | flits/cycle |",
                "| --- | --- | --- | --- |",
            ]
            for failed, entry in degradation.items():
                lines.append(
                    f"| {failed} | {_md(entry.get('cycles'))} | "
                    f"{_md(entry.get('ejected_flits'))} | "
                    f"{_md(entry.get('throughput_flits_per_cycle'))} |"
                )
    if regressions is not None:
        lines += ["", "## Baseline comparison", ""]
        if not regressions:
            lines.append("No regressions against the baseline.")
        else:
            lines += [
                f"**{len(regressions)} regression(s):**",
                "",
            ]
            for regression in regressions:
                lines.append(f"- {regression}")
    lines.append("")
    return "\n".join(lines)


def render_degradation_markdown(report: Dict[str, object]) -> str:
    """Render a fault degradation report as markdown.

    Takes the plain ``DegradationReport.to_dict()`` dict — not the
    object — so a saved ``degradation.json`` renders identically and
    this module stays import-independent of :mod:`repro.faults`.
    """
    phases = report.get("phases") or []
    lines = [
        "# Fault degradation report",
        "",
        "| metric | value |",
        "| --- | --- |",
        f"| kernel | {_md(report.get('kernel'))} |",
        f"| load | {_md(report.get('load'))} |",
        f"| seed | {_md(report.get('seed'))} |",
        f"| warmup cycles | {_md(report.get('warmup_cycles'))} |",
        f"| measured cycles | {_md(report.get('total_cycles'))} |",
        f"| schedule events | {_md(report.get('schedule_events'))} |",
        f"| packets delivered | {_md(report.get('total_packets'))} |",
        "| overall throughput (pkts/cycle) | "
        f"{_md(report.get('overall_throughput'))} |",
        "",
        "## Phases",
        "",
        "| cycles | failed ch | stuck in | reachable | pkts/cycle "
        "| avg latency |",
        "| --- | --- | --- | --- | --- | --- |",
    ]
    for phase in phases:
        lines.append(
            f"| {_md(phase.get('start_cycle'))}–"
            f"{_md(phase.get('end_cycle'))} "
            f"| {_md(phase.get('failed_channels'))} "
            f"| {_md(phase.get('stuck_inputs'))} "
            f"| {_md(phase.get('reachable_fraction'))} "
            f"| {_md(phase.get('throughput'))} "
            f"| {_md(phase.get('avg_latency'))} |"
        )
    lines.append("")
    return "\n".join(lines)

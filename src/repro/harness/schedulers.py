"""Scheduler-zoo comparison: CLRG vs LRG vs iSLIP(k) vs MWM.

Answers the question the paper could not ask (it had no iterative
scheduler to compare against): how does single-cycle CLRG arbitration
stack up against VOQ + iSLIP with 1..k iterations and against the
maximum-weight-matching oracle, on throughput, tail latency, and Jain
fairness, across the synthetic traffic zoo?

Every cell of the comparison matrix is one seeded
:class:`repro.network.engine.Simulation` of the switch
:func:`repro.switches.make_switch` builds for that scheduler's config —
the Hi-Rise fast kernel for the paper's schemes, the VOQ fabric for
iSLIP/MWM — with the matching invariant checker attached
(:func:`repro.check.checker_for`), so every reported number comes from
a legality-verified run.  The result dict carries the stable
``repro.schedulers/v1`` schema consumed by ``repro compare-schedulers``,
``scripts/scheduler_matrix.py``, and the CI ``scheduler-smoke`` gate.
"""

from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from repro.core.config import HiRiseConfig
from repro.metrics.fairness import jain_index
from repro.metrics.stats import LatencyStats
from repro.network.engine import Simulation
from repro.switches import make_switch

SCHEDULERS_SCHEMA = "repro.schedulers/v1"

#: Scheduler name -> config overrides, in canonical display order.
#: ``clrg`` is the paper's contribution; ``l2l_lrg`` its unfair
#: baseline; the iSLIP family and MWM are the iterative side.
SCHEDULER_SPECS: Dict[str, Dict[str, object]] = {
    "clrg": {"arbitration": "clrg"},
    "l2l_lrg": {"arbitration": "l2l_lrg"},
    "islip1": {"arbitration": "islip", "islip_iterations": 1},
    "islip2": {"arbitration": "islip", "islip_iterations": 2},
    "islip4": {"arbitration": "islip", "islip_iterations": 4},
    "mwm": {"arbitration": "mwm"},
}

DEFAULT_SCHEDULERS = tuple(SCHEDULER_SPECS)
DEFAULT_TRAFFIC = ("uniform", "hotspot", "transpose")

__all__ = [
    "SCHEDULERS_SCHEMA",
    "SCHEDULER_SPECS",
    "DEFAULT_SCHEDULERS",
    "DEFAULT_TRAFFIC",
    "build_traffic",
    "compare_schedulers",
    "render_markdown",
    "validate_comparison",
]


def build_traffic(
    pattern: str,
    radix: int,
    load: float,
    packet_flits: int,
    seed: int,
):
    """Build a traffic-zoo source by name (the CLI's pattern names)."""
    if pattern == "uniform":
        from repro.traffic import UniformRandomTraffic

        return UniformRandomTraffic(radix, load, packet_flits, seed)
    if pattern == "hotspot":
        from repro.traffic import HotspotTraffic

        return HotspotTraffic(
            radix, load, hotspot_output=radix - 1,
            packet_flits=packet_flits, seed=seed,
        )
    if pattern == "bursty":
        from repro.traffic import BurstyTraffic

        return BurstyTraffic(
            radix, load, packet_flits=packet_flits, seed=seed
        )
    if pattern in ("transpose", "bit_complement", "bit_reverse", "shuffle"):
        from repro.traffic import PermutationTraffic

        return PermutationTraffic(
            radix, load, pattern=pattern,
            packet_flits=packet_flits, seed=seed,
        )
    raise ValueError(f"unknown traffic pattern {pattern!r}")


def _config_for(base: HiRiseConfig, scheduler: str) -> HiRiseConfig:
    try:
        overrides = SCHEDULER_SPECS[scheduler]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {scheduler!r}; "
            f"choose from {', '.join(SCHEDULER_SPECS)}"
        ) from None
    return replace(base, **overrides)


def _run_cell(
    config: HiRiseConfig,
    traffic,
    warmup_cycles: int,
    measure_cycles: int,
    invariants: bool,
) -> Dict[str, object]:
    checker = None
    if invariants:
        from repro.check.matching import checker_for

        checker = checker_for(config)
    switch = make_switch(config, invariants=checker)
    simulation = Simulation(
        switch, traffic, warmup_cycles=warmup_cycles,
        latency_sample_limit=None,
    )
    result = simulation.run(measure_cycles)
    radix = config.radix
    per_input = [
        result.per_input_ejected.get(port, 0) for port in range(radix)
    ]
    served = [count for count in per_input if count > 0]
    latency = (
        LatencyStats.from_samples(result.packet_latencies)
        if result.packet_latencies else None
    )
    return {
        "throughput_packets_per_cycle": result.throughput_packets_per_cycle,
        "throughput_flits_per_cycle": result.throughput_flits_per_cycle,
        "packets_ejected": result.packets_ejected,
        "avg_latency_cycles": (
            latency.mean if latency is not None else None
        ),
        "p99_latency_cycles": (
            latency.p99 if latency is not None else None
        ),
        "jain": jain_index(served) if served else None,
        "per_input_ejected": per_input,
        "invariant_cycles_checked": (
            checker.cycles_checked if checker is not None else 0
        ),
        "invariant_violations": 0,  # a violation raises before this
    }


def _saturation(
    config: HiRiseConfig,
    pattern: str,
    packet_flits: int,
    seed: int,
    warmup_cycles: int,
    measure_cycles: int,
) -> float:
    """Delivered packets/cycle with every input overdriven (load 1.0)."""
    traffic = build_traffic(pattern, config.radix, 1.0, packet_flits, seed)
    switch = make_switch(config)
    simulation = Simulation(switch, traffic, warmup_cycles=warmup_cycles)
    result = simulation.run(measure_cycles)
    return result.throughput_packets_per_cycle


def compare_schedulers(
    radix: int = 16,
    layers: int = 2,
    channels: int = 2,
    load: float = 0.3,
    packet_flits: int = 4,
    seed: int = 1,
    warmup_cycles: int = 300,
    measure_cycles: int = 2000,
    schedulers: Optional[Sequence[str]] = None,
    traffic: Optional[Sequence[str]] = None,
    invariants: bool = True,
    saturation: bool = True,
    saturation_pattern: str = "uniform",
) -> Dict[str, object]:
    """Run the scheduler x traffic comparison matrix.

    Returns a ``repro.schedulers/v1`` dict: per-pattern tables of
    throughput / latency / Jain per scheduler, plus an overdriven
    saturation-throughput comparison on ``saturation_pattern``.  Every
    table cell ran with matching/structural invariants attached unless
    ``invariants=False`` (a violation raises, so a returned table
    proves zero violations).
    """
    names = list(schedulers) if schedulers is not None else list(
        DEFAULT_SCHEDULERS
    )
    patterns = list(traffic) if traffic is not None else list(
        DEFAULT_TRAFFIC
    )
    base = HiRiseConfig(
        radix=radix, layers=layers, channel_multiplicity=channels
    )
    configs = {name: _config_for(base, name) for name in names}

    matrix: Dict[str, Dict[str, Dict[str, object]]] = {}
    for pattern in patterns:
        row: Dict[str, Dict[str, object]] = {}
        for name in names:
            source = build_traffic(
                pattern, radix, load, packet_flits, seed
            )
            row[name] = _run_cell(
                configs[name], source, warmup_cycles, measure_cycles,
                invariants,
            )
        matrix[pattern] = row

    saturation_row: Dict[str, float] = {}
    if saturation:
        for name in names:
            saturation_row[name] = _saturation(
                configs[name], saturation_pattern, packet_flits, seed,
                warmup_cycles, measure_cycles,
            )

    return {
        "schema": SCHEDULERS_SCHEMA,
        "radix": radix,
        "layers": layers,
        "channels": channels,
        "load": load,
        "packet_flits": packet_flits,
        "seed": seed,
        "warmup_cycles": warmup_cycles,
        "measure_cycles": measure_cycles,
        "invariants": bool(invariants),
        "schedulers": names,
        "traffic": patterns,
        "matrix": matrix,
        "saturation": {
            "pattern": saturation_pattern if saturation else None,
            "overdrive_load": 1.0 if saturation else None,
            "throughput_packets_per_cycle": saturation_row,
        },
    }


#: Required top-level fields of a ``repro.schedulers/v1`` dict.
_REQUIRED_FIELDS = (
    "radix", "load", "seed", "schedulers", "traffic", "matrix",
    "saturation",
)

#: Required fields of every matrix cell.
_CELL_FIELDS = (
    "throughput_packets_per_cycle", "avg_latency_cycles",
    "p99_latency_cycles", "jain", "invariant_violations",
)


def validate_comparison(comparison: Dict[str, object]) -> Dict[str, object]:
    """Validate a comparison dict against the v1 schema.

    Returns the dict unchanged for chaining.

    Raises:
        ValueError: On a wrong schema tag, missing field, or a matrix
            inconsistent with the declared scheduler/traffic lists.
    """
    if not isinstance(comparison, dict):
        raise ValueError("comparison must be an object")
    schema = comparison.get("schema")
    if schema != SCHEDULERS_SCHEMA:
        raise ValueError(
            f"unsupported schema: {schema!r} (want {SCHEDULERS_SCHEMA!r})"
        )
    for field in _REQUIRED_FIELDS:
        if field not in comparison:
            raise ValueError(f"comparison missing field {field!r}")
    names = comparison["schedulers"]
    patterns = comparison["traffic"]
    matrix = comparison["matrix"]
    if not isinstance(matrix, dict):
        raise ValueError("matrix must be an object")
    for pattern in patterns:
        row = matrix.get(pattern)
        if not isinstance(row, dict):
            raise ValueError(f"matrix missing traffic row {pattern!r}")
        for name in names:
            cell = row.get(name)
            if not isinstance(cell, dict):
                raise ValueError(
                    f"matrix[{pattern!r}] missing scheduler {name!r}"
                )
            for field in _CELL_FIELDS:
                if field not in cell:
                    raise ValueError(
                        f"matrix[{pattern!r}][{name!r}] missing {field!r}"
                    )
    saturation = comparison["saturation"]
    if not isinstance(saturation, dict) or (
        "throughput_packets_per_cycle" not in saturation
    ):
        raise ValueError("saturation section malformed")
    return comparison


def _fmt(value, digits: int = 4) -> str:
    if value is None:
        return "-"
    return f"{value:.{digits}f}"


def render_markdown(comparison: Dict[str, object]) -> str:
    """Render a comparison dict as the markdown report the CLI prints."""
    names: List[str] = list(comparison["schedulers"])
    lines: List[str] = []
    lines.append("# Scheduler comparison")
    lines.append("")
    lines.append(
        f"radix {comparison['radix']}, load {comparison['load']}, "
        f"{comparison['measure_cycles']} measured cycles, "
        f"seed {comparison['seed']}, invariants "
        f"{'on' if comparison.get('invariants') else 'off'}"
    )
    for pattern in comparison["traffic"]:
        row = comparison["matrix"][pattern]
        lines.append("")
        lines.append(f"## {pattern}")
        lines.append("")
        lines.append(
            "| scheduler | throughput (pkt/cyc) | avg latency (cyc) "
            "| p99 latency (cyc) | Jain |"
        )
        lines.append("|---|---|---|---|---|")
        for name in names:
            cell = row[name]
            lines.append(
                f"| {name} "
                f"| {_fmt(cell['throughput_packets_per_cycle'])} "
                f"| {_fmt(cell['avg_latency_cycles'], 1)} "
                f"| {_fmt(cell['p99_latency_cycles'], 1)} "
                f"| {_fmt(cell['jain'])} |"
            )
    saturation = comparison.get("saturation") or {}
    rates = saturation.get("throughput_packets_per_cycle") or {}
    if rates:
        lines.append("")
        lines.append(
            f"## saturation ({saturation.get('pattern')}, overdriven)"
        )
        lines.append("")
        lines.append("| scheduler | saturation throughput (pkt/cyc) |")
        lines.append("|---|---|")
        for name in names:
            if name in rates:
                lines.append(f"| {name} | {_fmt(rates[name])} |")
    lines.append("")
    return "\n".join(lines)

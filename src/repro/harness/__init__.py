"""Experiment harness: regenerates every table and figure of the paper.

``tables`` produces Tables I, IV, V and VI; ``figures`` produces the data
series of Figs 9(a)-(c), 10, 11(a)-(c) and 12; ``report`` renders either
as aligned text with paper-vs-measured columns.  All entry points accept
quality parameters (simulated cycles, warm-up) so the benchmark suite can
run them at reduced cost while scripts reproduce the full-quality runs.
"""

from repro.harness.tables import (
    CostRow,
    SpeedupRow,
    table1,
    table4,
    table5,
    table6,
)
from repro.harness.figures import (
    fig9a_frequency_vs_radix,
    fig9b_frequency_vs_layers,
    fig9c_energy_vs_radix,
    fig10_latency_vs_load,
    fig11a_hotspot_latency,
    fig11b_arbitration_throughput,
    fig11c_adversarial_throughput,
    fig12_tsv_pitch,
)
from repro.harness.report import (
    render_audit_markdown,
    render_degradation_markdown,
    render_series,
    render_table,
)
from repro.harness.export import export_rows_csv, export_series_csv
from repro.harness.measure import METRICS, SimulationMeasurement
from repro.harness.parallel import (
    CHECKPOINT_FORMAT,
    CheckpointMismatch,
    ResiliencePolicy,
    SweepCheckpoint,
    TaskFailure,
    replicate,
)
from repro.harness.schedulers import (
    SCHEDULER_SPECS,
    SCHEDULERS_SCHEMA,
    compare_schedulers,
    render_markdown as render_scheduler_markdown,
    validate_comparison,
)
from repro.harness.sweep import (
    SweepPoint,
    parameter_grid,
    render_sweep,
    run_sweep,
    to_series,
)

__all__ = [
    "CostRow",
    "SpeedupRow",
    "table1",
    "table4",
    "table5",
    "table6",
    "fig9a_frequency_vs_radix",
    "fig9b_frequency_vs_layers",
    "fig9c_energy_vs_radix",
    "fig10_latency_vs_load",
    "fig11a_hotspot_latency",
    "fig11b_arbitration_throughput",
    "fig11c_adversarial_throughput",
    "fig12_tsv_pitch",
    "render_audit_markdown",
    "render_degradation_markdown",
    "render_series",
    "render_table",
    "export_rows_csv",
    "export_series_csv",
    "CHECKPOINT_FORMAT",
    "CheckpointMismatch",
    "METRICS",
    "ResiliencePolicy",
    "SimulationMeasurement",
    "SweepCheckpoint",
    "TaskFailure",
    "replicate",
    "SCHEDULERS_SCHEMA",
    "SCHEDULER_SPECS",
    "compare_schedulers",
    "render_scheduler_markdown",
    "validate_comparison",
    "SweepPoint",
    "parameter_grid",
    "render_sweep",
    "run_sweep",
    "to_series",
]

"""Fleet-aware scalar measurements for sweeps and replications.

:class:`SimulationMeasurement` is the bridge between the harness task
model — ``measurement(seed=..., **parameters) -> float`` — and the
batched fleet kernel (:mod:`repro.core.fleet`).  It is a module-level,
picklable callable, so it parallelises over worker processes like any
other measurement; in addition it can describe each task as a
:class:`~repro.core.fleet.LanePlan`, which lets the executors in
:mod:`repro.harness.parallel` batch groups of compatible tasks (same
config and simulation windows, different seeds/faults) through one
fleet kernel at close to one-run cost.

The fleet path is an *optimisation, never a semantic change*: lane
results are bit-identical to scalar runs, and any task the fleet cannot
take — unsupported config, missing numpy, a tracer factory that is not
fleet-capable, or ``invariants=True`` — simply runs on the scalar
kernel.  Fleet-capable tracer factories (those advertising
``fleet_capable = True``, like
:class:`repro.obs.tracebin.BinaryTracerFactory`) ride the fleet
natively: the batched kernel emits binary per-lane event streams that
are bit-identical to what the scalar tracer would have recorded.
"""

from dataclasses import replace
from typing import Dict, Optional, Tuple

from repro.network.engine import DEFAULT_LATENCY_SAMPLE_LIMIT, Simulation

#: Metrics a SimulationMeasurement can reduce a SimulationResult to.
METRICS = (
    "throughput",
    "avg_latency",
    "p99_latency",
    "packets_ejected",
)


class _UniformTrafficFactory:
    """Zero-argument, picklable builder of a fresh uniform-random source.

    Fleet lanes cannot share traffic objects (each holds private RNG
    state), so plans carry a factory rather than a source.
    """

    def __init__(self, num_ports: int, load: float, packet_flits: int,
                 seed: int) -> None:
        self.num_ports = num_ports
        self.load = load
        self.packet_flits = packet_flits
        self.seed = seed

    def __call__(self):
        from repro.traffic.uniform import UniformRandomTraffic

        return UniformRandomTraffic(
            self.num_ports, self.load,
            packet_flits=self.packet_flits, seed=self.seed,
        )


class SimulationMeasurement:
    """One simulation run reduced to a scalar, as a picklable callable.

    Args:
        config: Base :class:`~repro.core.config.HiRiseConfig`.  Sweep
            parameters may override any config field by name (via
            ``dataclasses.replace``) and ``load`` directly.
        metric: One of :data:`METRICS`.
        load: Offered load for the uniform-random traffic source.
        packet_flits: Flits per generated packet.
        warmup_cycles / measure_cycles / drain: Simulation window.
        faults: Optional :class:`~repro.faults.FaultSchedule` shared by
            every run (each run gets a private cursor).
        traffic_seed: Normally ``None`` — each task's traffic is seeded
            by the task seed, which is what makes replications
            independent.  Pinning a value here makes *every* task
            identical; :func:`repro.harness.parallel.replicate`
            detects and dedupes such degenerate batches with a warning.
        tracer_factory: ``callable() -> tracer`` attached to the scalar
            switch.  Factories advertising ``fleet_capable = True``
            (binary columnar tracers) keep the fleet path — the batched
            kernel emits the same event streams natively; any other
            tracer forces the scalar path.
        invariants: Attach a fresh
            :class:`repro.check.invariants.InvariantChecker` per run
            (scalar path only, like ``tracer_factory``).
        perf_factory: ``callable() -> PerfCounters`` attached to each
            run through the ``perf=`` hook.  Fleet-capable factories
            (:class:`repro.obs.perf.PerfCountersFactory`) ride the
            fleet — one counters object profiles the whole batch; a
            factory without ``fleet_capable`` forces the scalar path
            with an explicit ``RuntimeWarning`` naming it.
    """

    def __init__(
        self,
        config,
        metric: str = "throughput",
        load: float = 0.9,
        packet_flits: int = 4,
        warmup_cycles: int = 40,
        measure_cycles: int = 300,
        drain: bool = False,
        faults=None,
        traffic_seed: Optional[int] = None,
        tracer_factory=None,
        invariants: bool = False,
        latency_sample_limit: Optional[int] = DEFAULT_LATENCY_SAMPLE_LIMIT,
        perf_factory=None,
    ) -> None:
        if metric not in METRICS:
            raise ValueError(f"unknown metric {metric!r} (one of {METRICS})")
        self.config = config
        self.metric = metric
        self.load = load
        self.packet_flits = packet_flits
        self.warmup_cycles = warmup_cycles
        self.measure_cycles = measure_cycles
        self.drain = drain
        self.faults = faults
        self.traffic_seed = traffic_seed
        self.tracer_factory = tracer_factory
        self.invariants = invariants
        self.latency_sample_limit = latency_sample_limit
        self.perf_factory = perf_factory

    # ------------------------------------------------------------------
    # Task resolution
    # ------------------------------------------------------------------
    def _resolve(self, seed: int, overrides: Dict[str, object]):
        """Fold sweep parameters into (config, load, traffic seed)."""
        load = self.load
        config = self.config
        config_overrides = {}
        for name, value in overrides.items():
            if name == "load":
                load = float(value)
            else:
                config_overrides[name] = value
        if config_overrides:
            config = replace(config, **config_overrides)
        traffic_seed = (
            self.traffic_seed if self.traffic_seed is not None else seed
        )
        return config, load, traffic_seed

    def _traffic_factory(self, config, load: float, traffic_seed: int):
        return _UniformTrafficFactory(
            config.radix, load, self.packet_flits, traffic_seed
        )

    # ------------------------------------------------------------------
    # Scalar path
    # ------------------------------------------------------------------
    def __call__(self, seed: int = 0, **overrides) -> float:
        config, load, traffic_seed = self._resolve(seed, overrides)
        from repro.switches import make_switch

        tracer = (
            self.tracer_factory() if self.tracer_factory is not None
            else None
        )
        checker = None
        if self.invariants:
            from repro.check.matching import checker_for

            checker = checker_for(config)
        perf = (
            self.perf_factory() if self.perf_factory is not None else None
        )
        switch = make_switch(
            config, tracer=tracer, faults=self.faults, invariants=checker,
            perf=perf,
        )
        traffic = self._traffic_factory(config, load, traffic_seed)()
        simulation = Simulation(
            switch, traffic,
            warmup_cycles=self.warmup_cycles,
            latency_sample_limit=self.latency_sample_limit,
        )
        result = simulation.run(self.measure_cycles, drain=self.drain)
        return self.value_from_result(result, config)

    # ------------------------------------------------------------------
    # Fleet path
    # ------------------------------------------------------------------
    def fleet_plan(self, seed: int = 0, **overrides):
        """This task as a LanePlan, or ``None`` if it must run scalar.

        ``None`` means: numpy missing, the config is outside fleet
        support, or the measurement carries per-run attachments the
        batched kernel cannot host (an invariant checker, or a tracer
        factory without ``fleet_capable = True``).  Fleet-capable
        tracer factories are carried on the plan — the fleet kernel
        emits each lane's binary event stream natively.
        """
        if self.invariants:
            return None
        factory = self.tracer_factory
        if factory is not None and not getattr(
            factory, "fleet_capable", False
        ):
            return None
        perf_factory = self.perf_factory
        if perf_factory is not None and not getattr(
            perf_factory, "fleet_capable", False
        ):
            # Perf attachments must never *silently* force the scalar
            # path — fleet dispatch is a 5x-class optimisation, and a
            # profiling hook quietly disabling it would poison the very
            # numbers it exists to collect.
            import warnings

            name = (
                getattr(perf_factory, "__name__", None)
                or type(perf_factory).__name__
            )
            warnings.warn(
                f"perf attachment {name} is not fleet-capable "
                "(no fleet_capable=True marker): falling back to the "
                "scalar kernel; use repro.obs.perf.PerfCountersFactory "
                "to profile fleet dispatches natively",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        from repro.core.fleet import LanePlan, fleet_supports

        config, load, traffic_seed = self._resolve(seed, overrides)
        if not fleet_supports(config):
            return None
        return LanePlan(
            config=config,
            traffic_factory=self._traffic_factory(
                config, load, traffic_seed
            ),
            faults=self.faults,
            warmup_cycles=self.warmup_cycles,
            measure_cycles=self.measure_cycles,
            drain=self.drain,
            latency_sample_limit=self.latency_sample_limit,
            tracer_factory=factory,
            perf_factory=perf_factory,
        )

    def task_fingerprint(self, seed: int = 0, **overrides) -> Tuple:
        """Identity of this task's simulation — equal fingerprints mean
        bit-identical results, which lets the dispatcher dedupe."""
        config, load, traffic_seed = self._resolve(seed, overrides)
        return (
            config,
            "uniform",
            load,
            self.packet_flits,
            traffic_seed,
            id(self.faults) if self.faults is not None else None,
            self.warmup_cycles,
            self.measure_cycles,
            self.drain,
            self.latency_sample_limit,
            self.metric,
            id(self.tracer_factory) if self.tracer_factory else None,
            self.invariants,
            id(self.perf_factory) if self.perf_factory else None,
        )

    # ------------------------------------------------------------------
    # Metric extraction (shared by both paths)
    # ------------------------------------------------------------------
    def value_from_result(self, result, config=None) -> float:
        """Reduce a :class:`SimulationResult` to this metric's scalar.

        ``config`` is the task's *resolved* config (sweep overrides may
        change ``radix``); defaults to the base config.
        """
        if self.metric == "throughput":
            ports = (config or self.config).radix
            if result.cycles == 0:
                return 0.0
            return result.flits_ejected / (result.cycles * ports)
        if self.metric == "avg_latency":
            if result.latency_count == 0:
                return 0.0
            return result.latency_sum / result.latency_count
        if self.metric == "p99_latency":
            samples = sorted(result.packet_latencies)
            if not samples:
                return 0.0
            rank = max(0, int(0.99 * (len(samples) - 1)))
            return float(samples[rank])
        if self.metric == "packets_ejected":
            return float(result.packets_ejected)
        raise ValueError(f"unknown metric {self.metric!r}")

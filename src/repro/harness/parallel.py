"""Process-parallel execution of sweeps and replications.

Parameter sweeps and independent replications are embarrassingly parallel:
every task is a pure function of ``(parameters, seed)``.  This module fans
such tasks out over a :class:`~concurrent.futures.ProcessPoolExecutor`
while guaranteeing:

* **determinism** — each task derives its seed exactly as the serial code
  does (``base_seed`` for single-shot points, ``base_seed + i`` for the
  i-th replication), and results are reassembled in submission order, so
  ``workers=N`` returns bit-identical results to ``workers=1``;
* **graceful degradation** — with ``workers=1``, a single task, an
  unpicklable measurement, or a pool that fails to spawn (restricted
  containers, daemonic parents), the tasks simply run serially.

Measurement callables must be picklable (module-level functions, not
lambdas or closures) to actually run in worker processes; anything else
silently falls back to the serial path.
"""

import pickle
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.metrics.confidence import ConfidenceInterval, t_interval

_Task = Tuple[Callable[..., float], Dict[str, object], int]


def _run_measurement(task: _Task) -> float:
    """Execute one ``(measurement, parameters, seed)`` task (pickled)."""
    measurement, parameters, seed = task
    return float(measurement(seed=seed, **parameters))


def _run_measurement_timed(task: _Task) -> Tuple[float, float]:
    """Like :func:`_run_measurement`, plus the task's wall-clock seconds."""
    start = time.perf_counter()
    value = _run_measurement(task)
    return value, time.perf_counter() - start


def _report(telemetry, task: _Task, index: int, total: int,
            value: float, wall_s: float) -> None:
    """Deliver one heartbeat for a completed task."""
    from repro.obs.telemetry import Heartbeat

    _measurement, parameters, seed = task
    telemetry.record(Heartbeat(
        index=index, total=total, parameters=dict(parameters),
        seed=seed, value=value, wall_s=wall_s,
    ))


def _execute_tasks(
    tasks: Sequence[_Task],
    workers: int,
    telemetry=None,
) -> List[float]:
    """Run tasks, in order, across ``workers`` processes (1 = serial).

    Falls back to the serial path when parallelism cannot help (one task)
    or cannot work (unpicklable tasks, pool spawn failure).  Exceptions
    raised by the measurement itself always propagate.

    When a :class:`repro.obs.SweepTelemetry` is given it receives one
    heartbeat per completed task — in completion order on the pool path —
    while the returned values stay in submission order (bit-identical to
    the untelemetered run).
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if telemetry is not None:
        return _execute_tasks_telemetered(tasks, workers, telemetry)
    if workers == 1 or len(tasks) <= 1:
        return [_run_measurement(task) for task in tasks]
    try:
        pickle.dumps(tasks)
    except Exception:
        return [_run_measurement(task) for task in tasks]
    try:
        pool = ProcessPoolExecutor(max_workers=workers)
    except (OSError, ValueError):
        return [_run_measurement(task) for task in tasks]
    try:
        # map() preserves submission order regardless of completion order.
        return list(pool.map(_run_measurement, tasks))
    except (OSError, BrokenProcessPool):
        return [_run_measurement(task) for task in tasks]
    finally:
        pool.shutdown()


def _execute_tasks_telemetered(
    tasks: Sequence[_Task],
    workers: int,
    telemetry,
) -> List[float]:
    """:func:`_execute_tasks` with per-task heartbeats.

    Workers return ``(value, wall_seconds)``; the parent reports each
    completion as its future resolves, so telemetry never runs inside a
    task and cannot perturb results.
    """
    total = len(tasks)
    telemetry.start(total)

    def serial() -> List[float]:
        values = []
        for index, task in enumerate(tasks):
            value, wall_s = _run_measurement_timed(task)
            _report(telemetry, task, index, total, value, wall_s)
            values.append(value)
        return values

    if workers == 1 or total <= 1:
        return serial()
    try:
        pickle.dumps(tasks)
    except Exception:
        return serial()
    try:
        pool = ProcessPoolExecutor(max_workers=workers)
    except (OSError, ValueError):
        return serial()
    try:
        futures = {
            pool.submit(_run_measurement_timed, task): index
            for index, task in enumerate(tasks)
        }
        values: List[Optional[float]] = [None] * total
        for future in as_completed(futures):
            index = futures[future]
            value, wall_s = future.result()
            values[index] = value
            _report(telemetry, tasks[index], index, total, value, wall_s)
        return values
    except (OSError, BrokenProcessPool):
        telemetry.start(total)  # the pool died: restart the channel
        return serial()
    finally:
        pool.shutdown()


def replicate(
    measurement: Callable[..., float],
    parameters: Optional[Dict[str, object]] = None,
    num_replications: int = 5,
    confidence: float = 0.95,
    base_seed: int = 0,
    workers: int = 1,
    telemetry=None,
) -> ConfidenceInterval:
    """Parallel independent replications of one measurement.

    Equivalent to :func:`repro.metrics.confidence.replicate` over
    ``measurement(seed=base_seed + i, **parameters)`` but with the
    replications spread over ``workers`` processes.  Results are
    identical to the serial path for any worker count.  An optional
    :class:`repro.obs.SweepTelemetry` receives one heartbeat per
    completed replication.
    """
    if num_replications < 2:
        raise ValueError("need at least two replications for an interval")
    tasks = [
        (measurement, dict(parameters or {}), base_seed + index)
        for index in range(num_replications)
    ]
    return t_interval(_execute_tasks(tasks, workers, telemetry), confidence)


def run_sweep(
    measurement: Callable[..., float],
    grid: Sequence[Dict[str, object]],
    replications: int = 1,
    confidence: float = 0.95,
    base_seed: int = 0,
    workers: int = 1,
    telemetry=None,
) -> List["SweepPoint"]:
    """Parallel version of :func:`repro.harness.sweep.run_sweep`.

    The full (point, replication) task list is flattened and spread over
    ``workers`` processes; the returned points are identical (values,
    ordering, intervals) to the serial sweep for any worker count.  An
    optional :class:`repro.obs.SweepTelemetry` receives one heartbeat per
    completed (point, replication) task.
    """
    from repro.harness.sweep import SweepPoint

    if replications < 1:
        raise ValueError("need at least one replication")
    tasks = [
        (measurement, dict(parameters), base_seed + index)
        for parameters in grid
        for index in range(replications)
    ]
    values = _execute_tasks(tasks, workers, telemetry)
    points: List[SweepPoint] = []
    for number, parameters in enumerate(grid):
        chunk = values[number * replications:(number + 1) * replications]
        if replications == 1:
            points.append(
                SweepPoint(parameters=dict(parameters), value=chunk[0])
            )
        else:
            interval = t_interval(chunk, confidence)
            points.append(
                SweepPoint(
                    parameters=dict(parameters),
                    value=interval.mean,
                    interval=interval,
                )
            )
    return points

"""Process-parallel execution of sweeps and replications.

Parameter sweeps and independent replications are embarrassingly parallel:
every task is a pure function of ``(parameters, seed)``.  This module fans
such tasks out over a :class:`~concurrent.futures.ProcessPoolExecutor`
while guaranteeing:

* **determinism** — each task derives its seed exactly as the serial code
  does (``base_seed`` for single-shot points, ``base_seed + i`` for the
  i-th replication), and results are reassembled in submission order, so
  ``workers=N`` returns bit-identical results to ``workers=1``;
* **graceful degradation** — with ``workers=1``, a single task, an
  unpicklable measurement, or a pool that fails to spawn (restricted
  containers, daemonic parents), the tasks simply run serially;
* **crash resilience** (opt-in, PR 4) — any of the ``task_timeout``,
  ``max_retries``, ``backoff_base``, or ``checkpoint`` keywords routes
  execution through a supervising scheduler that isolates worker
  crashes (the pool is rebuilt, innocent in-flight tasks are
  resubmitted uncharged), enforces per-task wall-clock timeouts,
  retries failed tasks a bounded number of times with exponential
  backoff, and journals every completed task to an append-only JSONL
  checkpoint so an interrupted sweep resumes instead of recomputing.
  Because every task is a pure function of ``(parameters, seed)``,
  retried/resumed results are bit-identical to an uninterrupted serial
  run.

Measurement callables must be picklable (module-level functions, not
lambdas or closures) to actually run in worker processes; anything else
silently falls back to the serial path.
"""

import hashlib
import heapq
import json
import pickle
import time
import warnings
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    as_completed,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.metrics.confidence import ConfidenceInterval, t_interval

_Task = Tuple[Callable[..., float], Dict[str, object], int]

#: Schema tag of the checkpoint JSONL header line.
CHECKPOINT_FORMAT = "repro.checkpoint/v1"


def _run_measurement(task: _Task) -> float:
    """Execute one ``(measurement, parameters, seed)`` task (pickled)."""
    measurement, parameters, seed = task
    return float(measurement(seed=seed, **parameters))


def _run_measurement_timed(task: _Task) -> Tuple[float, float]:
    """Like :func:`_run_measurement`, plus the task's wall-clock seconds."""
    start = time.perf_counter()
    value = _run_measurement(task)
    return value, time.perf_counter() - start


def _report(telemetry, task: _Task, index: int, total: int,
            value: float, wall_s: float, lanes: int = 1) -> None:
    """Deliver one heartbeat for a completed task."""
    from repro.obs.telemetry import Heartbeat

    _measurement, parameters, seed = task
    telemetry.record(Heartbeat(
        index=index, total=total, parameters=dict(parameters),
        seed=seed, value=value, wall_s=wall_s, lanes=lanes,
    ))


def _note_failure(telemetry, cause: BaseException) -> None:
    """Classify one executor failure onto the telemetry counters."""
    if telemetry is None:
        return
    record_failure = getattr(telemetry, "record_failure", None)
    if record_failure is None:
        return
    if isinstance(cause, BrokenProcessPool):
        record_failure("crash")
    elif isinstance(cause, TimeoutError):
        record_failure("timeout")
    else:
        record_failure("retry")


def _fleet_prepass(
    tasks: Sequence[_Task], skip=(),
) -> Tuple[List[Optional[float]], List[Optional[float]], List[int]]:
    """Batch compatible tasks through the fleet kernel before dispatch.

    A task participates when its measurement exposes ``fleet_plan`` (see
    :class:`repro.harness.measure.SimulationMeasurement`) and that call
    returns a :class:`~repro.core.fleet.LanePlan` — i.e. the config is
    fleet-supported, numpy is present, and any attachment is one the
    batched kernel can host (fleet-capable binary tracers ride along;
    invariant checkers and other tracers force scalar).  Plans are
    grouped by (config, windows, tracer factory, perf factory); every
    group of two or more lanes runs through one batched kernel, each
    lane result being bit-identical to the scalar run the task would
    otherwise do.

    Returns per-task ``(values, wall_seconds, lanes)`` lists — ``None``
    value entries mean the task was not batched (no plan, a singleton
    group, or a fleet failure) and must run on the scalar path.  Each
    batched task's wall time is its group's wall clock divided by the
    lane count; ``lanes`` records that count (1 for unbatched tasks),
    feeding the telemetry's fleet-occupancy view.
    """
    total = len(tasks)
    values: List[Optional[float]] = [None] * total
    walls: List[Optional[float]] = [None] * total
    lanes: List[int] = [1] * total
    groups: Dict[tuple, list] = {}
    for index, task in enumerate(tasks):
        if index in skip:
            continue
        measurement, parameters, seed = task
        plan_of = getattr(measurement, "fleet_plan", None)
        if plan_of is None:
            continue
        try:
            plan = plan_of(seed=seed, **parameters)
        except Exception:
            continue  # scalar path will surface any genuine error
        if plan is None:
            continue
        key = (
            plan.config, plan.warmup_cycles, plan.measure_cycles,
            plan.drain, plan.latency_sample_limit, plan.tracer_factory,
            getattr(plan, "perf_factory", None),
        )
        groups.setdefault(key, []).append((index, measurement, plan))
    if not groups:
        return values, walls, lanes
    try:
        from repro.core.fleet import run_fleet_plans
    except Exception:
        return values, walls, lanes
    for group in groups.values():
        if len(group) < 2:
            continue  # a lone lane gains nothing over the scalar kernel
        start = time.perf_counter()
        try:
            results = run_fleet_plans([plan for _, _, plan in group])
        except Exception:
            continue  # any fleet failure falls back to the scalar path
        wall_each = (time.perf_counter() - start) / len(group)
        for (index, measurement, plan), result in zip(group, results):
            try:
                value = measurement.value_from_result(result, plan.config)
            except TypeError:
                value = measurement.value_from_result(result)
            values[index] = float(value)
            walls[index] = wall_each
            lanes[index] = len(group)
    return values, walls, lanes


def _task_fingerprint(task: _Task):
    """Hashable identity of one task's *resolved* simulation.

    Measurements exposing ``task_fingerprint`` (fleet-aware ones) resolve
    overrides and traffic seeding, so two tasks that would run the exact
    same simulation — the classic pinned-traffic-seed replication bug —
    compare equal.  Plain callables fall back to (identity, parameters,
    seed), under which distinct seeds never collide.
    """
    measurement, parameters, seed = task
    resolve = getattr(measurement, "task_fingerprint", None)
    if resolve is not None:
        try:
            fingerprint = ("resolved", resolve(seed=seed, **parameters))
            hash(fingerprint)
            return fingerprint
        except Exception:
            pass
    try:
        key = repr(sorted(parameters.items()))
    except Exception:
        key = repr(parameters)
    return ("raw", id(measurement), key, seed)


def _execute_tasks(
    tasks: Sequence[_Task],
    workers: int,
    telemetry=None,
) -> List[float]:
    """Run tasks, in order, across ``workers`` processes (1 = serial).

    Fleet-aware tasks are batched through the vectorized kernel first
    (see :func:`_fleet_prepass`); the rest — and everything, for plain
    measurements — runs exactly as before.  Falls back to the serial
    path when parallelism cannot help (one task) or cannot work
    (unpicklable tasks, pool spawn failure).  Exceptions raised by the
    measurement itself always propagate.

    When a :class:`repro.obs.SweepTelemetry` is given it receives one
    heartbeat per completed task — in completion order on the pool path —
    while the returned values stay in submission order (bit-identical to
    the untelemetered run).
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if telemetry is not None:
        return _execute_tasks_telemetered(tasks, workers, telemetry)
    values, _walls, _lanes = _fleet_prepass(tasks)
    pending = [index for index in range(len(tasks)) if values[index] is None]
    if pending:
        rest = _execute_tasks_plain([tasks[i] for i in pending], workers)
        for index, value in zip(pending, rest):
            values[index] = value
    return [float(value) for value in values]


def _execute_tasks_plain(
    tasks: Sequence[_Task], workers: int
) -> List[float]:
    """The scalar dispatch path (serial or process pool), no prepass."""
    if workers == 1 or len(tasks) <= 1:
        return [_run_measurement(task) for task in tasks]
    try:
        pickle.dumps(tasks)
    except Exception:
        return [_run_measurement(task) for task in tasks]
    try:
        pool = ProcessPoolExecutor(max_workers=workers)
    except (OSError, ValueError):
        return [_run_measurement(task) for task in tasks]
    try:
        # map() preserves submission order regardless of completion order.
        return list(pool.map(_run_measurement, tasks))
    except (OSError, BrokenProcessPool):
        return [_run_measurement(task) for task in tasks]
    finally:
        pool.shutdown()


def _execute_tasks_telemetered(
    tasks: Sequence[_Task],
    workers: int,
    telemetry,
) -> List[float]:
    """:func:`_execute_tasks` with per-task heartbeats.

    Workers return ``(value, wall_seconds)``; the parent reports each
    completion as its future resolves, so telemetry never runs inside a
    task and cannot perturb results.
    """
    total = len(tasks)
    telemetry.start(total)
    values: List[Optional[float]] = [None] * total
    fleet_values, fleet_walls, fleet_lanes = _fleet_prepass(tasks)
    for index, value in enumerate(fleet_values):
        if value is not None:
            values[index] = value
            _report(
                telemetry, tasks[index], index, total, value,
                fleet_walls[index], lanes=fleet_lanes[index],
            )
    pending = [index for index in range(total) if values[index] is None]

    def serial() -> List[float]:
        for index in pending:
            if values[index] is not None:
                continue  # finished on the pool before it broke
            value, wall_s = _run_measurement_timed(tasks[index])
            _report(telemetry, tasks[index], index, total, value, wall_s)
            values[index] = value
        return [float(value) for value in values]

    if workers == 1 or len(pending) <= 1:
        return serial()
    try:
        pickle.dumps([tasks[index] for index in pending])
    except Exception:
        return serial()
    try:
        pool = ProcessPoolExecutor(max_workers=workers)
    except (OSError, ValueError):
        return serial()
    try:
        futures = {
            pool.submit(_run_measurement_timed, tasks[index]): index
            for index in pending
        }
        for future in as_completed(futures):
            index = futures[future]
            value, wall_s = future.result()
            values[index] = value
            fleet_walls[index] = wall_s
            _report(telemetry, tasks[index], index, total, value, wall_s)
        return [float(value) for value in values]
    except (OSError, BrokenProcessPool):
        telemetry.start(total)  # the pool died: restart the channel
        for index, value in enumerate(values):
            if value is not None:
                # Re-report everything already done (fleet-batched and
                # pool completions) on the new channel; the serial pass
                # reports the rest as it computes them.
                _report(
                    telemetry, tasks[index], index, total, value,
                    fleet_walls[index] or 0.0, lanes=fleet_lanes[index],
                )
        return serial()
    finally:
        pool.shutdown()


# ---------------------------------------------------------------------------
# Crash-resilient execution (opt-in)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ResiliencePolicy:
    """How the resilient scheduler supervises a batch of tasks.

    Attributes:
        task_timeout: Per-task wall-clock budget in seconds; a task
            running longer is charged an attempt and the worker pool is
            torn down and rebuilt (a hung worker cannot be interrupted
            any other way).  ``None`` disables timeouts.  Only enforced
            on the pool path — the serial fallback cannot preempt a
            running task.
        max_retries: How many times one task may fail (crash, raise, or
            time out) before :class:`TaskFailure` aborts the batch.  0
            means a single attempt.  A worker crash fails every future
            in flight on the broken pool and the scheduler charges
            exactly one of them (the culprit is not identifiable), so
            when crashes are *expected*, budget one extra retry per
            anticipated crash for innocent bystanders.
        backoff_base: First retry delay in seconds; attempt ``k``
            waits ``backoff_base * 2**(k-1)``, capped at
            ``backoff_cap`` and then jittered (see ``backoff_jitter``).
        backoff_cap: Upper bound on any single retry delay (before
            jitter, which only ever shortens it).
        backoff_jitter: Fraction of each retry delay to randomise away,
            in ``[0, 1]``.  Attempt ``k`` of task ``key`` sleeps
            ``delay * (1 - backoff_jitter * u)`` where ``u ∈ [0, 1)``
            is drawn *deterministically* from ``(jitter_seed, key,
            k)`` — so N workers that failed together fan back out
            instead of re-colliding in lockstep (the classic retry
            storm), yet the same run replays with the same delays.
            Jitter shapes only the sleep schedule, never task inputs:
            results stay bit-identical to an unjittered run.
        jitter_seed: Seed folded into the jitter draw.
        checkpoint: Optional path of an append-only JSONL journal of
            completed tasks.  If the file already exists it must match
            the task list's fingerprint, and its completed tasks are
            not re-run (checkpoint/resume).
        breaker: Optional circuit breaker (duck-typed, e.g.
            :class:`repro.service.breaker.CircuitBreaker`) consulted on
            worker *crashes*: ``record_crash(key)`` is called per
            charged crash and, when it returns True (the breaker
            opened), the task fails immediately instead of burning the
            rest of its retry budget on a fingerprint that keeps
            killing workers.  ``record_success(key)`` resets the streak
            when the task completes.
        breaker_keys: Per-task breaker keys, aligned with the task
            list (e.g. job fingerprints, so a crashy job is quarantined
            across batches).  Defaults to the task index.
    """

    task_timeout: Optional[float] = None
    max_retries: int = 2
    backoff_base: float = 0.1
    backoff_cap: float = 5.0
    backoff_jitter: float = 0.5
    jitter_seed: int = 0
    checkpoint: Optional[Union[str, Path]] = None
    breaker: Optional[object] = None
    breaker_keys: Optional[Tuple[object, ...]] = None

    def __post_init__(self) -> None:
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError("task_timeout must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff delays must be >= 0")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValueError("backoff_jitter must be within [0, 1]")

    def breaker_key(self, index: int) -> object:
        """The breaker/jitter identity of task ``index``."""
        if self.breaker_keys is not None and index < len(self.breaker_keys):
            return self.breaker_keys[index]
        return index

    def backoff_delay(self, attempt: int, key: object = 0) -> float:
        """Jittered delay before retry ``attempt`` (1-based) of ``key``.

        Deterministic: the same ``(jitter_seed, key, attempt)`` always
        yields the same delay, so resilient runs stay replayable; and
        distinct keys de-synchronise, so a crowd of tasks failed by one
        crash does not retry as a crowd.
        """
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        delay = min(self.backoff_base * (2 ** (attempt - 1)),
                    self.backoff_cap)
        if self.backoff_jitter > 0.0 and delay > 0.0:
            token = f"{self.jitter_seed}|{key!r}|{attempt}".encode()
            draw = int.from_bytes(
                hashlib.sha256(token).digest()[:8], "big"
            )
            unit = draw / float(1 << 64)  # [0, 1)
            delay *= 1.0 - self.backoff_jitter * unit
        return delay


class TaskFailure(RuntimeError):
    """A task exhausted its retry budget; the batch cannot complete."""

    def __init__(self, index: int, task: _Task, attempts: int, cause: BaseException) -> None:
        _measurement, parameters, seed = task
        super().__init__(
            f"task {index} (seed {seed}, parameters {parameters!r}) failed "
            f"after {attempts} attempt(s): {cause!r}"
        )
        self.index = index
        self.parameters = dict(parameters)
        self.seed = seed
        self.attempts = attempts
        self.cause = cause


class CheckpointMismatch(ValueError):
    """An existing checkpoint journals a different task list."""


def _fingerprint_tasks(tasks: Sequence[_Task]) -> str:
    """Deterministic identity of a task list (order, callables, seeds)."""
    digest = hashlib.sha256()
    for measurement, parameters, seed in tasks:
        name = (
            f"{getattr(measurement, '__module__', '?')}."
            f"{getattr(measurement, '__qualname__', '?')}"
        )
        digest.update(
            f"{name}|{sorted(parameters.items())!r}|{seed}\n".encode()
        )
    return digest.hexdigest()


class SweepCheckpoint:
    """Append-only JSONL journal of completed sweep tasks.

    Line 1 is a header (:data:`CHECKPOINT_FORMAT`, the task-list
    fingerprint, the task count); every further line is one completed
    task (``index``, ``value``, ``attempts``, ``wall_s``).  Each append
    is flushed, so a crashed parent loses at most the line it was
    writing — a torn trailing line is tolerated and dropped on resume.
    """

    def __init__(self, path: Union[str, Path], tasks: Sequence[_Task]) -> None:
        self.path = Path(path)
        self.fingerprint = _fingerprint_tasks(tasks)
        self.total = len(tasks)
        self.completed: Dict[int, Tuple[float, float]] = {}
        had_header = self.path.exists() and self._load()
        self._handle = open(self.path, "a", encoding="utf-8")
        if not had_header:
            self._handle.write(json.dumps({
                "format": CHECKPOINT_FORMAT,
                "fingerprint": self.fingerprint,
                "tasks": self.total,
            }) + "\n")
            self._handle.flush()

    def _load(self) -> bool:
        from repro.util.jsonl import read_jsonl

        rows = [row for row in read_jsonl(self.path) if isinstance(row, dict)]
        if not rows:
            return False
        header = rows[0]
        if header.get("format") != CHECKPOINT_FORMAT:
            raise CheckpointMismatch(
                f"{self.path}: not a {CHECKPOINT_FORMAT} checkpoint"
            )
        if (
            header.get("fingerprint") != self.fingerprint
            or header.get("tasks") != self.total
        ):
            raise CheckpointMismatch(
                f"{self.path}: checkpoint was written for a different "
                f"task list (delete it or pick another path)"
            )
        for row in rows[1:]:
            index = row.get("index")
            if isinstance(index, int) and 0 <= index < self.total:
                self.completed[index] = (
                    float(row.get("value", 0.0)),
                    float(row.get("wall_s", 0.0)),
                )
        return True

    def append(self, index: int, value: float, attempts: int, wall_s: float) -> None:
        """Journal one completed task (flushed immediately)."""
        self.completed[index] = (value, wall_s)
        self._handle.write(json.dumps({
            "index": index, "value": value,
            "attempts": attempts, "wall_s": wall_s,
        }) + "\n")
        self._handle.flush()

    def close(self) -> None:
        """Release the journal file handle."""
        self._handle.close()


def _spawn_pool(workers: int) -> Optional[ProcessPoolExecutor]:
    try:
        return ProcessPoolExecutor(max_workers=workers)
    except (OSError, ValueError):
        return None


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down even when a worker is hung mid-task.

    Terminating the workers first makes the subsequent ``shutdown``
    join return promptly (the pool breaks instead of waiting on the
    hung task), and joining keeps the interpreter's exit hooks clean.
    """
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        process.terminate()
    try:
        pool.shutdown(wait=True, cancel_futures=True)
    except Exception:
        pass


def _execute_tasks_resilient(
    tasks: Sequence[_Task],
    workers: int,
    policy: ResiliencePolicy,
    telemetry=None,
) -> List[float]:
    """Run tasks under supervision: timeouts, retries, crash isolation.

    Results are returned in submission order and — tasks being pure
    functions of ``(parameters, seed)`` — are bit-identical to the
    plain serial path no matter how many crashes, timeouts, retries, or
    checkpoint resumes happened along the way.

    Raises:
        TaskFailure: When one task fails ``policy.max_retries + 1``
            times.
        CheckpointMismatch: When ``policy.checkpoint`` exists but
            journals a different task list.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    total = len(tasks)
    values: List[Optional[float]] = [None] * total
    attempts = [0] * total
    checkpoint = (
        SweepCheckpoint(policy.checkpoint, tasks)
        if policy.checkpoint is not None else None
    )
    if telemetry is not None:
        telemetry.start(total)
    if checkpoint is not None:
        for index, (value, wall_s) in sorted(checkpoint.completed.items()):
            values[index] = value
            if telemetry is not None:
                _report(telemetry, tasks[index], index, total, value, wall_s)

    def record(
        index: int, value: float, wall_s: float, lanes: int = 1
    ) -> None:
        values[index] = value
        if checkpoint is not None:
            checkpoint.append(index, value, attempts[index] + 1, wall_s)
        if policy.breaker is not None:
            policy.breaker.record_success(policy.breaker_key(index))
        if telemetry is not None:
            _report(
                telemetry, tasks[index], index, total, value, wall_s,
                lanes=lanes,
            )

    def charge(index: int, cause: BaseException) -> float:
        """Count one failed attempt; return the jittered backoff delay."""
        _note_failure(telemetry, cause)
        attempts[index] += 1
        key = policy.breaker_key(index)
        if (
            policy.breaker is not None
            and isinstance(cause, BrokenProcessPool)
            and policy.breaker.record_crash(key)
        ):
            # The breaker opened: this key keeps killing workers, and
            # another retry would just crash another pool.  Fail now,
            # retry budget notwithstanding.
            raise TaskFailure(index, tasks[index], attempts[index], cause)
        if attempts[index] > policy.max_retries:
            raise TaskFailure(index, tasks[index], attempts[index], cause)
        return policy.backoff_delay(attempts[index], key=key)

    # Fleet-batch whatever the checkpoint didn't already cover; batched
    # lanes are journaled and reported exactly like scalar completions,
    # so resume and telemetry cannot tell the paths apart.
    done_already = frozenset(
        index for index in range(total) if values[index] is not None
    )
    fleet_values, fleet_walls, fleet_lanes = _fleet_prepass(
        tasks, skip=done_already
    )
    for index, value in enumerate(fleet_values):
        if value is not None:
            record(index, value, fleet_walls[index], fleet_lanes[index])

    def serial() -> List[float]:
        # In-process fallback: retries and checkpointing still apply;
        # timeouts cannot (a running task is not preemptible here).
        for index in range(total):
            while values[index] is None:
                try:
                    value, wall_s = _run_measurement_timed(tasks[index])
                except Exception as exc:
                    delay = charge(index, exc)
                    if delay > 0:
                        time.sleep(delay)
                else:
                    record(index, value, wall_s)
        return [float(value) for value in values]

    try:
        backlog = deque(
            index for index in range(total) if values[index] is None
        )
        if not backlog:
            return [float(value) for value in values]
        if workers == 1:
            return serial()
        try:
            pickle.dumps([tasks[index] for index in backlog])
        except Exception:
            return serial()
        pool = _spawn_pool(workers)
        if pool is None:
            return serial()
        try:
            inflight: Dict[object, int] = {}
            deadlines: Dict[object, float] = {}
            ready: List[Tuple[float, int]] = []  # (due time, index) heap

            def submit(index: int) -> None:
                future = pool.submit(_run_measurement_timed, tasks[index])
                inflight[future] = index
                if policy.task_timeout is not None:
                    deadlines[future] = (
                        time.monotonic() + policy.task_timeout
                    )

            def fill() -> None:
                # Cap in-flight futures at the worker count so a
                # submitted future is actually *running* — a per-future
                # deadline on a queued task would expire spuriously.
                while backlog and len(inflight) < workers:
                    submit(backlog.popleft())

            def reschedule_inflight() -> None:
                # Innocent in-flight casualties of a pool teardown go
                # back in line without being charged an attempt.
                for index in inflight.values():
                    backlog.append(index)
                inflight.clear()
                deadlines.clear()

            fill()
            while inflight or backlog or ready:
                now = time.monotonic()
                while ready and ready[0][0] <= now:
                    backlog.append(heapq.heappop(ready)[1])
                fill()
                if not inflight:
                    if ready:
                        time.sleep(max(0.0, ready[0][0] - time.monotonic()))
                    continue
                timeout = None
                if deadlines:
                    timeout = max(0.0, min(deadlines.values()) - now)
                if ready:
                    due = max(0.0, ready[0][0] - now)
                    timeout = due if timeout is None else min(timeout, due)
                done, _ = wait(
                    inflight, timeout=timeout, return_when=FIRST_COMPLETED
                )
                broken = False
                for future in done:
                    index = inflight.pop(future)
                    deadlines.pop(future, None)
                    try:
                        value, wall_s = future.result()
                    except BrokenProcessPool as exc:
                        # One worker died; every sibling future fails
                        # with the same error.  Charge only the first —
                        # the rest are collateral.
                        if broken:
                            backlog.append(index)
                        else:
                            broken = True
                            delay = charge(index, exc)
                            heapq.heappush(
                                ready, (time.monotonic() + delay, index)
                            )
                    except Exception as exc:
                        delay = charge(index, exc)
                        heapq.heappush(
                            ready, (time.monotonic() + delay, index)
                        )
                    else:
                        record(index, value, wall_s)
                if broken:
                    reschedule_inflight()
                    _kill_pool(pool)
                    pool = _spawn_pool(workers)
                    if pool is None:
                        return serial()
                    fill()
                    continue
                if deadlines:
                    now = time.monotonic()
                    expired = [
                        future for future, deadline in deadlines.items()
                        if deadline <= now and not future.done()
                    ]
                    if expired:
                        # A hung worker cannot be interrupted piecemeal:
                        # charge the overdue tasks, then rebuild the
                        # whole pool.
                        for future in expired:
                            index = inflight.pop(future)
                            deadlines.pop(future)
                            delay = charge(index, TimeoutError(
                                f"task exceeded {policy.task_timeout}s"
                            ))
                            heapq.heappush(
                                ready, (time.monotonic() + delay, index)
                            )
                        reschedule_inflight()
                        _kill_pool(pool)
                        pool = _spawn_pool(workers)
                        if pool is None:
                            return serial()
                fill()
            return [float(value) for value in values]
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
    finally:
        if checkpoint is not None:
            checkpoint.close()


def _resolve_policy(
    task_timeout: Optional[float],
    max_retries: Optional[int],
    backoff_base: Optional[float],
    checkpoint: Optional[Union[str, Path]],
) -> Optional[ResiliencePolicy]:
    """Build a policy when any resilience keyword was given, else None."""
    if (
        task_timeout is None and max_retries is None
        and backoff_base is None and checkpoint is None
    ):
        return None
    policy = ResiliencePolicy(
        task_timeout=task_timeout,
        max_retries=(
            max_retries if max_retries is not None
            else ResiliencePolicy.max_retries
        ),
        backoff_base=(
            backoff_base if backoff_base is not None
            else ResiliencePolicy.backoff_base
        ),
        checkpoint=checkpoint,
    )
    return policy


def replicate(
    measurement: Callable[..., float],
    parameters: Optional[Dict[str, object]] = None,
    num_replications: int = 5,
    confidence: float = 0.95,
    base_seed: int = 0,
    workers: int = 1,
    telemetry=None,
    task_timeout: Optional[float] = None,
    max_retries: Optional[int] = None,
    backoff_base: Optional[float] = None,
    checkpoint: Optional[Union[str, Path]] = None,
) -> ConfidenceInterval:
    """Parallel independent replications of one measurement.

    Equivalent to :func:`repro.metrics.confidence.replicate` over
    ``measurement(seed=base_seed + i, **parameters)`` but with the
    replications spread over ``workers`` processes.  Results are
    identical to the serial path for any worker count.  An optional
    :class:`repro.obs.SweepTelemetry` receives one heartbeat per
    completed replication.  Passing any of ``task_timeout`` /
    ``max_retries`` / ``backoff_base`` / ``checkpoint`` routes
    execution through the crash-resilient scheduler (see
    :class:`ResiliencePolicy`); results stay bit-identical.

    Fleet-aware measurements (see
    :class:`repro.harness.measure.SimulationMeasurement`) are batched
    through the vectorized fleet kernel when replications share a
    config, and replications whose *resolved* ``(config, traffic,
    seed)`` fingerprints coincide — e.g. a measurement that pins its
    traffic seed, so every replication would run the identical
    simulation — are computed once and fanned back out, with a
    ``RuntimeWarning``.  Both are pure optimisations: values are
    bit-identical to the serial scalar path.
    """
    if num_replications < 2:
        raise ValueError("need at least two replications for an interval")
    tasks = [
        (measurement, dict(parameters or {}), base_seed + index)
        for index in range(num_replications)
    ]
    first_of: Dict[object, int] = {}
    source: List[int] = []
    unique_tasks: List[_Task] = []
    for task in tasks:
        fingerprint = _task_fingerprint(task)
        position = first_of.setdefault(fingerprint, len(unique_tasks))
        if position == len(unique_tasks):
            unique_tasks.append(task)
        source.append(position)
    if len(unique_tasks) < len(tasks):
        warnings.warn(
            f"replicate(): {len(tasks) - len(unique_tasks)} of "
            f"{len(tasks)} replications share a (config, traffic, seed) "
            "fingerprint and would produce identical results; running "
            "each unique task once",
            RuntimeWarning,
            stacklevel=2,
        )
    policy = _resolve_policy(task_timeout, max_retries, backoff_base, checkpoint)
    if policy is not None:
        values = _execute_tasks_resilient(
            unique_tasks, workers, policy, telemetry
        )
    else:
        values = _execute_tasks(unique_tasks, workers, telemetry)
    return t_interval([values[position] for position in source], confidence)


def run_sweep(
    measurement: Callable[..., float],
    grid: Sequence[Dict[str, object]],
    replications: int = 1,
    confidence: float = 0.95,
    base_seed: int = 0,
    workers: int = 1,
    telemetry=None,
    task_timeout: Optional[float] = None,
    max_retries: Optional[int] = None,
    backoff_base: Optional[float] = None,
    checkpoint: Optional[Union[str, Path]] = None,
) -> List["SweepPoint"]:
    """Parallel version of :func:`repro.harness.sweep.run_sweep`.

    The full (point, replication) task list is flattened and spread over
    ``workers`` processes; the returned points are identical (values,
    ordering, intervals) to the serial sweep for any worker count.  An
    optional :class:`repro.obs.SweepTelemetry` receives one heartbeat per
    completed (point, replication) task.  Passing any of
    ``task_timeout`` / ``max_retries`` / ``backoff_base`` /
    ``checkpoint`` routes execution through the crash-resilient
    scheduler (see :class:`ResiliencePolicy`); results stay
    bit-identical, and an interrupted sweep re-run with the same
    ``checkpoint`` path resumes where it stopped.
    """
    from repro.harness.sweep import SweepPoint

    if replications < 1:
        raise ValueError("need at least one replication")
    tasks = [
        (measurement, dict(parameters), base_seed + index)
        for parameters in grid
        for index in range(replications)
    ]
    policy = _resolve_policy(task_timeout, max_retries, backoff_base, checkpoint)
    if policy is not None:
        values = _execute_tasks_resilient(tasks, workers, policy, telemetry)
    else:
        values = _execute_tasks(tasks, workers, telemetry)
    points: List[SweepPoint] = []
    for number, parameters in enumerate(grid):
        chunk = values[number * replications:(number + 1) * replications]
        if replications == 1:
            points.append(
                SweepPoint(parameters=dict(parameters), value=chunk[0])
            )
        else:
            interval = t_interval(chunk, confidence)
            points.append(
                SweepPoint(
                    parameters=dict(parameters),
                    value=interval.mean,
                    interval=interval,
                )
            )
    return points

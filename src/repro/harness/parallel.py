"""Process-parallel execution of sweeps and replications.

Parameter sweeps and independent replications are embarrassingly parallel:
every task is a pure function of ``(parameters, seed)``.  This module fans
such tasks out over a :class:`~concurrent.futures.ProcessPoolExecutor`
while guaranteeing:

* **determinism** — each task derives its seed exactly as the serial code
  does (``base_seed`` for single-shot points, ``base_seed + i`` for the
  i-th replication), and results are reassembled in submission order, so
  ``workers=N`` returns bit-identical results to ``workers=1``;
* **graceful degradation** — with ``workers=1``, a single task, an
  unpicklable measurement, or a pool that fails to spawn (restricted
  containers, daemonic parents), the tasks simply run serially.

Measurement callables must be picklable (module-level functions, not
lambdas or closures) to actually run in worker processes; anything else
silently falls back to the serial path.
"""

import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.metrics.confidence import ConfidenceInterval, t_interval


def _run_measurement(
    task: Tuple[Callable[..., float], Dict[str, object], int]
) -> float:
    """Execute one ``(measurement, parameters, seed)`` task (pickled)."""
    measurement, parameters, seed = task
    return float(measurement(seed=seed, **parameters))


def _execute_tasks(
    tasks: Sequence[Tuple[Callable[..., float], Dict[str, object], int]],
    workers: int,
) -> List[float]:
    """Run tasks, in order, across ``workers`` processes (1 = serial).

    Falls back to the serial path when parallelism cannot help (one task)
    or cannot work (unpicklable tasks, pool spawn failure).  Exceptions
    raised by the measurement itself always propagate.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if workers == 1 or len(tasks) <= 1:
        return [_run_measurement(task) for task in tasks]
    try:
        pickle.dumps(tasks)
    except Exception:
        return [_run_measurement(task) for task in tasks]
    try:
        pool = ProcessPoolExecutor(max_workers=workers)
    except (OSError, ValueError):
        return [_run_measurement(task) for task in tasks]
    try:
        # map() preserves submission order regardless of completion order.
        return list(pool.map(_run_measurement, tasks))
    except (OSError, BrokenProcessPool):
        return [_run_measurement(task) for task in tasks]
    finally:
        pool.shutdown()


def replicate(
    measurement: Callable[..., float],
    parameters: Optional[Dict[str, object]] = None,
    num_replications: int = 5,
    confidence: float = 0.95,
    base_seed: int = 0,
    workers: int = 1,
) -> ConfidenceInterval:
    """Parallel independent replications of one measurement.

    Equivalent to :func:`repro.metrics.confidence.replicate` over
    ``measurement(seed=base_seed + i, **parameters)`` but with the
    replications spread over ``workers`` processes.  Results are
    identical to the serial path for any worker count.
    """
    if num_replications < 2:
        raise ValueError("need at least two replications for an interval")
    tasks = [
        (measurement, dict(parameters or {}), base_seed + index)
        for index in range(num_replications)
    ]
    return t_interval(_execute_tasks(tasks, workers), confidence)


def run_sweep(
    measurement: Callable[..., float],
    grid: Sequence[Dict[str, object]],
    replications: int = 1,
    confidence: float = 0.95,
    base_seed: int = 0,
    workers: int = 1,
) -> List["SweepPoint"]:
    """Parallel version of :func:`repro.harness.sweep.run_sweep`.

    The full (point, replication) task list is flattened and spread over
    ``workers`` processes; the returned points are identical (values,
    ordering, intervals) to the serial sweep for any worker count.
    """
    from repro.harness.sweep import SweepPoint

    if replications < 1:
        raise ValueError("need at least one replication")
    tasks = [
        (measurement, dict(parameters), base_seed + index)
        for parameters in grid
        for index in range(replications)
    ]
    values = _execute_tasks(tasks, workers)
    points: List[SweepPoint] = []
    for number, parameters in enumerate(grid):
        chunk = values[number * replications:(number + 1) * replications]
        if replications == 1:
            points.append(
                SweepPoint(parameters=dict(parameters), value=chunk[0])
            )
        else:
            interval = t_interval(chunk, confidence)
            points.append(
                SweepPoint(
                    parameters=dict(parameters),
                    value=interval.mean,
                    interval=interval,
                )
            )
    return points

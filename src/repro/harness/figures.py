"""Regeneration of the paper's figures as data series.

Every function returns plain data (dicts of series / lists of tuples) so
benchmarks can assert on shapes and scripts can print or plot them.  Units
follow the paper: frequencies in GHz, energy in pJ per 128-bit
transaction, loads in packets/input/ns, latencies in ns (or cycles where
the paper uses cycles, Fig 11a), throughput in packets/ns, area in mm^2.
"""

from typing import Dict, List, Sequence, Tuple

from repro.core import HiRiseConfig, HiRiseSwitch
from repro.metrics import accepted_throughput, saturation_throughput
from repro.physical import (
    cost_of,
    energy_per_transaction_pj,
    flat2d_geometry,
    frequency_ghz,
)
from repro.physical.geometry import hirise_sweep_geometry
from repro.physical.technology import Technology
from repro.switches import FoldedSwitch3D, SwizzleSwitch2D
from repro.traffic import AdversarialTraffic, HotspotTraffic, UniformRandomTraffic
from repro.traffic.adversarial import paper_adversarial_demands

Series = List[Tuple[float, float]]

_ARBITRATION_LABELS = {
    "l2l_lrg": "3D L-2-L LRG",
    "wlrg": "3D WLRG",
    "clrg": "3D CLRG",
}


# ----------------------------------------------------------------------
# Fig 9: physical design space (pure model, fast)
# ----------------------------------------------------------------------
def fig9a_frequency_vs_radix(
    radices: Sequence[int] = (8, 16, 24, 32, 48, 64, 80, 96, 112, 128),
    layers: int = 4,
) -> Dict[str, Series]:
    """Fig 9(a): frequency vs radix for 2D and 1/2/4-channel 3D."""
    series: Dict[str, Series] = {"2D": []}
    for radix in radices:
        series["2D"].append((radix, frequency_ghz(flat2d_geometry(radix))))
    for channels in (4, 2, 1):
        label = f"3D {channels}-Channel"
        series[label] = [
            (radix, frequency_ghz(hirise_sweep_geometry(radix, layers, channels)))
            for radix in radices
        ]
    return series


def fig9b_frequency_vs_layers(
    radices: Sequence[int] = (48, 64, 80, 128),
    layer_range: Sequence[int] = (2, 3, 4, 5, 6, 7),
    channels: int = 4,
) -> Dict[str, Series]:
    """Fig 9(b): frequency vs stacked layer count per radix."""
    return {
        f"Radix {radix}": [
            (layers, frequency_ghz(hirise_sweep_geometry(radix, layers, channels)))
            for layers in layer_range
        ]
        for radix in radices
    }


def fig9c_energy_vs_radix(
    radices: Sequence[int] = (8, 16, 24, 32, 48, 64, 80, 96, 112, 128),
    layers: int = 4,
) -> Dict[str, Series]:
    """Fig 9(c): energy per 128-bit transaction vs radix."""
    series: Dict[str, Series] = {"2D": []}
    for radix in radices:
        series["2D"].append(
            (radix, energy_per_transaction_pj(flat2d_geometry(radix)))
        )
    for channels in (4, 2, 1):
        label = f"3D {channels}-Channel"
        series[label] = [
            (
                radix,
                energy_per_transaction_pj(
                    hirise_sweep_geometry(radix, layers, channels)
                ),
            )
            for radix in radices
        ]
    return series


# ----------------------------------------------------------------------
# Fig 10: latency vs load, uniform random (cycle simulation)
# ----------------------------------------------------------------------
def _fig10_designs():
    return {
        "2D": (lambda: SwizzleSwitch2D(64), cost_of("2d").frequency_ghz),
        "3D 4-Channel": _hirise_entry(4),
        "3D 2-Channel": _hirise_entry(2),
        "3D 1-Channel": _hirise_entry(1),
        "3D Folded": (
            lambda: FoldedSwitch3D(64, 4),
            cost_of("folded").frequency_ghz,
        ),
    }


def _hirise_entry(channels: int, arbitration: str = "l2l_lrg"):
    config = HiRiseConfig(
        radix=64, layers=4, channel_multiplicity=channels,
        arbitration=arbitration,
    )
    return (lambda: HiRiseSwitch(config), cost_of(config).frequency_ghz)


def fig10_latency_vs_load(
    loads_per_ns: Sequence[float] = (0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35),
    warmup_cycles: int = 500,
    measure_cycles: int = 2500,
    seed: int = 7,
) -> Dict[str, List[Tuple[float, float, float]]]:
    """Fig 10: (load packets/input/ns, latency ns, accepted packets/ns).

    Loads are converted per design into packets/input/cycle at the
    design's modelled clock; past-saturation points report the (growing)
    latency of delivered packets, producing the hockey stick.
    """
    results: Dict[str, List[Tuple[float, float, float]]] = {}
    for name, (factory, freq) in _fig10_designs().items():
        period_ns = 1.0 / freq
        points = []
        for load_ns in loads_per_ns:
            load_cycle = min(1.0, load_ns * period_ns)
            result = accepted_throughput(
                factory,
                lambda load: UniformRandomTraffic(64, load, seed=seed),
                load_cycle,
                warmup_cycles=warmup_cycles,
                measure_cycles=measure_cycles,
            )
            latency_ns = result.avg_latency_cycles * period_ns
            accepted_per_ns = result.throughput_packets_per_cycle * freq
            points.append((load_ns, latency_ns, accepted_per_ns))
        results[name] = points
    return results


# ----------------------------------------------------------------------
# Fig 11: arbitration schemes (cycle simulation)
# ----------------------------------------------------------------------
def _fig11_designs():
    designs = {"2D": (lambda: SwizzleSwitch2D(64), cost_of("2d").frequency_ghz)}
    for arbitration, label in _ARBITRATION_LABELS.items():
        designs[label] = _hirise_entry(4, arbitration)
    return designs


def fig11a_hotspot_latency(
    load_fraction: float = 1.0,
    hotspot_output: int = 63,
    warmup_cycles: int = 2000,
    measure_cycles: int = 20000,
    seed: int = 5,
) -> Dict[str, List[float]]:
    """Fig 11(a): per-input average latency (cycles) under hotspot traffic
    at ``load_fraction`` of each design's hotspot saturation load.

    The paper quotes 80% of saturation; with this simulator's overdrive
    plateau as the saturation estimate, the figure's latency magnitudes
    (~600 cycles for the starved local inputs under L-2-L LRG, ~100-150
    for the flat 2D switch) are reproduced at the plateau itself
    (``load_fraction=1.0``, the default), while 0.8 gives the same
    ordering with milder magnitudes — see EXPERIMENTS.md."""
    results: Dict[str, List[float]] = {}
    for name, (factory, _freq) in _fig11_designs().items():
        sat_packets = saturation_throughput(
            factory,
            lambda load: HotspotTraffic(
                64, load, hotspot_output=hotspot_output, seed=seed
            ),
            warmup_cycles=warmup_cycles // 2,
            measure_cycles=measure_cycles // 4,
        )
        per_input_load = load_fraction * sat_packets / 64
        result = accepted_throughput(
            factory,
            lambda load: HotspotTraffic(
                64, load, hotspot_output=hotspot_output, seed=seed
            ),
            per_input_load,
            warmup_cycles=warmup_cycles,
            measure_cycles=measure_cycles,
        )
        results[name] = result.per_input_avg_latency(64)
    return results


def fig11b_arbitration_throughput(
    loads_per_ns: Sequence[float] = (0.05, 0.15, 0.25, 0.35, 0.45),
    warmup_cycles: int = 500,
    measure_cycles: int = 2500,
    seed: int = 7,
) -> Dict[str, Series]:
    """Fig 11(b): accepted throughput (packets/ns) vs offered load for the
    arbitration schemes under uniform random traffic."""
    results: Dict[str, Series] = {}
    for name, (factory, freq) in _fig11_designs().items():
        period_ns = 1.0 / freq
        points = []
        for load_ns in loads_per_ns:
            load_cycle = min(1.0, load_ns * period_ns)
            result = accepted_throughput(
                factory,
                lambda load: UniformRandomTraffic(64, load, seed=seed),
                load_cycle,
                warmup_cycles=warmup_cycles,
                measure_cycles=measure_cycles,
            )
            points.append((load_ns, result.throughput_packets_per_cycle * freq))
        results[name] = points
    return results


def fig11c_adversarial_throughput(
    warmup_cycles: int = 2000,
    measure_cycles: int = 20000,
    load_per_cycle: float = 0.5,
    seed: int = 5,
) -> Dict[str, Dict[int, float]]:
    """Fig 11(c): per-input throughput (packets/ns) for the Section III-B
    adversarial pattern ({3,7,11,15} on L1 + {20} on L2 -> output 63).

    Under 4-way input binning, inputs 3, 7, 11 and 15 all map to the same
    L2LC (3 mod 4 == 15 mod 4), reproducing the contention of the
    1-channel walk-through on the headline 4-channel configuration.
    """
    demands = paper_adversarial_demands()
    results: Dict[str, Dict[int, float]] = {}
    for name, (factory, freq) in _fig11_designs().items():
        result = accepted_throughput(
            factory,
            lambda load: AdversarialTraffic(64, load, demands, seed=seed),
            load_per_cycle,
            warmup_cycles=warmup_cycles,
            measure_cycles=measure_cycles,
        )
        per_cycle = result.per_input_throughput(64)
        results[name] = {
            src: per_cycle[src] * freq for src in sorted(demands)
        }
    return results


# ----------------------------------------------------------------------
# Fig 12: TSV pitch sensitivity (pure model, fast)
# ----------------------------------------------------------------------
def fig12_tsv_pitch(
    pitches_um: Sequence[float] = (0.4, 0.8, 1.2, 1.6, 2.4, 3.2, 4.0, 4.8),
) -> List[Tuple[float, float, float]]:
    """Fig 12: (TSV pitch um, frequency GHz, area mm^2) for the 4-channel
    4-layer 64-radix Hi-Rise."""
    config = HiRiseConfig(arbitration="l2l_lrg")
    points = []
    for pitch in pitches_um:
        cost = cost_of(config, technology=Technology().with_tsv_pitch(pitch))
        points.append((pitch, cost.frequency_ghz, cost.area_mm2))
    return points

"""Regeneration of the paper's tables.

* Table I  — implementation cost of 2D versus 3D folded (64-radix).
* Table IV — implementation cost of the channel-multiplicity design space
  (2D, folded, 4/2/1-channel Hi-Rise) including saturation throughput.
* Table V  — implementation cost of the arbitration variants (2D,
  L-2-L LRG, CLRG).
* Table VI — application speedups of Hi-Rise over 2D for the eight
  workload mixes.

Area/frequency/energy come from the calibrated physical model; saturation
throughput comes from overdriven cycle simulation converted to Tbps at the
design's modelled clock (Tbps = flits/cycle x 128 bit x GHz).
"""

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core import HiRiseConfig, HiRiseSwitch
from repro.manycore import MIXES, SystemConfig, WorkloadMix, system_speedup
from repro.metrics import saturation_throughput
from repro.network.engine import SwitchModel
from repro.physical import cost_of
from repro.physical.calibration import (
    PAPER_AREA_MM2,
    PAPER_ENERGY_PJ,
    PAPER_FREQUENCY_GHZ,
    PAPER_TSV_COUNT,
)
from repro.switches import FoldedSwitch3D, SwizzleSwitch2D
from repro.traffic import UniformRandomTraffic

PAPER_THROUGHPUT_TBPS: Dict[str, float] = {
    "2d": 9.24,
    "folded": 8.86,
    "hirise_c4": 10.97,
    "hirise_c2": 7.65,
    "hirise_c1": 4.27,
    "hirise_c4_clrg": 10.65,
}


@dataclass(frozen=True)
class CostRow:
    """One design-point row of Tables I/IV/V (paper and measured)."""

    design: str
    configuration: str
    area_mm2: float
    frequency_ghz: float
    energy_pj: float
    throughput_tbps: float
    tsv_count: int
    paper_area_mm2: Optional[float] = None
    paper_frequency_ghz: Optional[float] = None
    paper_energy_pj: Optional[float] = None
    paper_throughput_tbps: Optional[float] = None
    paper_tsv_count: Optional[int] = None


@dataclass(frozen=True)
class SpeedupRow:
    """One workload-mix row of Table VI."""

    mix: str
    avg_mpki: float
    speedup: float
    paper_avg_mpki: float
    paper_speedup: float


def _measure_saturation(
    factory: Callable[[], SwitchModel],
    radix: int,
    warmup_cycles: int,
    measure_cycles: int,
    seed: int = 7,
) -> float:
    """Overdriven uniform-random delivered rate, flits/cycle."""
    packets = saturation_throughput(
        factory,
        lambda load: UniformRandomTraffic(radix, load, seed=seed),
        overdrive_load=0.99,
        warmup_cycles=warmup_cycles,
        measure_cycles=measure_cycles,
    )
    return packets * 4  # 4-flit packets


def _hirise_config(channels: int, arbitration: str) -> HiRiseConfig:
    return HiRiseConfig(
        radix=64, layers=4, channel_multiplicity=channels,
        arbitration=arbitration,
    )


def _cost_row(
    design_key: str,
    design,
    configuration: str,
    factory: Callable[[], SwitchModel],
    warmup_cycles: int,
    measure_cycles: int,
) -> CostRow:
    cost = cost_of(design)
    flits_per_cycle = _measure_saturation(
        factory, 64, warmup_cycles, measure_cycles
    )
    return CostRow(
        design=cost.name,
        configuration=configuration,
        area_mm2=cost.area_mm2,
        frequency_ghz=cost.frequency_ghz,
        energy_pj=cost.energy_pj,
        throughput_tbps=cost.throughput_tbps(flits_per_cycle),
        tsv_count=cost.tsv_count,
        paper_area_mm2=PAPER_AREA_MM2.get(
            design_key, PAPER_AREA_MM2.get(design_key.replace("_clrg", ""))
        ),
        paper_frequency_ghz=PAPER_FREQUENCY_GHZ.get(design_key),
        paper_energy_pj=PAPER_ENERGY_PJ.get(design_key),
        paper_throughput_tbps=PAPER_THROUGHPUT_TBPS.get(design_key),
        paper_tsv_count=PAPER_TSV_COUNT.get(
            design_key, PAPER_TSV_COUNT.get(design_key.replace("_clrg", ""))
        ),
    )


def table1(warmup_cycles: int = 500, measure_cycles: int = 2500) -> List[CostRow]:
    """Table I: 2D versus 3D folded implementation cost (radix 64)."""
    return [
        _cost_row("2d", "2d", "64x64",
                  lambda: SwizzleSwitch2D(64), warmup_cycles, measure_cycles),
        _cost_row("folded", "folded", "[16x64]x4",
                  lambda: FoldedSwitch3D(64, 4), warmup_cycles, measure_cycles),
    ]


def table4(warmup_cycles: int = 500, measure_cycles: int = 2500) -> List[CostRow]:
    """Table IV: cost of the channel-multiplicity design space."""
    rows = table1(warmup_cycles, measure_cycles)
    for channels in (4, 2, 1):
        config = _hirise_config(channels, "l2l_lrg")
        rows.append(
            _cost_row(
                f"hirise_c{channels}", config, config.configuration_string(),
                lambda config=config: HiRiseSwitch(config),
                warmup_cycles, measure_cycles,
            )
        )
    return rows


def table5(warmup_cycles: int = 500, measure_cycles: int = 2500) -> List[CostRow]:
    """Table V: cost of the arbitration variants (WLRG omitted, as in the
    paper — "its implementation is infeasible")."""
    rows = [
        _cost_row("2d", "2d", "64x64",
                  lambda: SwizzleSwitch2D(64), warmup_cycles, measure_cycles)
    ]
    for arbitration, key in (("l2l_lrg", "hirise_c4"), ("clrg", "hirise_c4_clrg")):
        config = _hirise_config(4, arbitration)
        rows.append(
            _cost_row(
                key, config,
                config.configuration_string(),
                lambda config=config: HiRiseSwitch(config),
                warmup_cycles, measure_cycles,
            )
        )
    return rows


def table6(
    network_cycles_baseline: int = 8000,
    seed: int = 0,
    mixes: Optional[List[WorkloadMix]] = None,
    config: Optional[SystemConfig] = None,
) -> List[SpeedupRow]:
    """Table VI: Hi-Rise over 2D system speedup per workload mix."""
    freq_2d = cost_of("2d").frequency_ghz
    hirise_config = HiRiseConfig()  # 4-channel 4-layer CLRG headline
    freq_hirise = cost_of(hirise_config).frequency_ghz
    rows: List[SpeedupRow] = []
    for mix in mixes if mixes is not None else MIXES:
        speedup = system_speedup(
            mix,
            lambda: SwizzleSwitch2D(64),
            lambda: HiRiseSwitch(hirise_config),
            baseline_frequency_ghz=freq_2d,
            candidate_frequency_ghz=freq_hirise,
            network_cycles_baseline=network_cycles_baseline,
            config=config,
            seed=seed,
        )
        rows.append(
            SpeedupRow(
                mix=mix.name,
                avg_mpki=mix.avg_mpki,
                speedup=speedup,
                paper_avg_mpki=mix.paper_avg_mpki,
                paper_speedup=mix.paper_speedup,
            )
        )
    return rows

"""CSV export of regenerated tables and figure series.

Plotting is out of scope offline, but every harness product can be dumped
to CSV for external tooling: figure series become long-format files
(series, x, y, ...) and table rows become one row per design point with
paper columns alongside measured ones.
"""

import csv
import dataclasses
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from repro.harness.tables import CostRow, SpeedupRow


def export_series_csv(
    series: Dict[str, List[Tuple]],
    path: Union[str, Path],
    columns: Sequence[str],
) -> Path:
    """Write figure series in long format: series name + value columns.

    Args:
        series: Mapping of series name to rows of points.
        path: Output file path (parent directories are created).
        columns: Names for the point tuple's positions.

    Returns:
        The path written.

    Raises:
        ValueError: If a point's width does not match ``columns``.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["series", *columns])
        for name, points in series.items():
            for point in points:
                if len(point) != len(columns):
                    raise ValueError(
                        f"point {point!r} does not match columns {columns!r}"
                    )
                writer.writerow([name, *point])
    return path


def export_rows_csv(
    rows: Sequence[Union[CostRow, SpeedupRow]],
    path: Union[str, Path],
) -> Path:
    """Write table rows (cost or speedup dataclasses) as CSV.

    Raises:
        ValueError: If ``rows`` is empty (no header can be derived).
    """
    if not rows:
        raise ValueError("no rows to export")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fields = [field.name for field in dataclasses.fields(rows[0])]
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(fields)
        for row in rows:
            writer.writerow([getattr(row, name) for name in fields])
    return path

"""Dimension-ordered (XY) routing for the mesh of 3D switches.

Section VI-E: "The topology is a 2D mesh of 3D switches.  This allows
routing algorithms to be XY dimensionally ordered, while the 3D switch can
provide the adaptable Z dimension routing."  Deadlock freedom follows from
dimension order in the mesh plane; the Z dimension never leaves a switch.
"""

import enum
from typing import Tuple


class RoutingDecision(enum.Enum):
    """Next hop out of a mesh node."""

    LOCAL = "local"   # destination terminal is on this switch
    EAST = "east"     # +x
    WEST = "west"     # -x
    NORTH = "north"   # +y
    SOUTH = "south"   # -y


def xy_route(
    current: Tuple[int, int], destination: Tuple[int, int]
) -> RoutingDecision:
    """XY dimension-ordered routing: correct x first, then y.

    Args:
        current: (x, y) of the switch holding the packet.
        destination: (x, y) of the destination switch.
    """
    cx, cy = current
    dx, dy = destination
    if cx < dx:
        return RoutingDecision.EAST
    if cx > dx:
        return RoutingDecision.WEST
    if cy < dy:
        return RoutingDecision.NORTH
    if cy > dy:
        return RoutingDecision.SOUTH
    return RoutingDecision.LOCAL


def hop_count(src: Tuple[int, int], dst: Tuple[int, int]) -> int:
    """Manhattan distance between two mesh nodes."""
    return abs(src[0] - dst[0]) + abs(src[1] - dst[1])

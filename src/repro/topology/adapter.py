"""Adapter: drive a mesh of 3D switches through the SwitchModel interface.

``MeshInterconnect`` presents the whole mesh as one big switch whose ports
are the mesh's terminals, so everything written against
:class:`~repro.network.engine.SwitchModel` — the simulation engine, the
traffic generators, and notably the :mod:`repro.manycore` system — runs
unchanged on the Fig 13 kilo-core topology.

Terminal numbering is node-major: terminal ``t`` of the ``i``-th node (in
the mesh's x-major construction order) is global port
``i * concentration + t``.

Each end-to-end packet is delivered as a single synthetic head+tail flit
carrying the original payload; latency semantics are preserved via the NoC
packet's creation cycle, while the flit-level serialisation happens inside
the per-hop router models.
"""

from typing import Dict, List, Tuple

from repro.network.engine import SwitchModel
from repro.network.flit import Flit
from repro.network.packet import Packet
from repro.topology.mesh import MeshNetwork


class MeshInterconnect(SwitchModel):
    """The whole mesh, viewed as one ``total_terminals``-port switch."""

    def __init__(self, mesh: MeshNetwork) -> None:
        self.mesh = mesh
        config = mesh.config
        self.num_ports = config.total_terminals
        self._nodes_in_order: List[Tuple[int, int]] = [
            (x, y) for x in range(config.cols) for y in range(config.rows)
        ]
        self._node_index: Dict[Tuple[int, int], int] = {
            node: index for index, node in enumerate(self._nodes_in_order)
        }

    # ------------------------------------------------------------------
    # Port mapping
    # ------------------------------------------------------------------
    def locate(self, port: int) -> Tuple[Tuple[int, int], int]:
        """Global port -> (mesh node, terminal index)."""
        if not 0 <= port < self.num_ports:
            raise ValueError(f"port {port} out of range [0, {self.num_ports})")
        concentration = self.mesh.config.concentration
        node = self._nodes_in_order[port // concentration]
        return node, port % concentration

    def global_port(self, node: Tuple[int, int], terminal: int) -> int:
        """(mesh node, terminal index) -> global port."""
        concentration = self.mesh.config.concentration
        if not 0 <= terminal < concentration:
            raise ValueError(f"terminal {terminal} out of range")
        return self._node_index[node] * concentration + terminal

    # ------------------------------------------------------------------
    # SwitchModel interface
    # ------------------------------------------------------------------
    def inject(self, packet: Packet) -> None:
        src_node, src_terminal = self.locate(packet.src)
        dst_node, dst_terminal = self.locate(packet.dst)
        noc = self.mesh.create_packet(
            src_node, src_terminal, dst_node, dst_terminal,
            num_flits=packet.num_flits,
            payload=packet.payload,
        )
        # Preserve the caller's generation timestamp for latency stats.
        noc.created_cycle = packet.created_cycle

    def step(self, cycle: int) -> List[Flit]:
        delivered = self.mesh.step()
        flits: List[Flit] = []
        for noc in delivered:
            flit = Flit(
                packet_id=noc.packet_id,
                src=self.global_port(noc.src_node, noc.src_terminal),
                dst=self.global_port(noc.dst_node, noc.dst_terminal),
                seq=0,
                num_flits=1,
                created_cycle=noc.created_cycle,
                payload=noc.payload,
            )
            flit.ejected_cycle = cycle
            flits.append(flit)
        return flits

    def occupancy(self) -> int:
        return self.mesh.occupancy()

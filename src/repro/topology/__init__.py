"""Kilo-core topologies built from Hi-Rise switches (Section VI-E).

The paper's discussion section sketches how true 3D switches compose into
larger networks: a 2D mesh of Hi-Rise switches for 3D chips (Fig 13),
where XY routing is dimension-ordered in the mesh plane and each Hi-Rise
switch provides adaptive Z (inter-layer) routing internally.  This
subpackage implements that topology over the cycle-accurate switch models,
with concentration (multiple terminals per switch) as used by prior
high-radix NoC proposals.
"""

from repro.topology.routing import RoutingDecision, xy_route
from repro.topology.mesh import MeshConfig, MeshNetwork, NocPacket
from repro.topology.adapter import MeshInterconnect

__all__ = [
    "MeshConfig",
    "MeshInterconnect",
    "MeshNetwork",
    "NocPacket",
    "RoutingDecision",
    "xy_route",
]

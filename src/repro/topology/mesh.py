"""A 2D mesh NoC whose routers are cycle-accurate Hi-Rise switches.

Each mesh node hosts ``concentration`` terminals (cores/cache slices) plus
four mesh links (E/W/N/S); the node's router is any :class:`SwitchModel`
of radix ``concentration + 4`` — a Hi-Rise switch for 3D chips, or the
flat 2D switch as a baseline.  Mesh link ports are spread across the
stacked layers (one per layer when four layers are used), so vertical (Z)
adaptivity stays inside each switch exactly as Fig 13 intends.

Packets route XY in the mesh plane.  Each inter-switch hop is realised as
a fresh single-switch packet (entry port -> exit port) carrying the NoC
packet as payload; handing a packet to the neighbour's input queue costs
one cycle, modelling a registered link.  Inter-router buffering is the
neighbour's network-interface queue (unbounded — the model omits link
level backpressure; XY ordering plus sink-always-drains makes delivery
deadlock-free).
"""

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.network.engine import SwitchModel
from repro.network.packet import PacketFactory
from repro.topology.routing import RoutingDecision, xy_route

_DIRECTIONS = (
    RoutingDecision.EAST,
    RoutingDecision.WEST,
    RoutingDecision.NORTH,
    RoutingDecision.SOUTH,
)
_OPPOSITE = {
    RoutingDecision.EAST: RoutingDecision.WEST,
    RoutingDecision.WEST: RoutingDecision.EAST,
    RoutingDecision.NORTH: RoutingDecision.SOUTH,
    RoutingDecision.SOUTH: RoutingDecision.NORTH,
}
_DELTA = {
    RoutingDecision.EAST: (1, 0),
    RoutingDecision.WEST: (-1, 0),
    RoutingDecision.NORTH: (0, 1),
    RoutingDecision.SOUTH: (0, -1),
}


@dataclass
class NocPacket:
    """An end-to-end packet in the mesh network."""

    packet_id: int
    src_node: Tuple[int, int]
    src_terminal: int
    dst_node: Tuple[int, int]
    dst_terminal: int
    num_flits: int = 4
    created_cycle: int = 0
    delivered_cycle: Optional[int] = None
    hops: int = 0
    payload: object = None

    @property
    def latency(self) -> int:
        if self.delivered_cycle is None:
            raise ValueError(f"NoC packet {self.packet_id} still in flight")
        return self.delivered_cycle - self.created_cycle


@dataclass(frozen=True)
class MeshConfig:
    """Shape of the mesh and of each node's router.

    Attributes:
        rows/cols: Mesh dimensions.
        concentration: Terminals per node.
        layers: Stacked layers of each node's switch; mesh link ports are
            interleaved one per layer (``layers`` should divide the radix
            when the router is a Hi-Rise switch).
        links_per_direction: Parallel mesh links per direction, spread
            across layers (an extension enabling layer-aware routing).
        layer_aware: Choose the outgoing link whose port sits on the same
            layer the packet entered on, minimising vertical (L2LC)
            traversal inside the router — the Section VI-E suggestion
            that "layer-aware routing algorithms that minimize the
            traversal of traffic in the vertical direction will ...
            alleviate the L2LC bottleneck".  With a single link per
            direction the flag has no effect.
    """

    rows: int = 4
    cols: int = 4
    concentration: int = 12
    layers: int = 4
    links_per_direction: int = 1
    layer_aware: bool = False

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError("mesh must have at least one node")
        if self.concentration < 1:
            raise ValueError("need at least one terminal per node")
        if self.layers < 1:
            raise ValueError("need at least one layer")
        if self.links_per_direction < 1:
            raise ValueError("need at least one link per direction")
        if self.radix % self.layers != 0:
            raise ValueError(
                f"radix {self.radix} must divide evenly over "
                f"{self.layers} layers"
            )
        mesh_ports = [
            self.mesh_port(d, link)
            for d in _DIRECTIONS
            for link in range(self.links_per_direction)
        ]
        if len(mesh_ports) != len(set(mesh_ports)):
            raise ValueError(
                "mesh link ports collide; increase concentration or "
                "reduce links_per_direction"
            )

    @property
    def radix(self) -> int:
        """Router radix: terminals plus the mesh link ports."""
        return self.concentration + 4 * self.links_per_direction

    @property
    def total_terminals(self) -> int:
        return self.rows * self.cols * self.concentration

    def mesh_port(self, direction: RoutingDecision, link: int = 0) -> int:
        """Switch port of a mesh link, spread across stacked layers.

        Link ``l`` of direction ``d`` occupies slot ``d * links + l``;
        slots wind across layers so the links of one direction land on
        distinct layers (enabling layer-aware link choice), and with one
        link per direction and L >= 4 layers the four directions land on
        distinct layers (the last port of each layer).
        """
        if not 0 <= link < self.links_per_direction:
            raise ValueError(f"link {link} out of range")
        index = _DIRECTIONS.index(direction)
        slot = index * self.links_per_direction + link
        ports_per_layer = self.radix // self.layers
        layer = slot % self.layers
        offset = slot // self.layers
        return layer * ports_per_layer + (ports_per_layer - 1 - offset)

    def port_layer(self, port: int) -> int:
        """Stacked layer hosting a switch port."""
        return port // (self.radix // self.layers)

    def link_for_layer(self, direction: RoutingDecision, layer: int) -> int:
        """The direction's link whose port lies closest to ``layer``.

        Used by layer-aware routing to keep a transiting packet on (or
        near) its entry layer, minimising L2LC usage inside the router.
        """
        return min(
            range(self.links_per_direction),
            key=lambda link: abs(
                self.port_layer(self.mesh_port(direction, link)) - layer
            ),
        )

    def all_mesh_ports(self) -> Dict[int, Tuple[RoutingDecision, int]]:
        """Mapping of every mesh link port to its (direction, link)."""
        return {
            self.mesh_port(d, link): (d, link)
            for d in _DIRECTIONS
            for link in range(self.links_per_direction)
        }

    def terminal_port(self, terminal: int) -> int:
        """Switch port of a local terminal (skipping mesh link ports)."""
        if not 0 <= terminal < self.concentration:
            raise ValueError(f"terminal {terminal} out of range")
        mesh_ports = set(self.all_mesh_ports())
        count = -1
        for port in range(self.radix):
            if port in mesh_ports:
                continue
            count += 1
            if count == terminal:
                return port
        raise AssertionError("unreachable: terminal ports exhausted")


class MeshNetwork:
    """A rows x cols mesh of cycle-accurate switches."""

    def __init__(
        self,
        config: MeshConfig,
        switch_factory: Callable[[int], SwitchModel],
    ) -> None:
        self.config = config
        self.nodes: Dict[Tuple[int, int], SwitchModel] = {}
        for x in range(config.cols):
            for y in range(config.rows):
                switch = switch_factory(config.radix)
                if switch.num_ports != config.radix:
                    raise ValueError(
                        f"factory produced radix {switch.num_ports}, "
                        f"mesh needs {config.radix}"
                    )
                self.nodes[(x, y)] = switch
        self._hop_packets = PacketFactory()
        self._payloads: Dict[Tuple[Tuple[int, int], int], NocPacket] = {}
        self._next_id = 0
        self.delivered: List[NocPacket] = []
        self.cycle = 0

    # ------------------------------------------------------------------
    # Injection
    # ------------------------------------------------------------------
    def create_packet(
        self,
        src_node: Tuple[int, int],
        src_terminal: int,
        dst_node: Tuple[int, int],
        dst_terminal: int,
        num_flits: int = 4,
        payload: object = None,
    ) -> NocPacket:
        """Create and inject a NoC packet at its source terminal."""
        self._check_node(src_node)
        self._check_node(dst_node)
        packet = NocPacket(
            packet_id=self._next_id,
            src_node=src_node,
            src_terminal=src_terminal,
            dst_node=dst_node,
            dst_terminal=dst_terminal,
            num_flits=num_flits,
            created_cycle=self.cycle,
            payload=payload,
        )
        self._next_id += 1
        entry_port = self.config.terminal_port(src_terminal)
        self._launch_hop(packet, src_node, entry_port)
        return packet

    def _check_node(self, node: Tuple[int, int]) -> None:
        if node not in self.nodes:
            raise ValueError(f"node {node} outside the mesh")

    def _launch_hop(
        self, packet: NocPacket, node: Tuple[int, int], entry_port: int
    ) -> None:
        decision = xy_route(node, packet.dst_node)
        if decision is RoutingDecision.LOCAL:
            exit_port = self.config.terminal_port(packet.dst_terminal)
        else:
            exit_port = self.config.mesh_port(
                decision, self._choose_link(decision, entry_port, packet)
            )
        hop = self._hop_packets.create(
            entry_port, exit_port, created_cycle=self.cycle,
            num_flits=packet.num_flits, payload=packet,
        )
        self.nodes[node].inject(hop)

    def _choose_link(
        self,
        direction: RoutingDecision,
        entry_port: int,
        packet: NocPacket,
    ) -> int:
        """Pick the outgoing mesh link for a transiting packet.

        Layer-aware mode keeps the packet on its entry layer (minimising
        vertical channel traversal inside the router); otherwise links are
        spread round-robin by packet id, oblivious to layers.
        """
        links = self.config.links_per_direction
        if links == 1:
            return 0
        if self.config.layer_aware:
            return self.config.link_for_layer(
                direction, self.config.port_layer(entry_port)
            )
        return packet.packet_id % links

    # ------------------------------------------------------------------
    # Cycle loop
    # ------------------------------------------------------------------
    def step(self) -> List[NocPacket]:
        """Advance every router one cycle; return packets delivered."""
        arrivals: List[Tuple[NocPacket, Tuple[int, int], int]] = []
        delivered_now: List[NocPacket] = []
        mesh_ports = self.config.all_mesh_ports()
        for node, switch in self.nodes.items():
            for flit in switch.step(self.cycle):
                key = (node, flit.packet_id)
                if flit.is_head:
                    self._payloads[key] = flit.payload
                if not flit.is_tail:
                    continue
                packet = self._payloads.pop(key)
                exit_link = mesh_ports.get(flit.dst)
                if exit_link is None:
                    packet.delivered_cycle = self.cycle
                    self.delivered.append(packet)
                    delivered_now.append(packet)
                else:
                    direction, link = exit_link
                    packet.hops += 1
                    dx, dy = _DELTA[direction]
                    neighbour = (node[0] + dx, node[1] + dy)
                    # The wire of link k continues into the neighbour's
                    # opposite-direction port of the same link index.
                    entry = self.config.mesh_port(_OPPOSITE[direction], link)
                    arrivals.append((packet, neighbour, entry))
        # Hand packets to neighbours after all routers stepped, so a hop
        # costs at least one registered-link cycle.
        for packet, neighbour, entry in arrivals:
            self._check_node(neighbour)
            self._launch_hop(packet, neighbour, entry)
        self.cycle += 1
        return delivered_now

    def run(self, cycles: int) -> None:
        """Advance the whole mesh the given number of cycles."""
        for _ in range(cycles):
            self.step()

    def occupancy(self) -> int:
        """Flits currently buffered anywhere in the mesh."""
        return sum(switch.occupancy() for switch in self.nodes.values())

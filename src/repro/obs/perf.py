"""Self-profiling performance counters and the cross-run perf ledger.

Two observability layers for the simulator's *own* speed:

**Phase-level counters** — :class:`PerfCounters` attaches to any kernel
(fast, reference, or fleet) through the opt-in ``perf=`` hook, wired
like ``tracer=``/``invariants=``: the unattached hot path pays one
``is None`` branch, and attached runs are bit-identical to unattached
(the counters only read the monotonic clock, never simulation state).
Wall-time and op counts are attributed to the kernel phases (transmit /
refill / arbitrate / commit / inject / trace-drain) by *sampling*: one
cycle in every ``stride`` is timed phase-by-phase, the rest run the
untimed twin, so the counters-on overhead stays a few percent at the
default stride.  Results export onto a :class:`~repro.obs.stats.StatsRegistry`
(:meth:`PerfCounters.to_stats`) and from there to Prometheus text.

**Cross-run ledger** — an append-only JSONL history (``repro.perf/v1``)
so benchmark results accumulate across runs instead of overwriting a
single snapshot.  Every line is self-contained (format tag, timestamp,
config fingerprint, workload, host info, metrics), appends are a single
``write`` + flush, and readers skip torn trailing lines, so concurrent
or crashed writers cannot poison the history.  Entries are keyed by the
order-normalised :func:`config_fingerprint` (two configs that differ
only in ``failed_channels`` ordering fingerprint identically, because
``HiRiseConfig`` normalises at construction) plus a workload label.
:func:`compare_perf` is direction-aware: throughput metrics regress
when they *drop*, overhead fractions when they *rise*, and metrics with
no known direction are ignored rather than misjudged.
"""

import hashlib
import json
import math
import os
import platform
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: Format tag stamped on (and required of) every ledger line.
LEDGER_FORMAT = "repro.perf/v1"

#: Default sampling stride: time one cycle in every 16.
DEFAULT_STRIDE = 16

#: Canonical phase order for reports (phases actually observed may be a
#: subset: e.g. the reference kernel never drains a binary trace).
PHASES = (
    "inject",
    "transmit",
    "refill",
    "arbitrate",
    "commit",
    "trace_drain",
    "step",
)


class PerfCounters:
    """Phase-attributed wall-time and op counts for one kernel run.

    The kernel calls :meth:`add` only on *sampled* cycles (every
    ``stride``-th), so totals are estimates of the sampled share, not of
    the whole run; :meth:`phase_fractions` is the meaningful output —
    the relative split of a cycle's wall-time across phases.  Inject and
    trace-drain are timed on every call (they happen outside the cycle
    loop or rarely enough not to matter).

    Attributes:
        stride: Sampling stride (1 = time every cycle).
        time_ns: Accumulated nanoseconds per phase.
        ops: Accumulated op counts per phase (flits transmitted, grants
            committed, packets injected, ... — phase-dependent).
        cycles_total: Cycles stepped while attached.
        cycles_sampled: Cycles that were phase-timed.
        kernel: Class name of the kernel bound to (set by :meth:`bind`).
        lanes: Batched lane count (1 for the scalar kernels).
    """

    __slots__ = (
        "stride",
        "time_ns",
        "ops",
        "cycles_total",
        "cycles_sampled",
        "kernel",
        "lanes",
    )

    def __init__(self, stride: int = DEFAULT_STRIDE) -> None:
        if stride < 1:
            raise ValueError("perf sampling stride must be >= 1")
        self.stride = int(stride)
        self.time_ns: Dict[str, int] = {}
        self.ops: Dict[str, int] = {}
        self.cycles_total = 0
        self.cycles_sampled = 0
        self.kernel: Optional[str] = None
        self.lanes = 1

    def bind(self, kernel: object) -> None:
        """Record which kernel these counters are attached to."""
        self.kernel = type(kernel).__name__
        self.lanes = int(getattr(kernel, "num_lanes", 1))

    def add(self, phase: str, elapsed_ns: int, ops: int = 0) -> None:
        """Fold one timed phase execution into the counters."""
        self.time_ns[phase] = self.time_ns.get(phase, 0) + elapsed_ns
        if ops:
            self.ops[phase] = self.ops.get(phase, 0) + ops

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def sampled_ns(self) -> int:
        """Total nanoseconds attributed across all phases."""
        return sum(self.time_ns.values())

    def phase_fractions(self) -> Dict[str, float]:
        """Each phase's share of the attributed wall-time (sums to 1)."""
        total = self.sampled_ns
        if not total:
            return {}
        return {
            phase: self.time_ns[phase] / total
            for phase in self._ordered_phases()
        }

    def _ordered_phases(self) -> List[str]:
        known = [phase for phase in PHASES if phase in self.time_ns]
        extra = sorted(set(self.time_ns) - set(PHASES))
        return known + extra

    def summary(self) -> Dict[str, object]:
        """JSON-serialisable snapshot of the counters."""
        return {
            "kernel": self.kernel,
            "lanes": self.lanes,
            "stride": self.stride,
            "cycles_total": self.cycles_total,
            "cycles_sampled": self.cycles_sampled,
            "time_ns": {p: self.time_ns[p] for p in self._ordered_phases()},
            "ops": dict(self.ops),
            "phase_fractions": self.phase_fractions(),
        }

    def to_stats(self, registry, prefix: str = "perf") -> None:
        """Export onto a :class:`~repro.obs.stats.StatsRegistry`."""
        registry.scalar(
            f"{prefix}.stride", "perf sampling stride (cycles)", self.stride
        )
        registry.scalar(
            f"{prefix}.lanes", "batched lanes profiled", self.lanes
        )
        registry.scalar(
            f"{prefix}.cycles_total", "cycles stepped while attached",
            self.cycles_total,
        )
        registry.scalar(
            f"{prefix}.cycles_sampled", "cycles phase-timed",
            self.cycles_sampled,
        )
        fractions = self.phase_fractions()
        for phase in self._ordered_phases():
            registry.scalar(
                f"{prefix}.{phase}.time_ns",
                f"sampled wall-time in {phase} (ns)",
                self.time_ns[phase],
            )
            registry.scalar(
                f"{prefix}.{phase}.ops",
                f"op count attributed to {phase}",
                self.ops.get(phase, 0),
            )
            registry.scalar(
                f"{prefix}.{phase}.frac",
                f"{phase} share of attributed wall-time",
                fractions.get(phase, 0.0),
            )


class PerfCountersFactory:
    """Picklable per-task :class:`PerfCounters` factory for sweeps.

    Mirrors ``BinaryTracerFactory``: carrying a factory (rather than a
    live counters object) through ``SimulationMeasurement`` keeps tasks
    picklable for process pools, and ``fleet_capable`` lets the factory
    ride a ``LanePlan`` through the batched fleet kernel instead of
    forcing a scalar fallback.
    """

    fleet_capable = True

    def __init__(self, stride: int = DEFAULT_STRIDE) -> None:
        if stride < 1:
            raise ValueError("perf sampling stride must be >= 1")
        self.stride = int(stride)

    def __call__(self) -> PerfCounters:
        return PerfCounters(stride=self.stride)

    def __eq__(self, other: object) -> bool:
        return (
            type(other) is PerfCountersFactory and other.stride == self.stride
        )

    def __hash__(self) -> int:
        return hash((PerfCountersFactory, self.stride))

    def __repr__(self) -> str:
        return f"PerfCountersFactory(stride={self.stride})"


# ----------------------------------------------------------------------
# Config fingerprint and host identity
# ----------------------------------------------------------------------
def config_fingerprint(config) -> str:
    """Order-normalised fingerprint of a :class:`HiRiseConfig`.

    Hashes the canonical JSON of every architectural field.  Field
    normalisation (sorted ``failed_channels``, enum coercion) already
    happened in ``HiRiseConfig.__post_init__``, so two equal configs —
    however their inputs were ordered — fingerprint identically.
    """
    port = config.port_config
    canonical = {
        "radix": config.radix,
        "layers": config.layers,
        "channel_multiplicity": config.channel_multiplicity,
        "allocation": config.allocation.value,
        "arbitration": config.arbitration.value,
        "num_classes": config.num_classes,
        "port_config": {
            name: getattr(port, name)
            for name in sorted(getattr(port, "__dataclass_fields__", {}))
        },
        "qos_weights": (
            list(config.qos_weights) if config.qos_weights is not None
            else None
        ),
        "failed_channels": [list(entry) for entry in config.failed_channels],
    }
    digest = hashlib.sha256(
        json.dumps(canonical, sort_keys=True, separators=(",", ":")).encode()
    )
    return digest.hexdigest()[:16]


def host_info() -> Dict[str, object]:
    """Coarse host identity recorded with every ledger entry."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count(),
    }


# ----------------------------------------------------------------------
# The ledger (repro.perf/v1 JSONL)
# ----------------------------------------------------------------------
def make_ledger_entry(
    config,
    workload: str,
    metrics: Dict[str, float],
    host: Optional[Dict[str, object]] = None,
    recorded: Optional[str] = None,
) -> Dict[str, object]:
    """Build one self-contained ``repro.perf/v1`` ledger line."""
    if not workload:
        raise ValueError("a ledger entry needs a non-empty workload label")
    return {
        "format": LEDGER_FORMAT,
        "recorded": recorded or time.strftime(
            "%Y-%m-%dT%H:%M:%S%z", time.localtime()
        ),
        "fingerprint": config_fingerprint(config),
        "workload": workload,
        "host": dict(host) if host is not None else host_info(),
        "metrics": {name: metrics[name] for name in sorted(metrics)},
    }


def append_ledger_entry(path, entry: Dict[str, object]) -> None:
    """Append one entry to the ledger (single write + flush)."""
    if entry.get("format") != LEDGER_FORMAT:
        raise ValueError(
            f"refusing to append non-{LEDGER_FORMAT} entry "
            f"(format={entry.get('format')!r})"
        )
    from repro.util.jsonl import append_jsonl

    append_jsonl(path, entry)


def read_ledger(path) -> List[Dict[str, object]]:
    """Read every well-formed entry from a ledger file.

    Torn or garbled lines (a crashed writer's partial append) are
    skipped by the shared tolerant reader (:mod:`repro.util.jsonl`); a
    line that decodes cleanly but is not a ``repro.perf/v1`` entry
    raises ``ValueError`` — that is a wrong-file mistake, not
    corruption, and silently skipping it would hide it.
    Missing files read as an empty history.
    """
    from repro.util.jsonl import read_jsonl

    entries: List[Dict[str, object]] = []
    for entry in read_jsonl(path, missing_ok=True):
        if not isinstance(entry, dict):
            continue
        if entry.get("format") != LEDGER_FORMAT:
            raise ValueError(
                f"{path}: not a {LEDGER_FORMAT} ledger "
                f"(found format={entry.get('format')!r})"
            )
        entries.append(entry)
    return entries


def filter_entries(
    entries: List[Dict[str, object]],
    fingerprint: Optional[str] = None,
    workload: Optional[str] = None,
) -> List[Dict[str, object]]:
    """Entries matching a config fingerprint and/or workload label."""
    matched = entries
    if fingerprint is not None:
        matched = [e for e in matched if e.get("fingerprint") == fingerprint]
    if workload is not None:
        matched = [e for e in matched if e.get("workload") == workload]
    return matched


# ----------------------------------------------------------------------
# Direction-aware comparison
# ----------------------------------------------------------------------
#: +1 = higher is better, -1 = lower is better.  Metrics not listed here
#: fall back to a suffix heuristic; metrics with no inferable direction
#: are informational and never judged.
METRIC_DIRECTIONS: Dict[str, int] = {
    "cycles_per_sec": 1,
    "normalized": 1,
    "aggregate_lane_cycles_per_sec": 1,
    "fleet_speedup": 1,
    "perf_on_overhead_frac": -1,
    "tracing_on_overhead_frac": -1,
    "tracebin_on_overhead_frac": -1,
    "calibration_ops_per_sec": 0,
}


def metric_direction(name: str) -> int:
    """Direction of a metric: +1 higher-better, -1 lower-better, 0 skip."""
    if name in METRIC_DIRECTIONS:
        return METRIC_DIRECTIONS[name]
    if name.endswith(("overhead_frac", "_overhead", "_seconds", "_ns")):
        return -1
    if name.endswith(("per_sec", "per_s", "_speedup")) or name == "normalized":
        return 1
    return 0


@dataclass(frozen=True)
class PerfRegression:
    """One metric that moved the wrong way past tolerance."""

    metric: str
    current: float
    baseline: float
    change_frac: float
    direction: str  # "higher_is_better" | "lower_is_better"

    def __str__(self) -> str:
        arrow = "dropped" if self.direction == "higher_is_better" else "rose"
        return (
            f"{self.metric} {arrow} {abs(self.change_frac):.1%}: "
            f"{self.baseline:.6g} -> {self.current:.6g}"
        )


def compare_perf(
    current: Dict[str, object],
    baseline: Dict[str, object],
    rel_tol: float = 0.2,
) -> List[PerfRegression]:
    """Direction-aware regression check between two ledger entries.

    Only metrics present in *both* entries are compared, each according
    to its direction: throughput-like metrics regress when they drop by
    more than ``rel_tol`` (relative), overhead-like metrics when they
    rise by more, and direction-less metrics are skipped.  Entries with
    different config fingerprints refuse to compare — a cross-config
    comparison is meaningless, not merely a regression.
    """
    if rel_tol < 0:
        raise ValueError("rel_tol must be non-negative")
    fp_current = current.get("fingerprint")
    fp_baseline = baseline.get("fingerprint")
    if fp_current != fp_baseline:
        raise ValueError(
            "refusing to compare across configs: fingerprint "
            f"{fp_current!r} (current) != {fp_baseline!r} (baseline)"
        )
    current_metrics = current.get("metrics", {})
    baseline_metrics = baseline.get("metrics", {})
    regressions: List[PerfRegression] = []
    for name in sorted(set(current_metrics) & set(baseline_metrics)):
        direction = metric_direction(name)
        if direction == 0:
            continue
        now = current_metrics[name]
        then = baseline_metrics[name]
        if not _comparable(now) or not _comparable(then):
            continue
        scale = max(abs(then), 1e-12)
        change = (now - then) / scale
        if direction > 0 and change < -rel_tol:
            regressions.append(PerfRegression(
                metric=name, current=now, baseline=then,
                change_frac=change, direction="higher_is_better",
            ))
        elif direction < 0 and change > rel_tol:
            regressions.append(PerfRegression(
                metric=name, current=now, baseline=then,
                change_frac=change, direction="lower_is_better",
            ))
    return regressions


def _comparable(value: object) -> bool:
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and math.isfinite(value)
    )


# ----------------------------------------------------------------------
# Micro benchmark (the `repro perf --record` workload)
# ----------------------------------------------------------------------
def _calibration_ops_per_sec(iterations: int = 400_000) -> float:
    """Fixed busy-loop rate, for normalising across hosts."""
    start = time.perf_counter()
    acc = 0
    for i in range(iterations):
        acc = (acc + i) % 1_000_003
    elapsed = time.perf_counter() - start
    return iterations / elapsed if elapsed > 0 else float("inf")


def run_micro_benchmark(
    config,
    cycles: int = 2000,
    trials: int = 2,
    load: float = 1.0,
    traffic_seed: int = 7,
    perf: Optional[PerfCounters] = None,
) -> Tuple[Dict[str, float], Dict[str, object]]:
    """Time a short saturation run of the fast kernel on ``config``.

    Pre-stages uniform-random traffic (so RNG cost stays outside the
    timed region, mirroring ``scripts/bench_kernel.py``), runs
    ``trials`` identical trials with GC paused, and keeps the best.
    Returns ``(metrics, details)``: ``metrics`` is ledger-ready
    (cycles/sec plus the calibration-normalised score), ``details``
    carries run parameters for reporting.
    """
    import gc

    from repro.core.hirise import HiRiseSwitch
    from repro.traffic import UniformRandomTraffic

    if cycles < 1 or trials < 1:
        raise ValueError("cycles and trials must be >= 1")

    calibration = _calibration_ops_per_sec()
    best = float("inf")
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(trials):
            # Fresh traffic per trial: packets are mutable once injected.
            traffic = UniformRandomTraffic(
                config.radix, load=load, seed=traffic_seed
            )
            staged = [
                list(traffic.packets_for_cycle(cycle))
                for cycle in range(cycles)
            ]
            switch = HiRiseSwitch(config, perf=perf)
            inject_many = switch.inject_many
            step = switch.step
            start = time.perf_counter()
            for cycle in range(cycles):
                inject_many(staged[cycle])
                step(cycle)
            best = min(best, time.perf_counter() - start)
    finally:
        if was_enabled:
            gc.enable()

    cycles_per_sec = cycles / best if best > 0 else float("inf")
    metrics = {
        "cycles_per_sec": cycles_per_sec,
        "normalized": cycles_per_sec / calibration,
        "calibration_ops_per_sec": calibration,
    }
    details = {
        "cycles": cycles,
        "trials": trials,
        "load": load,
        "traffic_seed": traffic_seed,
        "best_wall_s": best,
    }
    return metrics, details

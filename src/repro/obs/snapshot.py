"""Point-in-time telemetry snapshots of a switch's internal state.

:func:`telemetry_snapshot` captures, from any :class:`SwitchModel`
(duck-typed, nothing is required beyond ``occupancy()``), the state a
human needs when a run wedges or a probe looks suspicious: per-port
buffered-flit occupancy, every busy path resource with its owner input,
output, and the cycle it was granted, and the output-owner map.  The
drain-stall ``RuntimeError`` raised by :mod:`repro.network.engine`
embeds the rendered snapshot, replacing the old free-form occupancy
string.
"""

import json
from typing import Dict, List, Optional


def telemetry_snapshot(switch, max_ports: Optional[int] = None) -> Dict[str, object]:
    """Capture occupancy and path-ownership telemetry from a switch.

    Args:
        switch: Any switch model.  Hi-Rise kernels (fast and reference)
            contribute busy resources and last-grant cycles; switches
            without that state just report port occupancy.
        max_ports: Optional cap on the number of occupied ports listed
            (the occupied-port *count* is always exact).

    Returns:
        A JSON-serialisable dict with keys ``occupancy`` (total flits
        inside), ``ports`` (occupied ports, flit counts), and — when the
        switch exposes them — ``busy_resources`` (resource key, owner
        input, output, last-grant cycle) and ``outputs`` (owned outputs).
    """
    snapshot: Dict[str, object] = {"occupancy": int(switch.occupancy())}

    ports = getattr(switch, "ports", None)
    if ports:
        occupied = [
            {"port": port.port_id, "flits": occupancy}
            for port in ports
            if (occupancy := port.total_occupancy()) > 0
        ]
        snapshot["occupied_ports"] = len(occupied)
        if max_ports is not None and len(occupied) > max_ports:
            occupied = occupied[:max_ports]
        snapshot["ports"] = occupied

    connections = getattr(switch, "connections", None)
    if isinstance(connections, dict):
        grant_cycle = getattr(switch, "grant_cycle", None) or {}
        config = getattr(switch, "config", None)
        key_table = getattr(config, "resource_key_table", None)
        busy: List[Dict[str, object]] = []
        for input_port in sorted(connections):
            resource, output = connections[input_port]
            if isinstance(resource, int) and key_table is not None:
                key = key_table[resource]
            else:
                key = resource
            busy.append({
                "resource": list(key) if isinstance(key, tuple) else key,
                "input": input_port,
                "output": output,
                "granted_cycle": grant_cycle.get(input_port, -1),
            })
        snapshot["busy_resources"] = busy

    output_owner = getattr(switch, "output_owner", None)
    if output_owner is not None:
        snapshot["outputs"] = {
            str(output): owner
            for output, owner in enumerate(output_owner)
            if owner is not None
        }

    # Live fault state (PR 4): only when faults are actually in play —
    # failed channels, stuck inputs, or an armed fault schedule — so
    # healthy runs snapshot exactly as before.
    if (
        getattr(switch, "failed_channels", None)
        or getattr(switch, "stuck_inputs", None)
        or getattr(switch, "_fault_cursor", None) is not None
    ):
        from repro.faults import describe_fault_state

        snapshot["faults"] = describe_fault_state(switch)

    # Conservation ledger (PR 5): only when an invariant checker is
    # bound, so unchecked runs snapshot exactly as before.
    checker = getattr(switch, "_invariants", None)
    if checker is not None and hasattr(checker, "summary"):
        snapshot["invariants"] = checker.summary()
    return snapshot


def render_snapshot(snapshot: Dict[str, object]) -> str:
    """Compact single-line rendering (embedded in error messages)."""
    return json.dumps(snapshot, separators=(",", ":"), sort_keys=False)

"""Hierarchical simulation statistics registry (gem5-style).

A :class:`StatsRegistry` holds named statistics with dotted hierarchical
names (``switch.layer0.l2lc3.busy_frac``), mirroring gem5's stats
system: scalars, vectors, distributions (streaming moments plus
extrema), and formulas (computed from other stats at dump time).  Every
measurement surface in the repo can export onto one registry —
``SimulationResult.to_stats``, ``ProbedSwitch.to_stats``,
``MemoryLatencyTracker.to_stats`` — so any run can be dumped as one
aligned text block (``dump()``) or one flat/machine-readable dict
(``to_dict()``).

Stats are cheap plain-python objects: the hot simulation loops never
touch the registry; exporters populate it after (or outside) the timed
region.
"""

import math
from typing import Callable, Dict, IO, Iterable, List, Optional, Union

Number = Union[int, float]


class Stat:
    """Base class: a named statistic with a one-line description."""

    __slots__ = ("name", "desc")

    def __init__(self, name: str, desc: str = "") -> None:
        if not name:
            raise ValueError("a stat needs a non-empty name")
        self.name = name
        self.desc = desc

    def value(self):
        """The current value (shape depends on the concrete stat)."""
        raise NotImplementedError


class ScalarStat(Stat):
    """A single number (count, fraction, rate)."""

    __slots__ = ("_value",)

    def __init__(self, name: str, desc: str = "", value: Number = 0) -> None:
        super().__init__(name, desc)
        self._value = value

    def set(self, value: Number) -> "ScalarStat":
        """Assign the scalar's value; returns self for chaining."""
        self._value = value
        return self

    def add(self, delta: Number = 1) -> "ScalarStat":
        """Increment the scalar by ``delta`` (default 1)."""
        self._value += delta
        return self

    def value(self) -> Number:
        return self._value


class VectorStat(Stat):
    """A dense vector of numbers indexed ``0 .. size-1``."""

    __slots__ = ("_values",)

    def __init__(self, name: str, size: int, desc: str = "") -> None:
        super().__init__(name, desc)
        if size < 1:
            raise ValueError("a vector stat needs at least one element")
        self._values: List[Number] = [0] * size

    def __len__(self) -> int:
        return len(self._values)

    def set(self, index: int, value: Number) -> "VectorStat":
        """Assign one element; returns self for chaining."""
        self._values[index] = value
        return self

    def add(self, index: int, delta: Number = 1) -> "VectorStat":
        """Increment one element by ``delta`` (default 1)."""
        self._values[index] += delta
        return self

    def load(self, values: Iterable[Number]) -> "VectorStat":
        """Bulk-assign from an iterable (must match the vector size)."""
        values = list(values)
        if len(values) != len(self._values):
            raise ValueError(
                f"{self.name}: expected {len(self._values)} values, "
                f"got {len(values)}"
            )
        self._values = values
        return self

    def total(self) -> Number:
        """Sum over all elements."""
        return sum(self._values)

    def value(self) -> List[Number]:
        return list(self._values)


class DistributionStat(Stat):
    """Streaming moments (count/sum/sum-of-squares) plus extrema."""

    __slots__ = ("count", "total", "sumsq", "minimum", "maximum")

    def __init__(self, name: str, desc: str = "") -> None:
        super().__init__(name, desc)
        self.count = 0
        self.total = 0.0
        self.sumsq = 0.0
        self.minimum: Optional[Number] = None
        self.maximum: Optional[Number] = None

    def add(self, sample: Number) -> "DistributionStat":
        """Fold one sample into the streaming moments and extrema."""
        self.count += 1
        self.total += sample
        self.sumsq += sample * sample
        if self.minimum is None or sample < self.minimum:
            self.minimum = sample
        if self.maximum is None or sample > self.maximum:
            self.maximum = sample
        return self

    def add_samples(self, samples: Iterable[Number]) -> "DistributionStat":
        """Fold in every sample from an iterable."""
        for sample in samples:
            self.add(sample)
        return self

    def merge_moments(
        self,
        count: int,
        total: Number,
        sumsq: Number,
        minimum: Optional[Number] = None,
        maximum: Optional[Number] = None,
    ) -> "DistributionStat":
        """Fold in already-accumulated streaming moments.

        This is how exact streaming accumulators (e.g.
        ``SimulationResult.latency_sum``/``latency_sumsq``) migrate onto
        the registry without replaying every sample.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        self.count += count
        self.total += total
        self.sumsq += sumsq
        if minimum is not None and (self.minimum is None or minimum < self.minimum):
            self.minimum = minimum
        if maximum is not None and (self.maximum is None or maximum > self.maximum):
            self.maximum = maximum
        return self

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    @property
    def stdev(self) -> float:
        if not self.count:
            return float("nan")
        mean = self.total / self.count
        variance = max(self.sumsq / self.count - mean * mean, 0.0)
        return math.sqrt(variance)

    def value(self) -> Dict[str, Number]:
        return {
            "count": self.count,
            "mean": self.mean,
            "stdev": self.stdev,
            "min": self.minimum if self.minimum is not None else float("nan"),
            "max": self.maximum if self.maximum is not None else float("nan"),
        }


class FormulaStat(Stat):
    """A value derived from other stats, evaluated at dump time."""

    __slots__ = ("_fn",)

    def __init__(
        self,
        name: str,
        fn: Callable[["StatsRegistry"], Number],
        desc: str = "",
    ) -> None:
        super().__init__(name, desc)
        self._fn = fn

    def evaluate(self, registry: "StatsRegistry") -> Number:
        """Compute the formula against the registry's current values."""
        return self._fn(registry)

    def value(self):  # pragma: no cover - formulas evaluate via registry
        raise TypeError("formula stats evaluate through their registry")


class StatsRegistry:
    """An ordered, hierarchically named collection of statistics.

    Names are dotted paths (``sim.latency``, ``switch.layer0.int3.busy_frac``);
    registration order is preserved in dumps and duplicate names are
    rejected, so two exporters cannot silently clobber each other.
    """

    def __init__(self) -> None:
        self._stats: Dict[str, Stat] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def _register(self, stat: Stat) -> Stat:
        if stat.name in self._stats:
            raise ValueError(f"stat {stat.name!r} already registered")
        self._stats[stat.name] = stat
        return stat

    def scalar(self, name: str, desc: str = "",
               value: Number = 0) -> ScalarStat:
        """Register and return a new :class:`ScalarStat`."""
        return self._register(ScalarStat(name, desc, value))

    def vector(self, name: str, size: int, desc: str = "") -> VectorStat:
        """Register and return a new :class:`VectorStat` of ``size``."""
        return self._register(VectorStat(name, size, desc))

    def distribution(self, name: str, desc: str = "") -> DistributionStat:
        """Register and return a new :class:`DistributionStat`."""
        return self._register(DistributionStat(name, desc))

    def formula(self, name: str, fn: Callable[["StatsRegistry"], Number],
                desc: str = "") -> FormulaStat:
        """Register a :class:`FormulaStat` computing ``fn(registry)``."""
        return self._register(FormulaStat(name, fn, desc))

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._stats

    def __getitem__(self, name: str) -> Stat:
        return self._stats[name]

    def __len__(self) -> int:
        return len(self._stats)

    def names(self) -> List[str]:
        """Registered stat names, in registration order."""
        return list(self._stats)

    def get(self, name: str) -> Number:
        """Evaluated numeric value of a scalar or formula stat."""
        stat = self._stats[name]
        if isinstance(stat, FormulaStat):
            return stat.evaluate(self)
        if isinstance(stat, ScalarStat):
            return stat.value()
        raise TypeError(f"{name!r} is not a scalar-valued stat")

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Flat ``name -> value`` dict (JSON-serialisable)."""
        result: Dict[str, object] = {}
        for name, stat in self._stats.items():
            if isinstance(stat, FormulaStat):
                result[name] = stat.evaluate(self)
            else:
                result[name] = stat.value()
        return result

    def dump(self, file: Optional[IO[str]] = None) -> str:
        """gem5 ``stats.txt``-style aligned text block.

        One line per leaf value: ``name  value  # description``; vectors
        expand to ``name[i]`` plus ``name.total``, distributions to
        ``name.count/.mean/.stdev/.min/.max``.
        """
        lines = ["---------- Begin Simulation Statistics ----------"]
        for name, stat in self._stats.items():
            if isinstance(stat, ScalarStat):
                lines.append(_format_line(name, stat.value(), stat.desc))
            elif isinstance(stat, FormulaStat):
                lines.append(_format_line(name, stat.evaluate(self), stat.desc))
            elif isinstance(stat, VectorStat):
                values = stat.value()
                for index, value in enumerate(values):
                    lines.append(_format_line(f"{name}[{index}]", value, ""))
                lines.append(
                    _format_line(f"{name}.total", sum(values), stat.desc)
                )
            elif isinstance(stat, DistributionStat):
                for leaf, value in stat.value().items():
                    desc = stat.desc if leaf == "count" else ""
                    lines.append(_format_line(f"{name}.{leaf}", value, desc))
        lines.append("---------- End Simulation Statistics ----------")
        text = "\n".join(lines)
        if file is not None:
            file.write(text + "\n")
        return text


def _format_line(name: str, value: Number, desc: str) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            rendered = "nan"
        elif value == int(value) and abs(value) < 1e15:
            rendered = str(int(value))
        else:
            rendered = f"{value:.6g}"
    else:
        rendered = str(value)
    line = f"{name:<44} {rendered:>14}"
    if desc:
        line += f"  # {desc}"
    return line

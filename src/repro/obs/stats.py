"""Hierarchical simulation statistics registry (gem5-style).

A :class:`StatsRegistry` holds named statistics with dotted hierarchical
names (``switch.layer0.l2lc3.busy_frac``), mirroring gem5's stats
system: scalars, vectors, distributions (streaming moments plus
extrema), and formulas (computed from other stats at dump time).  Every
measurement surface in the repo can export onto one registry —
``SimulationResult.to_stats``, ``ProbedSwitch.to_stats``,
``MemoryLatencyTracker.to_stats`` — so any run can be dumped as one
aligned text block (``dump()``) or one flat/machine-readable dict
(``to_dict()``).

Stats are cheap plain-python objects: the hot simulation loops never
touch the registry; exporters populate it after (or outside) the timed
region.
"""

import math
import re
from typing import Callable, Dict, IO, Iterable, List, Optional, Union

Number = Union[int, float]


class Stat:
    """Base class: a named statistic with a one-line description."""

    __slots__ = ("name", "desc")

    def __init__(self, name: str, desc: str = "") -> None:
        if not name:
            raise ValueError("a stat needs a non-empty name")
        self.name = name
        self.desc = desc

    def value(self):
        """The current value (shape depends on the concrete stat)."""
        raise NotImplementedError


class ScalarStat(Stat):
    """A single number (count, fraction, rate)."""

    __slots__ = ("_value",)

    def __init__(self, name: str, desc: str = "", value: Number = 0) -> None:
        super().__init__(name, desc)
        self._value = value

    def set(self, value: Number) -> "ScalarStat":
        """Assign the scalar's value; returns self for chaining."""
        self._value = value
        return self

    def add(self, delta: Number = 1) -> "ScalarStat":
        """Increment the scalar by ``delta`` (default 1)."""
        self._value += delta
        return self

    def value(self) -> Number:
        return self._value


class VectorStat(Stat):
    """A dense vector of numbers indexed ``0 .. size-1``."""

    __slots__ = ("_values",)

    def __init__(self, name: str, size: int, desc: str = "") -> None:
        super().__init__(name, desc)
        if size < 1:
            raise ValueError("a vector stat needs at least one element")
        self._values: List[Number] = [0] * size

    def __len__(self) -> int:
        return len(self._values)

    def set(self, index: int, value: Number) -> "VectorStat":
        """Assign one element; returns self for chaining."""
        self._values[index] = value
        return self

    def add(self, index: int, delta: Number = 1) -> "VectorStat":
        """Increment one element by ``delta`` (default 1)."""
        self._values[index] += delta
        return self

    def load(self, values: Iterable[Number]) -> "VectorStat":
        """Bulk-assign from an iterable (must match the vector size)."""
        values = list(values)
        if len(values) != len(self._values):
            raise ValueError(
                f"{self.name}: expected {len(self._values)} values, "
                f"got {len(values)}"
            )
        self._values = values
        return self

    def total(self) -> Number:
        """Sum over all elements."""
        return sum(self._values)

    def value(self) -> List[Number]:
        return list(self._values)


class DistributionStat(Stat):
    """Streaming moments (count/sum/sum-of-squares) plus extrema."""

    __slots__ = ("count", "total", "sumsq", "minimum", "maximum")

    def __init__(self, name: str, desc: str = "") -> None:
        super().__init__(name, desc)
        self.count = 0
        self.total = 0.0
        self.sumsq = 0.0
        self.minimum: Optional[Number] = None
        self.maximum: Optional[Number] = None

    def add(self, sample: Number) -> "DistributionStat":
        """Fold one sample into the streaming moments and extrema."""
        self.count += 1
        self.total += sample
        self.sumsq += sample * sample
        if self.minimum is None or sample < self.minimum:
            self.minimum = sample
        if self.maximum is None or sample > self.maximum:
            self.maximum = sample
        return self

    def add_samples(self, samples: Iterable[Number]) -> "DistributionStat":
        """Fold in every sample from an iterable."""
        for sample in samples:
            self.add(sample)
        return self

    def merge_moments(
        self,
        count: int,
        total: Number,
        sumsq: Number,
        minimum: Optional[Number] = None,
        maximum: Optional[Number] = None,
    ) -> "DistributionStat":
        """Fold in already-accumulated streaming moments.

        This is how exact streaming accumulators (e.g.
        ``SimulationResult.latency_sum``/``latency_sumsq``) migrate onto
        the registry without replaying every sample.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        self.count += count
        self.total += total
        self.sumsq += sumsq
        if minimum is not None and (self.minimum is None or minimum < self.minimum):
            self.minimum = minimum
        if maximum is not None and (self.maximum is None or maximum > self.maximum):
            self.maximum = maximum
        return self

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    @property
    def stdev(self) -> float:
        if not self.count:
            return float("nan")
        mean = self.total / self.count
        variance = max(self.sumsq / self.count - mean * mean, 0.0)
        return math.sqrt(variance)

    def value(self) -> Dict[str, Number]:
        return {
            "count": self.count,
            "mean": self.mean,
            "stdev": self.stdev,
            "min": self.minimum if self.minimum is not None else float("nan"),
            "max": self.maximum if self.maximum is not None else float("nan"),
        }


class FormulaStat(Stat):
    """A value derived from other stats, evaluated at dump time."""

    __slots__ = ("_fn",)

    def __init__(
        self,
        name: str,
        fn: Callable[["StatsRegistry"], Number],
        desc: str = "",
    ) -> None:
        super().__init__(name, desc)
        self._fn = fn

    def evaluate(self, registry: "StatsRegistry") -> Number:
        """Compute the formula against the registry's current values."""
        return self._fn(registry)

    def value(self):  # pragma: no cover - formulas evaluate via registry
        raise TypeError("formula stats evaluate through their registry")


class StatsRegistry:
    """An ordered, hierarchically named collection of statistics.

    Names are dotted paths (``sim.latency``, ``switch.layer0.int3.busy_frac``);
    registration order is preserved in dumps and duplicate names are
    rejected, so two exporters cannot silently clobber each other.
    """

    def __init__(self) -> None:
        self._stats: Dict[str, Stat] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def _register(self, stat: Stat) -> Stat:
        if stat.name in self._stats:
            raise ValueError(f"stat {stat.name!r} already registered")
        self._stats[stat.name] = stat
        return stat

    def scalar(self, name: str, desc: str = "",
               value: Number = 0) -> ScalarStat:
        """Register and return a new :class:`ScalarStat`."""
        return self._register(ScalarStat(name, desc, value))

    def vector(self, name: str, size: int, desc: str = "") -> VectorStat:
        """Register and return a new :class:`VectorStat` of ``size``."""
        return self._register(VectorStat(name, size, desc))

    def distribution(self, name: str, desc: str = "") -> DistributionStat:
        """Register and return a new :class:`DistributionStat`."""
        return self._register(DistributionStat(name, desc))

    def formula(self, name: str, fn: Callable[["StatsRegistry"], Number],
                desc: str = "") -> FormulaStat:
        """Register a :class:`FormulaStat` computing ``fn(registry)``."""
        return self._register(FormulaStat(name, fn, desc))

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._stats

    def __getitem__(self, name: str) -> Stat:
        return self._stats[name]

    def __len__(self) -> int:
        return len(self._stats)

    def names(self) -> List[str]:
        """Registered stat names, in registration order."""
        return list(self._stats)

    def get(self, name: str) -> Number:
        """Evaluated numeric value of a scalar or formula stat."""
        stat = self._stats[name]
        if isinstance(stat, FormulaStat):
            return stat.evaluate(self)
        if isinstance(stat, ScalarStat):
            return stat.value()
        raise TypeError(f"{name!r} is not a scalar-valued stat")

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Flat ``name -> value`` dict (JSON-serialisable)."""
        result: Dict[str, object] = {}
        for name, stat in self._stats.items():
            if isinstance(stat, FormulaStat):
                result[name] = stat.evaluate(self)
            else:
                result[name] = stat.value()
        return result

    def dump(self, file: Optional[IO[str]] = None) -> str:
        """gem5 ``stats.txt``-style aligned text block.

        One line per leaf value: ``name  value  # description``; vectors
        expand to ``name[i]`` plus ``name.total``, distributions to
        ``name.count/.mean/.stdev/.min/.max``.
        """
        lines = ["---------- Begin Simulation Statistics ----------"]
        for name, stat in self._stats.items():
            if isinstance(stat, ScalarStat):
                lines.append(_format_line(name, stat.value(), stat.desc))
            elif isinstance(stat, FormulaStat):
                lines.append(_format_line(name, stat.evaluate(self), stat.desc))
            elif isinstance(stat, VectorStat):
                values = stat.value()
                for index, value in enumerate(values):
                    lines.append(_format_line(f"{name}[{index}]", value, ""))
                lines.append(
                    _format_line(f"{name}.total", sum(values), stat.desc)
                )
            elif isinstance(stat, DistributionStat):
                for leaf, value in stat.value().items():
                    desc = stat.desc if leaf == "count" else ""
                    lines.append(_format_line(f"{name}.{leaf}", value, desc))
        lines.append("---------- End Simulation Statistics ----------")
        text = "\n".join(lines)
        if file is not None:
            file.write(text + "\n")
        return text

    def to_prometheus(self, namespace: str = "repro") -> str:
        """Prometheus text-format exposition of every registered stat."""
        return render_prometheus(self, namespace=namespace)


# ----------------------------------------------------------------------
# Prometheus text-format exposition (version 0.0.4)
# ----------------------------------------------------------------------
#: Content type a scrape endpoint should serve this text under.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_METRIC_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")
_INVALID_METRIC_CHAR_RE = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str, namespace: str = "") -> str:
    """Coerce a dotted stat name into a legal Prometheus metric name.

    Dots (and every other illegal character) become underscores, runs
    collapse, and a leading digit gets an underscore prefix — so
    ``sim.latency.p99`` under namespace ``repro`` renders as
    ``repro_sim_latency_p99``.
    """
    if namespace:
        name = f"{namespace}.{name}"
    sanitized = _INVALID_METRIC_CHAR_RE.sub("_", name)
    sanitized = re.sub(r"__+", "_", sanitized).strip("_") or "metric"
    if sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def escape_label_value(value: object) -> str:
    """Escape a label value per the text-format rules."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def escape_help(text: str) -> str:
    """Escape a HELP string (backslash and newline only)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def format_metric_value(value: Number) -> str:
    """Render a sample value (NaN/±Inf use the Prometheus spellings)."""
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        return repr(value)
    return str(value)


def render_prometheus(registry: StatsRegistry, namespace: str = "repro") -> str:
    """Render a :class:`StatsRegistry` as Prometheus exposition text.

    Scalars and formulas become gauges; vectors become one gauge family
    with an ``index`` label; distributions become a summary family
    (``_sum``/``_count``) plus ``_min``/``_max`` gauges.  Sanitized
    names that collide get a numeric suffix so no family is emitted
    twice (which scrapers reject).
    """
    lines: List[str] = []
    seen: Dict[str, int] = {}

    def family(name: str) -> str:
        base = sanitize_metric_name(name, namespace)
        count = seen.get(base, 0)
        seen[base] = count + 1
        return base if count == 0 else f"{base}_{count + 1}"

    def gauge(metric: str, desc: str, samples: List[str]) -> None:
        if desc:
            lines.append(f"# HELP {metric} {escape_help(desc)}")
        lines.append(f"# TYPE {metric} gauge")
        lines.extend(samples)

    for name in registry.names():
        stat = registry[name]
        metric = family(name)
        if isinstance(stat, ScalarStat):
            gauge(metric, stat.desc,
                  [f"{metric} {format_metric_value(stat.value())}"])
        elif isinstance(stat, FormulaStat):
            gauge(metric, stat.desc,
                  [f"{metric} {format_metric_value(stat.evaluate(registry))}"])
        elif isinstance(stat, VectorStat):
            gauge(metric, stat.desc, [
                f'{metric}{{index="{index}"}} {format_metric_value(value)}'
                for index, value in enumerate(stat.value())
            ])
        elif isinstance(stat, DistributionStat):
            if stat.desc:
                lines.append(f"# HELP {metric} {escape_help(stat.desc)}")
            lines.append(f"# TYPE {metric} summary")
            lines.append(
                f"{metric}_sum {format_metric_value(float(stat.total))}"
            )
            lines.append(f"{metric}_count {stat.count}")
            summary = stat.value()
            for leaf in ("min", "max"):
                leaf_metric = family(f"{name}.{leaf}")
                gauge(leaf_metric, "", [
                    f"{leaf_metric} {format_metric_value(summary[leaf])}"
                ])
    return "\n".join(lines) + "\n" if lines else ""


def validate_prometheus(text: str) -> int:
    """Validate exposition text line-grammar; returns the sample count.

    Checks metric/label name legality, value parseability, TYPE
    validity, and that no family is declared twice.  Raises
    ``ValueError`` on the first violation — the format-validity gate
    for everything the repo exposes.
    """
    sample_re = re.compile(
        r"(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
        r"(?:\{(?P<labels>[^{}]*)\})?"
        r" (?P<value>\S+)"
        r"(?: (?P<timestamp>-?\d+))?\Z"
    )
    label_re = re.compile(
        r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"\Z'
    )
    declared_types: Dict[str, str] = {}
    samples = 0
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) < 3 or not _METRIC_NAME_RE.match(parts[2]):
                raise ValueError(f"line {lineno}: bad metric name: {line!r}")
            if parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped"
                ):
                    raise ValueError(f"line {lineno}: bad TYPE: {line!r}")
                if parts[2] in declared_types:
                    raise ValueError(
                        f"line {lineno}: duplicate TYPE for {parts[2]}"
                    )
                declared_types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue  # plain comment
        match = sample_re.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: unparseable sample: {line!r}")
        labels = match.group("labels")
        if labels:
            for pair in _split_label_pairs(labels):
                if not label_re.match(pair):
                    raise ValueError(
                        f"line {lineno}: bad label pair: {pair!r}"
                    )
        value = match.group("value")
        if value not in ("NaN", "+Inf", "-Inf"):
            try:
                float(value)
            except ValueError:
                raise ValueError(
                    f"line {lineno}: bad sample value: {value!r}"
                ) from None
        samples += 1
    return samples


def _split_label_pairs(labels: str) -> List[str]:
    """Split ``a="x",b="y"`` on commas outside quoted values."""
    pairs: List[str] = []
    current: List[str] = []
    in_quotes = False
    escaped = False
    for char in labels:
        if escaped:
            current.append(char)
            escaped = False
        elif char == "\\":
            current.append(char)
            escaped = True
        elif char == '"':
            current.append(char)
            in_quotes = not in_quotes
        elif char == "," and not in_quotes:
            pairs.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        pairs.append("".join(current))
    return pairs


def _format_line(name: str, value: Number, desc: str) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            rendered = "nan"
        elif value == int(value) and abs(value) < 1e15:
            rendered = str(int(value))
        else:
            rendered = f"{value:.6g}"
    else:
        rendered = str(value)
    line = f"{name:<44} {rendered:>14}"
    if desc:
        line += f"  # {desc}"
    return line

"""Observability: cycle-level tracing, stats registry, run telemetry.

Three layers, all opt-in and all zero-cost when unused:

* :mod:`repro.obs.trace` — :class:`SwitchTracer` records cycle-level
  arbitration/datapath events from a switch built with ``tracer=``;
  exports JSONL and Chrome ``trace_event`` timelines.
* :mod:`repro.obs.tracebin` — :class:`BinaryTracer`, the binary
  columnar capture buffer (preallocated int32/int64 columns,
  stride-doubling decimation, ``repro.trace_bin/v1`` files), its
  picklable :class:`BinaryTracerFactory`, and :class:`FleetTracer`,
  the multi-lane buffer the batched fleet kernel emits into natively.
  JSONL and Chrome timelines are export views of the binary columns.
* :mod:`repro.obs.stats` — a gem5-style :class:`StatsRegistry` of
  hierarchically named scalar/vector/distribution/formula statistics
  that simulation results, probes, and the many-core trackers export
  onto (``.to_stats(registry)``).
* :mod:`repro.obs.telemetry` — :class:`SweepTelemetry` heartbeats for
  ``run_sweep``/``replicate`` workers (progress, wall-clock, cycles/s,
  fleet lane occupancy, executor failure counts).
* :mod:`repro.obs.perf` — :class:`PerfCounters` phase-level
  self-profiling for all three kernels (``perf=`` hook, sampled
  monotonic timing), plus the append-only ``repro.perf/v1`` cross-run
  ledger and :func:`compare_perf` direction-aware regression checks.
* :mod:`repro.obs.snapshot` — point-in-time occupancy/ownership
  snapshots (embedded in drain-stall errors).
* :mod:`repro.obs.analyze` — single-pass, bounded-memory
  :class:`TraceAnalyzer` turning trace streams into audited
  :class:`AuditReport` fairness/starvation/utilization reports, plus
  baseline diffing (:func:`compare_audits`) and JSONL inspection
  helpers.
"""

from repro.obs.analyze import (
    AUDIT_SCHEMA,
    Anomaly,
    AuditRegression,
    AuditReport,
    Epoch,
    TraceAnalyzer,
    analyze_columns,
    analyze_jsonl,
    analyze_records,
    analyze_tracebin,
    analyze_tracer,
    compare_audits,
    filter_records,
    iter_jsonl,
    resource_label,
    summarize_records,
    validate_audit_summary,
)
from repro.obs.perf import (
    LEDGER_FORMAT,
    PerfCounters,
    PerfCountersFactory,
    PerfRegression,
    append_ledger_entry,
    compare_perf,
    config_fingerprint,
    filter_entries,
    host_info,
    make_ledger_entry,
    read_ledger,
    run_micro_benchmark,
)
from repro.obs.snapshot import render_snapshot, telemetry_snapshot
from repro.obs.stats import (
    PROMETHEUS_CONTENT_TYPE,
    DistributionStat,
    FormulaStat,
    ScalarStat,
    Stat,
    StatsRegistry,
    VectorStat,
    escape_label_value,
    render_prometheus,
    sanitize_metric_name,
    validate_prometheus,
)
from repro.obs.telemetry import TELEMETRY_FORMAT, Heartbeat, SweepTelemetry
from repro.obs.trace import (
    EVENT_FIELDS,
    EVENT_NAMES,
    SwitchTracer,
    iter_chrome_events,
    validate_chrome,
    validate_chrome_path,
    validate_jsonl_path,
    validate_records,
    write_chrome_stream,
)
from repro.obs.tracebin import (
    BinaryTracer,
    BinaryTracerFactory,
    BinaryTraceWriter,
    FleetTracer,
    TraceColumns,
    read_tracebin,
    sniff_tracebin,
)

__all__ = [
    "AUDIT_SCHEMA",
    "Anomaly",
    "AuditRegression",
    "AuditReport",
    "DistributionStat",
    "Epoch",
    "TraceAnalyzer",
    "analyze_columns",
    "analyze_jsonl",
    "analyze_records",
    "analyze_tracebin",
    "analyze_tracer",
    "compare_audits",
    "filter_records",
    "iter_jsonl",
    "resource_label",
    "summarize_records",
    "validate_audit_summary",
    "BinaryTraceWriter",
    "BinaryTracer",
    "BinaryTracerFactory",
    "EVENT_FIELDS",
    "EVENT_NAMES",
    "FleetTracer",
    "FormulaStat",
    "Heartbeat",
    "LEDGER_FORMAT",
    "PROMETHEUS_CONTENT_TYPE",
    "PerfCounters",
    "PerfCountersFactory",
    "PerfRegression",
    "ScalarStat",
    "Stat",
    "StatsRegistry",
    "SweepTelemetry",
    "SwitchTracer",
    "TELEMETRY_FORMAT",
    "TraceColumns",
    "VectorStat",
    "append_ledger_entry",
    "compare_perf",
    "config_fingerprint",
    "escape_label_value",
    "filter_entries",
    "host_info",
    "iter_chrome_events",
    "make_ledger_entry",
    "read_ledger",
    "read_tracebin",
    "render_prometheus",
    "render_snapshot",
    "run_micro_benchmark",
    "sanitize_metric_name",
    "sniff_tracebin",
    "telemetry_snapshot",
    "validate_chrome",
    "validate_chrome_path",
    "validate_jsonl_path",
    "validate_prometheus",
    "validate_records",
    "write_chrome_stream",
]

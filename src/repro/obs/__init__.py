"""Observability: cycle-level tracing, stats registry, run telemetry.

Three layers, all opt-in and all zero-cost when unused:

* :mod:`repro.obs.trace` — :class:`SwitchTracer` records cycle-level
  arbitration/datapath events from a switch built with ``tracer=``;
  exports JSONL and Chrome ``trace_event`` timelines.
* :mod:`repro.obs.tracebin` — :class:`BinaryTracer`, the binary
  columnar capture buffer (preallocated int32/int64 columns,
  stride-doubling decimation, ``repro.trace_bin/v1`` files), its
  picklable :class:`BinaryTracerFactory`, and :class:`FleetTracer`,
  the multi-lane buffer the batched fleet kernel emits into natively.
  JSONL and Chrome timelines are export views of the binary columns.
* :mod:`repro.obs.stats` — a gem5-style :class:`StatsRegistry` of
  hierarchically named scalar/vector/distribution/formula statistics
  that simulation results, probes, and the many-core trackers export
  onto (``.to_stats(registry)``).
* :mod:`repro.obs.telemetry` — :class:`SweepTelemetry` heartbeats for
  ``run_sweep``/``replicate`` workers (progress, wall-clock, cycles/s).
* :mod:`repro.obs.snapshot` — point-in-time occupancy/ownership
  snapshots (embedded in drain-stall errors).
* :mod:`repro.obs.analyze` — single-pass, bounded-memory
  :class:`TraceAnalyzer` turning trace streams into audited
  :class:`AuditReport` fairness/starvation/utilization reports, plus
  baseline diffing (:func:`compare_audits`) and JSONL inspection
  helpers.
"""

from repro.obs.analyze import (
    AUDIT_SCHEMA,
    Anomaly,
    AuditRegression,
    AuditReport,
    Epoch,
    TraceAnalyzer,
    analyze_columns,
    analyze_jsonl,
    analyze_records,
    analyze_tracebin,
    analyze_tracer,
    compare_audits,
    filter_records,
    iter_jsonl,
    resource_label,
    summarize_records,
    validate_audit_summary,
)
from repro.obs.snapshot import render_snapshot, telemetry_snapshot
from repro.obs.stats import (
    DistributionStat,
    FormulaStat,
    ScalarStat,
    Stat,
    StatsRegistry,
    VectorStat,
)
from repro.obs.telemetry import Heartbeat, SweepTelemetry
from repro.obs.trace import (
    EVENT_FIELDS,
    EVENT_NAMES,
    SwitchTracer,
    iter_chrome_events,
    validate_chrome,
    validate_chrome_path,
    validate_jsonl_path,
    validate_records,
    write_chrome_stream,
)
from repro.obs.tracebin import (
    BinaryTracer,
    BinaryTracerFactory,
    BinaryTraceWriter,
    FleetTracer,
    TraceColumns,
    read_tracebin,
    sniff_tracebin,
)

__all__ = [
    "AUDIT_SCHEMA",
    "Anomaly",
    "AuditRegression",
    "AuditReport",
    "DistributionStat",
    "Epoch",
    "TraceAnalyzer",
    "analyze_columns",
    "analyze_jsonl",
    "analyze_records",
    "analyze_tracebin",
    "analyze_tracer",
    "compare_audits",
    "filter_records",
    "iter_jsonl",
    "resource_label",
    "summarize_records",
    "validate_audit_summary",
    "BinaryTraceWriter",
    "BinaryTracer",
    "BinaryTracerFactory",
    "EVENT_FIELDS",
    "EVENT_NAMES",
    "FleetTracer",
    "FormulaStat",
    "Heartbeat",
    "ScalarStat",
    "Stat",
    "StatsRegistry",
    "SweepTelemetry",
    "SwitchTracer",
    "TraceColumns",
    "VectorStat",
    "iter_chrome_events",
    "read_tracebin",
    "render_snapshot",
    "sniff_tracebin",
    "telemetry_snapshot",
    "validate_chrome",
    "validate_chrome_path",
    "validate_jsonl_path",
    "validate_records",
    "write_chrome_stream",
]

"""Sweep- and run-level telemetry: heartbeats from sweep workers.

Parameter sweeps and replications used to run silently until the whole
grid finished.  A :class:`SweepTelemetry` instance passed to
``run_sweep(..., telemetry=...)`` / ``replicate(..., telemetry=...)``
receives one :class:`Heartbeat` per completed (point, replication) task
— in completion order, from the worker pool or the serial loop alike —
and aggregates progress, wall-clock, and simulated-cycle throughput.

The heartbeat channel is deliberately one-way and in-process: workers
return ``(value, wall_seconds)`` and the executor in
:mod:`repro.harness.parallel` reports completions as futures resolve, so
telemetry never perturbs task results (sweeps stay bit-identical with
and without it, for any worker count).
"""

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

#: Schema version stamped into :meth:`SweepTelemetry.snapshot`.
TELEMETRY_FORMAT = "repro.telemetry/v1"


@dataclass(frozen=True)
class Heartbeat:
    """One completed sweep task, as reported over the heartbeat channel.

    Attributes:
        index: Task index in submission order (grid-major, then seed).
        total: Total tasks in the sweep.
        parameters: The grid point's parameter dictionary.
        seed: The seed the task ran with.
        value: The measurement's scalar result.
        wall_s: Wall-clock seconds the measurement took in its worker.
        lanes: Batched lanes the task shared a fleet dispatch with (1
            for scalar tasks) — the divisor behind its effective wall
            time, and the sweep's fleet-occupancy signal.
    """

    index: int
    total: int
    parameters: Dict[str, object]
    seed: int
    value: float
    wall_s: float
    lanes: int = 1

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (inverse of :meth:`from_dict`)."""
        return {
            "index": self.index,
            "total": self.total,
            "parameters": dict(self.parameters),
            "seed": self.seed,
            "value": self.value,
            "wall_s": self.wall_s,
            "lanes": self.lanes,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Heartbeat":
        """Rebuild a heartbeat from its :meth:`to_dict` form.

        ``lanes`` defaults to 1 so pre-versioned archives still load.
        """
        return cls(
            index=data["index"],
            total=data["total"],
            parameters=dict(data["parameters"]),
            seed=data["seed"],
            value=data["value"],
            wall_s=data["wall_s"],
            lanes=data.get("lanes", 1),
        )


@dataclass
class SweepTelemetry:
    """Aggregates worker heartbeats for one sweep or replication run.

    Args:
        cycles_per_task: Optional simulated-cycle count of one task
            (warm-up + measure + drain as appropriate).  When given,
            aggregate simulated cycles/s is reported.
        emit: Optional sink for one progress line per heartbeat (e.g.
            ``print``); ``None`` keeps telemetry silent but queryable.
    """

    cycles_per_task: Optional[int] = None
    emit: Optional[Callable[[str], None]] = None
    heartbeats: List[Heartbeat] = field(default_factory=list)
    failures: Dict[str, int] = field(default_factory=dict)
    _started_at: Optional[float] = field(default=None, repr=False)
    _total: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.cycles_per_task is not None and self.cycles_per_task < 1:
            raise ValueError("cycles_per_task must be >= 1 when given")

    # ------------------------------------------------------------------
    # Channel interface (called by repro.harness.parallel)
    # ------------------------------------------------------------------
    def start(self, total_tasks: int) -> None:
        """Open the channel for a run of ``total_tasks`` tasks.

        Zero-task sweeps are legal (an empty grid): the channel opens,
        every rate/ETA aggregate stays at its defined empty value, and
        :meth:`summary`/:meth:`snapshot` still render.
        """
        if total_tasks < 0:
            raise ValueError("total_tasks must be non-negative")
        self._started_at = time.perf_counter()
        self._total = total_tasks
        self.heartbeats.clear()
        self.failures.clear()

    def record(self, heartbeat: Heartbeat) -> None:
        """Deliver one heartbeat (completion order, not submission order)."""
        if self._started_at is None:
            self.start(heartbeat.total)
        self.heartbeats.append(heartbeat)
        if self.emit is not None:
            self.emit(self.format_heartbeat(heartbeat))

    def record_failure(self, kind: str = "retry") -> None:
        """Count one executor failure event (``retry``/``crash``/``timeout``).

        Reported by the resilient executor's charge path; a task that
        eventually succeeds still leaves its failure counts here, so
        the live view shows how hard the run is fighting.
        """
        self.failures[kind] = self.failures.get(kind, 0) + 1

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def total_tasks(self) -> int:
        return self._total

    @property
    def tasks_done(self) -> int:
        return len(self.heartbeats)

    @property
    def elapsed_s(self) -> float:
        if self._started_at is None:
            return 0.0
        return time.perf_counter() - self._started_at

    @property
    def tasks_per_s(self) -> float:
        elapsed = self.elapsed_s
        return self.tasks_done / elapsed if elapsed > 0 else 0.0

    @property
    def mean_task_wall_s(self) -> float:
        if not self.heartbeats:
            return 0.0
        return sum(hb.wall_s for hb in self.heartbeats) / len(self.heartbeats)

    @property
    def cycles_per_s(self) -> Optional[float]:
        """Aggregate simulated cycles/s (needs ``cycles_per_task``)."""
        if self.cycles_per_task is None:
            return None
        elapsed = self.elapsed_s
        if elapsed <= 0:
            return None
        return self.tasks_done * self.cycles_per_task / elapsed

    @property
    def eta_s(self) -> Optional[float]:
        """Estimated seconds to completion, None before the first beat."""
        rate = self.tasks_per_s
        if rate <= 0 or self._total <= 0:
            return None
        return max(self._total - self.tasks_done, 0) / rate

    @property
    def lanes_done(self) -> int:
        """Total batched lanes completed (equals tasks_done when scalar)."""
        return sum(hb.lanes for hb in self.heartbeats)

    @property
    def mean_lanes(self) -> float:
        """Mean fleet occupancy of completed tasks (1.0 = all scalar)."""
        done = self.tasks_done
        return self.lanes_done / done if done else 0.0

    @property
    def retries(self) -> int:
        """Total executor failure events of every kind."""
        return sum(self.failures.values())

    def format_heartbeat(self, heartbeat: Heartbeat) -> str:
        """One human-readable progress line for a heartbeat."""
        done = self.tasks_done
        line = (
            f"[sweep {done}/{self._total or heartbeat.total}] "
            f"{_render_parameters(heartbeat.parameters)} seed={heartbeat.seed} "
            f"-> {heartbeat.value:.6g} ({heartbeat.wall_s:.2f}s)"
        )
        if heartbeat.lanes > 1:
            line += f" [fleet x{heartbeat.lanes}]"
        cycles_rate = self.cycles_per_s
        if cycles_rate is not None:
            line += f" [{cycles_rate:.0f} cycles/s]"
        if self.failures:
            line += f" [{self.retries} retried]"
        eta = self.eta_s
        if eta is not None and done < self._total:
            line += f" eta {eta:.0f}s"
        return line

    def summary(self) -> Dict[str, object]:
        """Machine-readable run summary (for reports and tests)."""
        return {
            "total_tasks": self._total,
            "tasks_done": self.tasks_done,
            "lanes_done": self.lanes_done,
            "mean_lanes": self.mean_lanes,
            "elapsed_s": self.elapsed_s,
            "tasks_per_s": self.tasks_per_s,
            "mean_task_wall_s": self.mean_task_wall_s,
            "cycles_per_task": self.cycles_per_task,
            "cycles_per_s": self.cycles_per_s,
            "eta_s": self.eta_s,
            "failures": dict(self.failures),
        }

    def snapshot(self) -> Dict[str, object]:
        """Full JSON-serialisable state: the summary plus every heartbeat.

        ``json.dumps(telemetry.snapshot())`` round-trips (every value is
        a plain int/float/str/dict/list or None), the ``format`` field
        pins the schema (``repro.telemetry/v1``), and the heartbeat list
        rebuilds via :meth:`Heartbeat.from_dict` — enough to archive a
        sweep's progress log next to its results.
        """
        snapshot = self.summary()
        snapshot["format"] = TELEMETRY_FORMAT
        snapshot["started"] = self._started_at is not None
        snapshot["heartbeats"] = [hb.to_dict() for hb in self.heartbeats]
        return snapshot

    def to_stats(self, registry, prefix: str = "sweep") -> None:
        """Export the live aggregates onto a ``StatsRegistry``.

        Pairs with ``StatsRegistry.to_prometheus()`` for a scrapeable
        live view of a running sweep (throughput, occupancy, failures).
        """
        registry.scalar(
            f"{prefix}.total_tasks", "tasks in the sweep", self._total
        )
        registry.scalar(
            f"{prefix}.tasks_done", "tasks completed", self.tasks_done
        )
        registry.scalar(
            f"{prefix}.lanes_done", "batched lanes completed",
            self.lanes_done,
        )
        registry.scalar(
            f"{prefix}.mean_lanes", "mean fleet occupancy per task",
            self.mean_lanes,
        )
        registry.scalar(
            f"{prefix}.elapsed_s", "wall-clock seconds since start",
            self.elapsed_s,
        )
        registry.scalar(
            f"{prefix}.tasks_per_s", "aggregate task throughput",
            self.tasks_per_s,
        )
        cycles_rate = self.cycles_per_s
        registry.scalar(
            f"{prefix}.cycles_per_s", "aggregate simulated cycles/s",
            cycles_rate if cycles_rate is not None else 0.0,
        )
        registry.scalar(
            f"{prefix}.failures.total", "executor failure events",
            self.retries,
        )
        for kind in sorted(self.failures):
            registry.scalar(
                f"{prefix}.failures.{kind}",
                f"executor {kind} events", self.failures[kind],
            )

    def to_prometheus(self, namespace: str = "repro") -> str:
        """Prometheus text exposition of the live aggregates."""
        from repro.obs.stats import StatsRegistry

        registry = StatsRegistry()
        self.to_stats(registry)
        return registry.to_prometheus(namespace=namespace)


def _render_parameters(parameters: Dict[str, object]) -> str:
    if not parameters:
        return "(no parameters)"
    return " ".join(f"{name}={value}" for name, value in parameters.items())

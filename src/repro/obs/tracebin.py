"""Binary columnar trace capture and the ``repro.trace_bin/v1`` format.

:class:`SwitchTracer` (JSONL-oriented, one Python call and one tuple per
event) costs ~46% when attached to the fast kernel — fine for smoke
runs, unusable as an always-on production mode.  :class:`BinaryTracer`
closes that gap with *deferred batch capture*: the traced fast-kernel
step appends a handful of tagged entries per cycle to a timeline — in
most cases references to per-cycle structures the kernel already built
(the ejected-flit list, the phase-1 winners dict) — and the expansion
into packed integer columns happens lazily, outside the stepping loop.
The captured objects are immutable after capture (flit/packet fields and
``_LocalWin`` records are never mutated once emitted), so the deferred
expansion replays the exact event stream :class:`SwitchTracer` would
have produced; state-dependent payloads (cooling grant cycles, phase-2
outcomes, viability reasons) are the only values materialised eagerly.

Storage is columnar: one ``int64`` cycle column plus five ``int32``
payload columns (kind, a, b, c, d) in growable ``array`` buffers that
numpy can view zero-copy.  Memory is bounded two ways:

* **stride-doubling decimation** — past ``capacity`` events the columns
  are halved (every other event kept) and the sampling stride doubles,
  exactly like the engine's latency-sample decimation; or
* **spilling** — with a ``spill_path`` the columns are flushed to disk
  as ``repro.trace_bin/v1`` segments instead, keeping full fidelity.

The on-disk format (:data:`TRACEBIN_FORMAT`)::

    b"RPTB"  u32 version  u32 len  <header JSON, len bytes>
    repeat:  b"SGMT"  u32 n  cycle[i64*n] kind[i32*n] a b c d (i32*n each)
                              lane[i32*n]          (iff header "lane" true)
    optional: b"FTR0" u32 len <footer JSON: events/dropped/stride totals>

All integers are little-endian.  A torn file (killed writer) parses up
to its last complete segment; :func:`read_tracebin` is tolerant by
default and strict on request.  JSONL and Chrome ``trace_event`` remain
available as export views (:meth:`BinaryTracer.records`,
:meth:`BinaryTracer.write_chrome`, ``repro trace --convert``).
"""

import json
import os
from array import array
from typing import IO, Dict, Iterator, List, Optional, Tuple, Union

from repro.obs.trace import (
    DEFAULT_CAPACITY,
    EJECT,
    EVENT_FIELDS,
    EVENT_NAMES,
    INJECT,
    P1_GRANT,
    P2_BLOCK,
    P2_GRANT,
    TRACE_VERSION,
    iter_chrome_events,
    write_chrome_stream,
)

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI
    _np = None

#: Binary trace format tag (header ``format`` field).
TRACEBIN_FORMAT = "repro.trace_bin/v1"
#: File magic / chunk tags.
MAGIC = b"RPTB"
SEGMENT_MAGIC = b"SGMT"
FOOTER_MAGIC = b"FTR0"
#: Binary format version (bumped on layout changes).
TRACEBIN_VERSION = 1

#: Default file extension (CI artifacts, CLI defaults).
TRACEBIN_SUFFIX = ".tracebin"

#: Column order of every segment; ``cycle`` is int64, the rest int32.
COLUMNS = ("cycle", "kind", "a", "b", "c", "d")

# Timeline entry tags (first tuple element).  The traced kernel appends
# these; _expand_timeline() replays them into flat event rows in the
# exact order SwitchTracer would have emitted.
_T_RAW = 0      # (tag, cycle, kind, a, b, c, d) — pre-expanded event
_T_INJECT = 1   # (tag, [Packet, ...]) — batch injection, created_cycle order
_T_INJECT1 = 2  # (tag, Packet) — single injection
_T_EJECT = 3    # (tag, cycle, [Flit, ...]) — this cycle's ejected list
_T_COOL = 4     # (tag, cycle, [(rid, src, out, granted), ...])
_T_VIA = 5      # (tag, cycle, [(port, dst, reason), ...])
_T_P1 = 6       # (tag, cycle, {rid: _LocalWin}) — insertion order
_T_P2 = 7       # (tag, cycle, {rid: _LocalWin}, [(in, out, cls), ...])

#: How many timeline entries accumulate before the traced step asks the
#: tracer to drain (encode + decimate/spill).  ~6 entries/cycle at
#: saturation, so this is ~10k cycles of capture between drains.
DEFAULT_DRAIN_INTERVAL = 1 << 16


class BinaryTracer:
    """Columnar, deferred-capture switch tracer (binary-native).

    Protocol-compatible with :class:`~repro.obs.trace.SwitchTracer`
    (``bind`` / ``emit`` / ``inject`` / ``records`` / ``write_jsonl`` /
    ``write_chrome`` / ``counts_by_kind`` / ``halving_events`` /
    ``events``), so the reference kernel, the fault engine, the drain
    loop, and the audit pipeline all work unchanged.  The fast kernel
    detects :attr:`batch_capture` and switches to the deferred timeline
    capture that makes always-on tracing affordable.

    Args:
        capacity: Bound on retained events.  Without a spill path the
            columns are stride-decimated past it (every other event
            kept, stride doubled — deterministic, so traced parity
            between kernels survives decimation).  ``None`` = unbounded.
        spill_path: Write overflowing columns to this
            ``repro.trace_bin/v1`` file instead of decimating (full
            fidelity, bounded memory).  The file is finalised by
            :meth:`save` (same path) or :meth:`close`.
    """

    #: The fast kernel dispatches on this to its batch-capture step.
    batch_capture = True

    __slots__ = (
        "timeline", "cycle", "capacity", "config", "drain_interval",
        "_cycles", "_kinds", "_a", "_b", "_c", "_d",
        "_counter", "_stride", "_meta_conf", "_writer", "_spill_path",
        "_spilled", "perf",
    )

    def __init__(self, capacity: Optional[int] = DEFAULT_CAPACITY,
                 spill_path: Optional[str] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("tracer capacity must be >= 1 or None")
        self.timeline: List[tuple] = []
        self.cycle = 0
        self.capacity = capacity
        self.config = None
        self.drain_interval = DEFAULT_DRAIN_INTERVAL
        self._cycles = array("q")
        self._kinds = array("i")
        self._a = array("i")
        self._b = array("i")
        self._c = array("i")
        self._d = array("i")
        self._counter = 0   # events ever captured (pre-decimation)
        self._stride = 1
        self._meta_conf: Dict[str, object] = {}
        self._writer: Optional[BinaryTraceWriter] = None
        self._spill_path = spill_path
        self._spilled = 0   # events already flushed to the spill file
        # Optional PerfCounters: set by a kernel constructed with both
        # perf= and this tracer; drains are then timed as "trace_drain".
        self.perf = None

    def bind(self, switch) -> None:
        """Attach the switch's configuration (resource naming, meta)."""
        config = getattr(switch, "config", None)
        self.config = config
        if config is not None:
            self._meta_conf = dict(
                radix=config.radix,
                layers=config.layers,
                channel_multiplicity=config.channel_multiplicity,
                arbitration=str(config.arbitration.value),
                allocation=str(config.allocation.value),
            )

    # ------------------------------------------------------------------
    # SwitchTracer-compatible emission (reference kernel, rare events)
    # ------------------------------------------------------------------
    def emit(self, kind: int, a: int = 0, b: int = 0, c: int = 0,
             d: int = 0) -> None:
        """Append one event at the tracer's current cycle."""
        self.timeline.append((_T_RAW, self.cycle, kind, a, b, c, d))

    def inject(self, cycle: int, src: int, dst: int, num_flits: int,
               packet_id: int) -> None:
        """Injection events carry their own cycle (they precede step())."""
        self.timeline.append((_T_RAW, cycle, INJECT, src, dst,
                              num_flits, packet_id))

    # ------------------------------------------------------------------
    # Deferred expansion: timeline -> columns
    # ------------------------------------------------------------------
    def _rows(self, timeline) -> Iterator[Tuple[int, int, int, int, int, int]]:
        """Replay tagged timeline entries as flat event rows, in order."""
        for entry in timeline:
            tag = entry[0]
            if tag == _T_RAW:
                yield entry[1:]
            elif tag == _T_EJECT:
                cycle = entry[1]
                for flit in entry[2]:
                    yield (cycle, EJECT, flit.src, flit.dst, flit.seq,
                           1 if flit.seq == flit.num_flits - 1 else 0)
            elif tag == _T_INJECT:
                for p in entry[1]:
                    yield (p.created_cycle, INJECT, p.src, p.dst,
                           p.num_flits, p.packet_id)
            elif tag == _T_INJECT1:
                p = entry[1]
                yield (p.created_cycle, INJECT, p.src, p.dst,
                       p.num_flits, p.packet_id)
            elif tag == _T_COOL:
                cycle = entry[1]
                for rid, src, out, granted in entry[2]:
                    yield (cycle, 6, rid, src, out, granted)  # COOL
            elif tag == _T_VIA:
                cycle = entry[1]
                for port, dst, reason in entry[2]:
                    yield (cycle, 5, port, dst, reason, 0)  # VIA_BLOCK
            elif tag == _T_P1:
                cycle = entry[1]
                for rid, win in entry[2].items():
                    yield (cycle, P1_GRANT, rid, win.input_port,
                           win.dst_output, win.weight)
            else:  # _T_P2
                # Phase-2 grants were captured by the traced `_establish`
                # in sub-block order; the scalar stream interleaves
                # grants and blocks in phase-1 winner order, so merge.
                cycle = entry[1]
                granted = {
                    input_port: (out, cls)
                    for input_port, out, cls in entry[3]
                }
                for rid, win in entry[2].items():
                    input_port = win.input_port
                    grant = granted.get(input_port)
                    if grant is not None:
                        yield (cycle, P2_GRANT, rid, input_port,
                               grant[0], grant[1])
                    else:
                        yield (cycle, P2_BLOCK, rid, input_port,
                               win.dst_output, 0)

    def drain(self) -> None:
        """Encode the captured timeline into the columns.

        Called by the traced kernel every :attr:`drain_interval`
        timeline entries and by every read/export path; cheap when the
        timeline is empty.  Applies the capacity policy: stride
        decimation, or a segment flush when spilling.  With
        :attr:`perf` attached, non-empty drains are timed as the
        ``trace_drain`` phase (op count = timeline entries encoded).
        """
        if self.perf is not None and self.timeline:
            import time as _time

            entries = len(self.timeline)
            start = _time.perf_counter_ns()
            self._drain_timeline()
            self.perf.add(
                "trace_drain", _time.perf_counter_ns() - start, entries
            )
            return
        self._drain_timeline()

    def _drain_timeline(self) -> None:
        timeline = self.timeline
        if timeline:
            self.timeline = []
            cycles = self._cycles
            kinds = self._kinds
            cola, colb, colc, cold = self._a, self._b, self._c, self._d
            counter = self._counter
            stride = self._stride
            if stride == 1:
                # Full-fidelity fast path: expand each batch column-wise
                # (one comprehension per column) instead of row-by-row —
                # the per-event constant is what bounds drain throughput.
                for entry in timeline:
                    tag = entry[0]
                    if tag == _T_EJECT:
                        cycle = entry[1]
                        flits = entry[2]
                        count = len(flits)
                        cycles.extend([cycle] * count)
                        kinds.extend([EJECT] * count)
                        cola.extend([f.src for f in flits])
                        colb.extend([f.dst for f in flits])
                        colc.extend([f.seq for f in flits])
                        cold.extend([
                            1 if f.seq == f.num_flits - 1 else 0
                            for f in flits
                        ])
                        counter += count
                    elif tag == _T_INJECT:
                        packets = entry[1]
                        count = len(packets)
                        cycles.extend([p.created_cycle for p in packets])
                        kinds.extend([INJECT] * count)
                        cola.extend([p.src for p in packets])
                        colb.extend([p.dst for p in packets])
                        colc.extend([p.num_flits for p in packets])
                        cold.extend([p.packet_id for p in packets])
                        counter += count
                    elif tag == _T_P1:
                        cycle = entry[1]
                        winners = entry[2]
                        count = len(winners)
                        wins = winners.values()
                        cycles.extend([cycle] * count)
                        kinds.extend([P1_GRANT] * count)
                        cola.extend(winners.keys())
                        colb.extend([w.input_port for w in wins])
                        colc.extend([w.dst_output for w in wins])
                        cold.extend([w.weight for w in wins])
                        counter += count
                    elif tag == _T_P2:
                        cycle = entry[1]
                        granted = {
                            input_port: (out, cls)
                            for input_port, out, cls in entry[3]
                        }
                        lookup = granted.get
                        for rid, win in entry[2].items():
                            input_port = win.input_port
                            grant = lookup(input_port)
                            cycles.append(cycle)
                            if grant is not None:
                                kinds.append(P2_GRANT)
                                cola.append(rid)
                                colb.append(input_port)
                                colc.append(grant[0])
                                cold.append(grant[1])
                            else:
                                kinds.append(P2_BLOCK)
                                cola.append(rid)
                                colb.append(input_port)
                                colc.append(win.dst_output)
                                cold.append(0)
                            counter += 1
                    elif tag == _T_COOL or tag == _T_VIA:
                        cycle = entry[1]
                        batch = entry[2]
                        count = len(batch)
                        cycles.extend([cycle] * count)
                        if tag == _T_COOL:
                            kinds.extend([6] * count)  # COOL
                            rids, srcs, outs, grants = zip(*batch)
                            cola.extend(rids)
                            colb.extend(srcs)
                            colc.extend(outs)
                            cold.extend(grants)
                        else:
                            kinds.extend([5] * count)  # VIA_BLOCK
                            ports, dsts, reasons = zip(*batch)
                            cola.extend(ports)
                            colb.extend(dsts)
                            colc.extend(reasons)
                            cold.extend([0] * count)
                        counter += count
                    elif tag == _T_RAW:
                        cycles.append(entry[1])
                        kinds.append(entry[2])
                        cola.append(entry[3])
                        colb.append(entry[4])
                        colc.append(entry[5])
                        cold.append(entry[6])
                        counter += 1
                    else:  # _T_INJECT1
                        packet = entry[1]
                        cycles.append(packet.created_cycle)
                        kinds.append(INJECT)
                        cola.append(packet.src)
                        colb.append(packet.dst)
                        colc.append(packet.num_flits)
                        cold.append(packet.packet_id)
                        counter += 1
            else:
                for row in self._rows(timeline):
                    if counter % stride == 0:
                        cycles.append(row[0])
                        kinds.append(row[1])
                        cola.append(row[2])
                        colb.append(row[3])
                        colc.append(row[4])
                        cold.append(row[5])
                    counter += 1
            self._counter = counter
        capacity = self.capacity
        if capacity is None or len(self._kinds) <= capacity:
            return
        if self._spill_path is not None:
            self._flush_segment()
        else:
            while len(self._kinds) > capacity:
                self._cycles = self._cycles[::2]
                self._kinds = self._kinds[::2]
                self._a = self._a[::2]
                self._b = self._b[::2]
                self._c = self._c[::2]
                self._d = self._d[::2]
                self._stride *= 2

    def _flush_segment(self) -> None:
        """Spill the current columns to the writer and reset them."""
        if self._writer is None:
            self._writer = BinaryTraceWriter(
                self._spill_path, meta=self._file_meta()
            )
        self._writer.append_segment(
            (self._cycles, self._kinds, self._a, self._b, self._c, self._d)
        )
        self._spilled += len(self._kinds)
        self._cycles = array("q")
        self._kinds = array("i")
        self._a = array("i")
        self._b = array("i")
        self._c = array("i")
        self._d = array("i")

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def num_events(self) -> int:
        """Events currently retained in memory (post-decimation)."""
        self.drain()
        return len(self._kinds)

    @property
    def total_events(self) -> int:
        """Events ever captured (pre-decimation, including spilled)."""
        self.drain()
        return self._counter

    @property
    def dropped(self) -> int:
        """Events lost to stride decimation (0 at full fidelity)."""
        self.drain()
        return self._counter - self._spilled - len(self._kinds)

    @property
    def stride(self) -> int:
        """Current decimation stride (1 = every event kept)."""
        self.drain()
        return self._stride

    @property
    def events(self) -> List[Tuple[int, int, int, int, int, int]]:
        """Retained events as SwitchTracer-style tuples (materialised)."""
        self.drain()
        return list(zip(self._cycles, self._kinds, self._a, self._b,
                        self._c, self._d))

    def __len__(self) -> int:
        return self.num_events

    def columns(self) -> "TraceColumns":
        """The retained events as a :class:`TraceColumns` view.

        Zero-copy onto numpy when available; the analyzer's columnar
        ingestion path consumes this directly.
        """
        self.drain()
        return TraceColumns(
            cycle=_as_np(self._cycles), kind=_as_np(self._kinds),
            a=_as_np(self._a), b=_as_np(self._b), c=_as_np(self._c),
            d=_as_np(self._d), lane=None, meta=self.meta(),
            total_events=self._counter, dropped=self.dropped,
            stride=self._stride, truncated=False,
        )

    def counts_by_kind(self) -> Dict[str, int]:
        """Event counts keyed by wire name (for summaries and tests)."""
        self.drain()
        counts: Dict[str, int] = {}
        kinds = self._kinds
        if _np is not None and len(kinds):
            binned = _np.bincount(
                _np.frombuffer(kinds, dtype=_np.int32),
                minlength=len(EVENT_NAMES),
            )
            for kind, count in enumerate(binned):
                if count:
                    counts[EVENT_NAMES[kind]] = int(count)
            return counts
        for kind in kinds:
            name = EVENT_NAMES[kind]
            counts[name] = counts.get(name, 0) + 1
        return counts

    def halving_events(self) -> List[Tuple[int, int, int]]:
        """All CLRG halvings as ``(cycle, output, total_halvings)``."""
        self.drain()
        return [
            (cycle, a, b)
            for cycle, kind, a, b in zip(self._cycles, self._kinds,
                                         self._a, self._b)
            if kind == 7  # CLRG_HALVE
        ]

    def resource_name(self, resource_id: int) -> str:
        """Human-readable name of a flat resource id (export labelling)."""
        config = self.config
        if config is not None:
            try:
                key = config.resource_key_table[resource_id]
            except IndexError:
                return f"res{resource_id}"
            if key[0] == "int":
                return f"int L{key[1]}.{key[2]}"
            return f"ch L{key[1]}->L{key[2]}#{key[3]}"
        return f"res{resource_id}"

    def meta(self) -> Dict[str, object]:
        """The JSONL-style meta record for the retained events."""
        self.drain()
        meta: Dict[str, object] = {
            "event": "meta",
            "version": TRACE_VERSION,
            "events": len(self._kinds),
            "dropped": self.dropped,
        }
        meta.update(self._meta_conf)
        return meta

    # ------------------------------------------------------------------
    # Export views
    # ------------------------------------------------------------------
    def records(self) -> Iterator[Dict[str, object]]:
        """Self-describing dict per event, meta record first (JSONL view)."""
        yield self.meta()
        fields = EVENT_FIELDS
        names = EVENT_NAMES
        for cycle, kind, a, b, c, d in zip(
            self._cycles, self._kinds, self._a, self._b, self._c, self._d
        ):
            record: Dict[str, object] = {
                "cycle": int(cycle), "event": names[kind],
            }
            payload = (int(a), int(b), int(c), int(d))
            for index, field in enumerate(fields[kind]):
                record[field] = payload[index]
            yield record

    def write_jsonl(self, destination: Union[str, IO[str]]) -> int:
        """Write the JSONL export; returns the number of records written."""
        if hasattr(destination, "write"):
            handle = destination
            count = 0
            for record in self.records():
                handle.write(json.dumps(record, separators=(",", ":")) + "\n")
                count += 1
            return count
        with open(destination, "w", encoding="utf-8") as handle:
            return self.write_jsonl(handle)

    def write_chrome(self, destination: Union[str, IO[str]]) -> int:
        """Stream the Chrome trace_event export; returns the event count."""
        self.drain()
        events = zip(self._cycles, self._kinds, self._a, self._b,
                     self._c, self._d)
        return write_chrome_stream(
            destination, iter_chrome_events(events, self.resource_name)
        )

    # ------------------------------------------------------------------
    # Binary persistence
    # ------------------------------------------------------------------
    def _file_meta(self) -> Dict[str, object]:
        meta = dict(self._meta_conf)
        meta["capacity"] = self.capacity
        return meta

    def save(self, path: Union[str, os.PathLike]) -> int:
        """Write the ``repro.trace_bin/v1`` file; returns events written.

        In spill mode ``path`` must be the spill path; saving finalises
        the spill file (remaining columns + footer).
        """
        self.drain()
        if self._spill_path is not None:
            if os.fspath(path) != os.fspath(self._spill_path):
                raise ValueError(
                    "a spilling tracer saves to its spill_path "
                    f"({self._spill_path!r}), not {path!r}"
                )
            self._flush_segment()
            written = self._spilled
            self.close()
            return written
        writer = BinaryTraceWriter(path, meta=self._file_meta())
        try:
            writer.append_segment(
                (self._cycles, self._kinds, self._a, self._b,
                 self._c, self._d)
            )
            written = len(self._kinds)
        finally:
            writer.close(events=self._counter, dropped=self.dropped,
                         stride=self._stride)
        return written

    def close(self) -> None:
        """Finalise the spill file, if one is open."""
        if self._writer is not None:
            self._writer.close(events=self._counter,
                               dropped=self._counter - self._spilled,
                               stride=self._stride)
            self._writer = None


class BinaryTracerFactory:
    """Picklable ``callable() -> BinaryTracer`` for harness measurements.

    Unlike an arbitrary ``tracer_factory``, measurements recognise the
    :attr:`fleet_capable` marker and keep the batched fleet path (the
    fleet kernel emits binary traces natively, one tracer per lane)
    instead of falling back to scalar runs.
    """

    fleet_capable = True

    def __init__(self, capacity: Optional[int] = DEFAULT_CAPACITY) -> None:
        self.capacity = capacity

    def __call__(self) -> BinaryTracer:
        return BinaryTracer(capacity=self.capacity)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BinaryTracerFactory):
            return NotImplemented
        return self.capacity == other.capacity

    def __hash__(self) -> int:
        return hash((BinaryTracerFactory, self.capacity))


# ---------------------------------------------------------------------------
# Columns container (file reads and in-memory views share it)
# ---------------------------------------------------------------------------
def _as_np(column):
    """numpy view of an array('i'/'q') column (zero-copy), or the array."""
    if _np is None or not len(column):
        return column
    return _np.frombuffer(
        column, dtype=_np.int64 if column.typecode == "q" else _np.int32
    )


class TraceColumns:
    """Decoded columnar event data: six parallel integer sequences.

    ``cycle``/``kind``/``a``/``b``/``c``/``d`` are numpy arrays when
    numpy is importable, ``array.array`` otherwise; ``lane`` is the
    optional per-lane column of fleet traces (``None`` for scalar
    traces).  This is the native input of
    :meth:`repro.obs.analyze.TraceAnalyzer.consume_columns`.
    """

    __slots__ = ("cycle", "kind", "a", "b", "c", "d", "lane", "meta",
                 "total_events", "dropped", "stride", "truncated")

    def __init__(self, cycle, kind, a, b, c, d, lane=None,
                 meta: Optional[Dict[str, object]] = None,
                 total_events: Optional[int] = None, dropped: int = 0,
                 stride: int = 1, truncated: bool = False) -> None:
        self.cycle = cycle
        self.kind = kind
        self.a = a
        self.b = b
        self.c = c
        self.d = d
        self.lane = lane
        self.meta = dict(meta) if meta else {}
        self.total_events = (
            total_events if total_events is not None else len(kind)
        )
        self.dropped = dropped
        self.stride = stride
        self.truncated = truncated

    def __len__(self) -> int:
        return len(self.kind)

    def iter_events(self) -> Iterator[Tuple[int, int, int, int, int, int]]:
        """Events as SwitchTracer-style integer tuples."""
        for row in zip(self.cycle, self.kind, self.a, self.b,
                       self.c, self.d):
            yield tuple(int(x) for x in row)

    def jsonl_meta(self) -> Dict[str, object]:
        """The stream's meta record (JSONL view header)."""
        meta: Dict[str, object] = {
            "event": "meta",
            "version": TRACE_VERSION,
            "events": len(self.kind),
            "dropped": self.dropped,
        }
        for key in ("radix", "layers", "channel_multiplicity",
                    "arbitration", "allocation"):
            if key in self.meta:
                meta[key] = self.meta[key]
        return meta

    def records(self) -> Iterator[Dict[str, object]]:
        """JSONL view: self-describing dicts, meta record first."""
        yield self.jsonl_meta()
        fields = EVENT_FIELDS
        names = EVENT_NAMES
        for cycle, kind, a, b, c, d in zip(
            self.cycle, self.kind, self.a, self.b, self.c, self.d
        ):
            kind = int(kind)
            record: Dict[str, object] = {
                "cycle": int(cycle), "event": names[kind],
            }
            payload = (int(a), int(b), int(c), int(d))
            for index, field in enumerate(fields[kind]):
                record[field] = payload[index]
            yield record

    def resource_name(self, resource_id: int) -> str:
        """Reconstruct the resource label from the header geometry."""
        radix = int(self.meta.get("radix", 0) or 0)
        layers = int(self.meta.get("layers", 0) or 0)
        cmult = int(self.meta.get("channel_multiplicity", 0) or 0)
        if radix and layers:
            if resource_id < radix:
                ports_per_layer = radix // layers
                return (f"int L{resource_id // ports_per_layer}."
                        f"{resource_id % ports_per_layer}")
            chan = resource_id - radix
            if cmult and chan < layers * layers * cmult:
                return (f"ch L{chan // (layers * cmult)}->"
                        f"L{(chan // cmult) % layers}#{chan % cmult}")
        return f"res{resource_id}"

    def write_jsonl(self, destination: Union[str, IO[str]]) -> int:
        """Write the JSONL view; returns the number of records written."""
        if hasattr(destination, "write"):
            count = 0
            for record in self.records():
                destination.write(
                    json.dumps(record, separators=(",", ":")) + "\n"
                )
                count += 1
            return count
        with open(destination, "w", encoding="utf-8") as handle:
            return self.write_jsonl(handle)

    def write_chrome(self, destination: Union[str, IO[str]]) -> int:
        """Stream the Chrome trace_event view; returns the event count."""
        return write_chrome_stream(
            destination,
            iter_chrome_events(self.iter_events(), self.resource_name),
        )

    def for_lane(self, lane: int) -> "TraceColumns":
        """The single-lane slice of a fleet trace (scalar-trace shaped)."""
        if self.lane is None:
            raise ValueError("trace has no lane column")
        if _np is not None:
            mask = _np.asarray(self.lane) == lane
            return TraceColumns(
                cycle=_np.asarray(self.cycle)[mask],
                kind=_np.asarray(self.kind)[mask],
                a=_np.asarray(self.a)[mask], b=_np.asarray(self.b)[mask],
                c=_np.asarray(self.c)[mask], d=_np.asarray(self.d)[mask],
                lane=None, meta=self.meta, dropped=self.dropped,
                stride=self.stride, truncated=self.truncated,
            )
        keep = [i for i, entry in enumerate(self.lane) if entry == lane]
        pick = lambda col, code: array(code, (col[i] for i in keep))
        return TraceColumns(
            cycle=pick(self.cycle, "q"), kind=pick(self.kind, "i"),
            a=pick(self.a, "i"), b=pick(self.b, "i"),
            c=pick(self.c, "i"), d=pick(self.d, "i"),
            lane=None, meta=self.meta, dropped=self.dropped,
            stride=self.stride, truncated=self.truncated,
        )

    def lanes(self) -> List[int]:
        """Sorted distinct lane ids (empty for scalar traces)."""
        if self.lane is None:
            return []
        return sorted({int(entry) for entry in self.lane})


# ---------------------------------------------------------------------------
# File writer / reader
# ---------------------------------------------------------------------------
def _u32(value: int) -> bytes:
    return int(value).to_bytes(4, "little")


class BinaryTraceWriter:
    """Streaming ``repro.trace_bin/v1`` writer (segment-at-a-time).

    The header goes out on open, each :meth:`append_segment` is
    self-contained (a killed process leaves a readable prefix), and
    :meth:`close` appends the totals footer.
    """

    def __init__(self, path: Union[str, os.PathLike],
                 meta: Optional[Dict[str, object]] = None,
                 lane_column: bool = False) -> None:
        self.path = os.fspath(path)
        self.lane_column = lane_column
        self.segments = 0
        self.events = 0
        header = {
            "format": TRACEBIN_FORMAT,
            "version": TRACEBIN_VERSION,
            "columns": list(COLUMNS) + (["lane"] if lane_column else []),
            "dtypes": {"cycle": "<i8", "kind": "<i4", "a": "<i4",
                       "b": "<i4", "c": "<i4", "d": "<i4",
                       **({"lane": "<i4"} if lane_column else {})},
            "lane": lane_column,
            "meta": dict(meta or {}),
        }
        blob = json.dumps(header, separators=(",", ":")).encode("utf-8")
        self._handle = open(self.path, "wb")
        self._handle.write(MAGIC)
        self._handle.write(_u32(TRACEBIN_VERSION))
        self._handle.write(_u32(len(blob)))
        self._handle.write(blob)

    def append_segment(self, columns, lane=None) -> int:
        """Write one segment; returns the number of events it holds.

        ``columns`` is the 6-tuple ``(cycle, kind, a, b, c, d)`` of
        ``array``/numpy columns; ``lane`` the per-lane column iff the
        writer was opened with ``lane_column=True``.
        """
        if self._handle is None:
            raise ValueError("writer is closed")
        n = len(columns[1])
        if any(len(column) != n for column in columns):
            raise ValueError("trace columns must have equal lengths")
        if self.lane_column:
            if lane is None or len(lane) != n:
                raise ValueError("lane column missing or mis-sized")
        elif lane is not None:
            raise ValueError("writer was opened without a lane column")
        if n == 0:
            return 0
        handle = self._handle
        handle.write(SEGMENT_MAGIC)
        handle.write(_u32(n))
        for column in (columns if lane is None else (*columns, lane)):
            handle.write(_column_bytes(column))
        self.segments += 1
        self.events += n
        return n

    def close(self, events: Optional[int] = None, dropped: int = 0,
              stride: int = 1) -> None:
        """Append the totals footer and close the file (idempotent)."""
        if self._handle is None:
            return
        footer = {
            "events": self.events if events is None else int(events),
            "written": self.events,
            "segments": self.segments,
            "dropped": int(dropped),
            "stride": int(stride),
        }
        blob = json.dumps(footer, separators=(",", ":")).encode("utf-8")
        self._handle.write(FOOTER_MAGIC)
        self._handle.write(_u32(len(blob)))
        self._handle.write(blob)
        self._handle.close()
        self._handle = None

    def __enter__(self) -> "BinaryTraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _column_bytes(column) -> bytes:
    """Little-endian bytes of one column (array.array or numpy)."""
    if _np is not None and isinstance(column, _np.ndarray):
        return column.astype(column.dtype.newbyteorder("<"),
                             copy=False).tobytes()
    import sys

    data = column.tobytes()
    if sys.byteorder == "big":  # pragma: no cover - x86/arm CI is LE
        swapped = array(column.typecode, column)
        swapped.byteswap()
        data = swapped.tobytes()
    return data


def _decode_column(buffer, offset: int, count: int, typecode: str):
    """One column from raw bytes: numpy view if possible, else array."""
    width = 8 if typecode == "q" else 4
    end = offset + count * width
    if _np is not None:
        dtype = _np.dtype("<i8" if typecode == "q" else "<i4")
        return _np.frombuffer(buffer, dtype=dtype, count=count,
                              offset=offset), end
    import sys

    column = array(typecode)
    column.frombytes(bytes(buffer[offset:end]))
    if sys.byteorder == "big":  # pragma: no cover
        column.byteswap()
    return column, end


def read_tracebin(path: Union[str, os.PathLike],
                  strict: bool = False) -> TraceColumns:
    """Read a ``repro.trace_bin/v1`` file into :class:`TraceColumns`.

    Tolerant by default: a torn file (no footer, or a final segment cut
    mid-write) yields every complete segment with ``truncated=True``.
    With ``strict=True`` any torn tail raises :class:`ValueError`.

    Uses ``mmap`` + zero-copy numpy views when numpy is available, so a
    multi-gigabyte trace opens without materialising it.
    """
    import mmap

    with open(path, "rb") as handle:
        try:
            buffer = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError):
            buffer = handle.read()  # empty files cannot be mapped
    view = memoryview(buffer)
    size = len(view)
    if size < 12 or bytes(view[:4]) != MAGIC:
        raise ValueError(f"not a {TRACEBIN_FORMAT} file: {path}")
    version = int.from_bytes(view[4:8], "little")
    if version != TRACEBIN_VERSION:
        raise ValueError(
            f"unsupported trace_bin version {version} "
            f"(supported: {TRACEBIN_VERSION})"
        )
    header_len = int.from_bytes(view[8:12], "little")
    offset = 12 + header_len
    if offset > size:
        raise ValueError("truncated trace_bin header")
    try:
        header = json.loads(bytes(view[12:offset]))
    except ValueError as error:
        raise ValueError(f"malformed trace_bin header: {error}") from None
    if header.get("format") != TRACEBIN_FORMAT:
        raise ValueError(
            f"not a {TRACEBIN_FORMAT} file: format={header.get('format')!r}"
        )
    lane_column = bool(header.get("lane"))
    typecodes = ["q", "i", "i", "i", "i", "i"] + (
        ["i"] if lane_column else []
    )

    segments: List[List[object]] = []
    footer: Optional[Dict[str, object]] = None
    truncated = False
    while offset < size:
        tag = bytes(view[offset:offset + 4])
        if tag == FOOTER_MAGIC:
            if offset + 8 > size:
                truncated = True
                break
            blob_len = int.from_bytes(view[offset + 4:offset + 8], "little")
            end = offset + 8 + blob_len
            if end > size:
                truncated = True
                break
            try:
                footer = json.loads(bytes(view[offset + 8:end]))
            except ValueError:
                truncated = True
            offset = end
            break
        if tag != SEGMENT_MAGIC or offset + 8 > size:
            truncated = True
            break
        count = int.from_bytes(view[offset + 4:offset + 8], "little")
        width = sum(8 if code == "q" else 4 for code in typecodes)
        if offset + 8 + count * width > size:
            truncated = True  # segment cut mid-write
            break
        cursor = offset + 8
        columns = []
        for code in typecodes:
            column, cursor = _decode_column(view, cursor, count, code)
            columns.append(column)
        segments.append(columns)
        offset = cursor
    if footer is None:
        truncated = True
    if truncated and strict:
        raise ValueError(
            f"torn trace_bin file (read {len(segments)} complete "
            f"segment(s)): {path}"
        )

    merged = _merge_segments(segments, typecodes)
    total = sum(len(segment[1]) for segment in segments)
    dropped = int(footer.get("dropped", 0)) if footer else 0
    stride = int(footer.get("stride", 1)) if footer else 1
    return TraceColumns(
        cycle=merged[0], kind=merged[1], a=merged[2], b=merged[3],
        c=merged[4], d=merged[5],
        lane=merged[6] if lane_column else None,
        meta=header.get("meta") or {},
        total_events=int(footer["events"]) if footer else total,
        dropped=dropped, stride=stride, truncated=truncated,
    )


def _merge_segments(segments, typecodes):
    """Concatenate per-segment columns into whole-trace columns."""
    if not segments:
        empty = [array(code) for code in typecodes]
        if _np is not None:
            empty = [
                _np.asarray(column,
                            dtype=_np.int64 if code == "q" else _np.int32)
                for column, code in zip(empty, typecodes)
            ]
        return empty + [None] * (7 - len(empty))
    if len(segments) == 1:
        merged = list(segments[0])
    elif _np is not None:
        merged = [
            _np.concatenate([segment[index] for segment in segments])
            for index in range(len(typecodes))
        ]
    else:
        merged = []
        for index, code in enumerate(typecodes):
            column = array(code)
            for segment in segments:
                column.extend(segment[index])
            merged.append(column)
    return merged + [None] * (7 - len(merged))


def sniff_tracebin(path: Union[str, os.PathLike]) -> bool:
    """True when ``path`` starts with the trace_bin magic bytes."""
    try:
        with open(path, "rb") as handle:
            return handle.read(4) == MAGIC
    except OSError:
        return False


# ---------------------------------------------------------------------------
# Fleet capture (per-lane column, native fleet-kernel emission)
# ---------------------------------------------------------------------------
class FleetTracer:
    """Per-lane binary event capture for the fleet kernel.

    The fleet kernel (:class:`repro.core.fleet.FleetKernel`) appends one
    batch per (cycle, event-kind group): ``lanes`` plus per-event payload
    columns, with rows pre-ordered ``(lane, within-lane event order)``
    and batches appended in the scalar kernel's within-cycle kind order.
    Restricting the concatenated rows to a single lane therefore
    reproduces the scalar fast kernel's event stream for that lane
    exactly — :meth:`lane_tracer` materialises it as a
    :class:`BinaryTracer` (including capacity-driven stride decimation,
    which is drain-timing invariant), and :meth:`columns` exposes the
    whole fleet as one :class:`TraceColumns` with a ``lane`` column.

    The in-memory batches are full fidelity; ``capacity`` is the
    *per-lane* bound applied when a lane is extracted.  Batches are
    stored by reference: the kernel hands over freshly gathered arrays
    and never mutates them afterwards.
    """

    #: The fleet kernel and harness dispatch on this marker.
    fleet_capture = True

    __slots__ = ("num_lanes", "capacity", "config", "_batches", "_events",
                 "_meta_conf")

    def __init__(self, num_lanes: int,
                 capacity: Optional[int] = DEFAULT_CAPACITY) -> None:
        if _np is None:
            raise RuntimeError(
                "FleetTracer needs numpy (the fleet kernel's dependency)"
            )
        if num_lanes < 1:
            raise ValueError("need at least one lane")
        if capacity is not None and capacity < 1:
            raise ValueError("tracer capacity must be >= 1 or None")
        self.num_lanes = num_lanes
        self.capacity = capacity
        self.config = None
        self._batches: List[tuple] = []
        self._events = 0
        self._meta_conf: Dict[str, object] = {}

    def bind(self, config) -> None:
        """Attach the fleet's shared configuration (accepts a switch too)."""
        config = getattr(config, "config", config)
        self.config = config
        if config is not None:
            self._meta_conf = dict(
                radix=config.radix,
                layers=config.layers,
                channel_multiplicity=config.channel_multiplicity,
                arbitration=str(config.arbitration.value),
                allocation=str(config.allocation.value),
            )

    # ------------------------------------------------------------------
    # Kernel-facing capture
    # ------------------------------------------------------------------
    def append_batch(self, cycle: int, lanes, kinds, a=0, b=0, c=0,
                     d=0) -> None:
        """Append one pre-ordered event batch.

        ``lanes`` is a sequence; ``kinds``/``a``-``d`` are matching
        sequences or scalars (broadcast over the batch).  Rows must
        already be in ``(lane, within-lane order)`` — the kernel sorts
        before appending.
        """
        count = len(lanes)
        if count == 0:
            return
        self._batches.append((int(cycle), lanes, kinds, a, b, c, d))
        self._events += count

    def append_row(self, cycle: int, lane: int, kind: int, a: int = 0,
                   b: int = 0, c: int = 0, d: int = 0) -> None:
        """Append one event (rare paths: faults, drain stalls)."""
        self._batches.append(
            (int(cycle), (int(lane),), int(kind), int(a), int(b),
             int(c), int(d))
        )
        self._events += 1

    # ------------------------------------------------------------------
    # Inspection / extraction
    # ------------------------------------------------------------------
    @property
    def num_events(self) -> int:
        """Events captured (the merged view is full fidelity)."""
        return self._events

    @property
    def total_events(self) -> int:
        return self._events

    def __len__(self) -> int:
        return self._events

    def columns(self) -> TraceColumns:
        """All lanes merged as one lane-columned :class:`TraceColumns`."""
        n = self._events
        cycle = _np.empty(n, dtype=_np.int64)
        kind = _np.empty(n, dtype=_np.int32)
        cola = _np.empty(n, dtype=_np.int32)
        colb = _np.empty(n, dtype=_np.int32)
        colc = _np.empty(n, dtype=_np.int32)
        cold = _np.empty(n, dtype=_np.int32)
        lane = _np.empty(n, dtype=_np.int32)
        pos = 0
        for batch_cycle, lanes, kinds, a, b, c, d in self._batches:
            count = len(lanes)
            sl = slice(pos, pos + count)
            cycle[sl] = batch_cycle
            lane[sl] = lanes
            kind[sl] = kinds
            cola[sl] = a
            colb[sl] = b
            colc[sl] = c
            cold[sl] = d
            pos += count
        return TraceColumns(
            cycle=cycle, kind=kind, a=cola, b=colb, c=colc, d=cold,
            lane=lane, meta=dict(self._meta_conf), total_events=n,
            dropped=0, stride=1, truncated=False,
        )

    def lane_columns(self, lane: int) -> TraceColumns:
        """One lane's full-fidelity stream (scalar-trace shaped)."""
        return self.columns().for_lane(lane)

    def lane_tracer(self, lane: int, columns: Optional[TraceColumns] = None
                    ) -> BinaryTracer:
        """One lane's stream as a :class:`BinaryTracer`.

        Applies this tracer's per-lane ``capacity`` through the normal
        drain path, so the result is event-for-event identical to a
        scalar :class:`BinaryTracer` capture of the same lane —
        including the stride decimation, which depends only on the
        event sequence, not on drain timing.  Pass a pre-computed
        ``columns()`` result to amortise the merge across lanes.
        """
        tracer = BinaryTracer(capacity=self.capacity)
        tracer.config = self.config
        tracer._meta_conf = dict(self._meta_conf)
        cols = (columns if columns is not None else self.columns()
                ).for_lane(lane)
        timeline = tracer.timeline
        for row in zip(cols.cycle.tolist(), cols.kind.tolist(),
                       cols.a.tolist(), cols.b.tolist(),
                       cols.c.tolist(), cols.d.tolist()):
            timeline.append((_T_RAW,) + row)
        tracer.drain()
        return tracer

    def lanes(self) -> List[int]:
        """All lane indices, `[0, num_lanes)`."""
        return list(range(self.num_lanes))

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: Union[str, os.PathLike]) -> int:
        """Write all lanes as one lane-columned trace_bin file."""
        cols = self.columns()
        meta = dict(self._meta_conf)
        meta["lanes"] = self.num_lanes
        meta["capacity"] = self.capacity
        writer = BinaryTraceWriter(path, meta=meta, lane_column=True)
        try:
            writer.append_segment(
                (cols.cycle, cols.kind, cols.a, cols.b, cols.c, cols.d),
                lane=cols.lane,
            )
        finally:
            writer.close(events=self._events, dropped=0, stride=1)
        return self._events

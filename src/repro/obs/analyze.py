"""Streaming trace analytics: raw event streams to audited run reports.

PR 2's :class:`repro.obs.trace.SwitchTracer` produces cycle-level JSONL
event streams, but nothing *read* them: the paper's headline fairness
claim (two-phase LRG starves the hotspot layer's own inputs; CLRG
restores per-input fairness) was only visible by eyeballing aggregate
throughput.  This module turns a trace into an **audit report** the way
the Tiny Tera line of work treats arbiter fairness — as a first-class,
measured property:

* **per-primary-input service timelines** — phase-2 grants per input,
  overall and per fairness window (epoch), condensed with the indices
  from :mod:`repro.metrics.fairness`;
* **starvation windows** — the longest gap between grants for each
  input while it was backlogged (had undelivered flits in flight);
* **CLRG class dynamics** — grant counts by priority class and the
  per-output counter-bank halving history, reconstructed from
  ``p2_grant``/``clrg_halve`` events;
* **utilization timelines** — per-resource busy cycles from ``cool``
  events (which carry the grant cycle) and per-epoch ejected-flit
  throughput;
* **an anomaly pass** — unfair epochs, throughput collapse, per-input
  starvation, drain stalls, fault injections, and truncated
  (event-dropping) traces;
* **degradation tracking** — ``fault_inject``/``fault_repair`` events
  (PR 4's :mod:`repro.faults` engine) are folded into a running fault
  state, each epoch is stamped with its failed-channel count, and the
  summary's ``faults`` section reports delivered throughput bucketed by
  how many channels were down — the measured graceful-degradation
  curve.

The analyzer is **single-pass and bounded-memory**: it consumes any
record iterator (a JSONL file streamed line by line, or
``tracer.records()``) exactly once, keeps only O(ports + resources)
running state plus a capped, deterministically decimated epoch list and
a capped anomaly list — never the events themselves — so traces far
larger than memory audit fine.

The report's :meth:`AuditReport.summary` dict is the stable machine
schema (:data:`AUDIT_SCHEMA`, checked by :func:`validate_audit_summary`)
and :func:`compare_audits` diffs two summaries with tolerances — the
beginning of run-to-run regression detection (`repro audit --against`).
"""

import json
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.metrics.fairness import fairness_summary, jain_index, max_min_ratio
from repro.obs.trace import (
    CLRG_HALVE,
    COOL,
    DRAIN_STALL,
    EJECT,
    EVENT_NAMES,
    FAULT_CHANNEL,
    FAULT_CLRG,
    FAULT_INJECT,
    FAULT_INPUT,
    FAULT_NAMES,
    FAULT_REPAIR,
    INJECT,
    P2_BLOCK,
    P2_GRANT,
    SCHED_ACCEPT,
    SCHED_GRANT,
)

try:  # pragma: no cover - exercised via the pure-python fallback tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Schema tag written into (and required of) every audit summary.
AUDIT_SCHEMA = "repro.audit/v1"

#: Default fairness-window length in cycles.
DEFAULT_WINDOW = 256
#: Epochs with a per-input service Jain index below this are unfair.
DEFAULT_FAIRNESS_THRESHOLD = 0.85
#: ... or with a best-to-worst served ratio above this (Jain is weak on
#: the structural 2:1 skews slot-level LRG produces; the ratio is not).
DEFAULT_MAX_MIN_THRESHOLD = 2.0
#: An epoch ejecting less than this fraction of the peak epoch's flits
#: while demand is backlogged is a throughput collapse.
DEFAULT_COLLAPSE_FRACTION = 0.25
#: Bound on stored epoch records (decimated beyond it, like latency
#: samples) and on stored anomalies (counted but dropped beyond it).
DEFAULT_MAX_EPOCHS = 4096
DEFAULT_MAX_ANOMALIES = 256
#: How many busiest resources the summary lists.
DEFAULT_TOP_RESOURCES = 8

#: Record fields that name switch ports (for ``--port`` filtering).
PORT_FIELDS = ("src", "dst", "input", "output")


def resource_label(
    resource_id: int, radix: int, layers: int, channel_multiplicity: int
) -> str:
    """Human-readable name of a flat resource id from trace meta fields.

    Mirrors ``config.resource_key_table`` without needing a config
    object, so JSONL traces are labellable offline.  Falls back to
    ``res<id>`` when the meta fields are missing or inconsistent.
    """
    if radix < 1 or layers < 1 or channel_multiplicity < 1 or radix % layers:
        return f"res{resource_id}"
    if 0 <= resource_id < radix:
        ppl = radix // layers
        return f"int L{resource_id // ppl}.{resource_id % ppl}"
    index = resource_id - radix
    per_src = layers * channel_multiplicity
    if not 0 <= index < layers * per_src:
        return f"res{resource_id}"
    src = index // per_src
    dst = (index // channel_multiplicity) % layers
    channel = index % channel_multiplicity
    return f"ch L{src}->L{dst}#{channel}"


def iter_jsonl(path) -> Iterator[Dict[str, object]]:
    """Stream records from a JSONL trace file, one line at a time.

    Strict: a garbled line raises — a JSONL trace is a machine-written
    export, so damage means a bug, not an interrupted append (the
    crash-tolerant journals use :mod:`repro.util.jsonl`'s tolerant
    reader instead).
    """
    from repro.util.jsonl import iter_jsonl_strict

    return iter_jsonl_strict(path)


def filter_records(
    records: Iterable[Dict[str, object]],
    kinds: Optional[Sequence[str]] = None,
    ports: Optional[Sequence[int]] = None,
) -> Iterator[Dict[str, object]]:
    """Filter a record stream by event kind and/or touched port.

    ``kinds`` keeps only the named event kinds; ``ports`` keeps events
    any of whose port-valued fields (:data:`PORT_FIELDS`) equals one of
    the given ports.  The meta record always passes, so a filtered dump
    is still a valid (schema-wise) trace.

    Raises:
        ValueError: On an event kind the schema does not define.
    """
    kind_set = None
    if kinds is not None:
        kind_set = set(kinds)
        unknown = kind_set - set(EVENT_NAMES.values())
        if unknown:
            raise ValueError(f"unknown event kind(s): {sorted(unknown)}")
    port_set = set(ports) if ports is not None else None
    for record in records:
        event = record.get("event")
        if event == "meta":
            yield record
            continue
        if kind_set is not None and event not in kind_set:
            continue
        if port_set is not None and not any(
            record.get(fld) in port_set for fld in PORT_FIELDS
        ):
            continue
        yield record


def summarize_records(records: Iterable[Dict[str, object]]) -> Dict[str, object]:
    """One-pass summary of a record stream: counts and per-resource totals.

    Returns a dict with ``events``, ``counts_by_kind``, per-resource
    ``resources`` (``grants`` from ``p2_grant``, ``busy_cycles`` from
    ``cool`` hold intervals), per-port ``ports`` (``injected`` packets at
    the source, ``ejected`` flits at the destination), and the ``meta``
    record's fields — enough to inspect a large JSONL trace without
    external tooling.
    """
    counts: Dict[str, int] = {}
    resources: Dict[int, Dict[str, int]] = {}
    port_totals: Dict[int, Dict[str, int]] = {}
    meta: Dict[str, object] = {}
    events = 0

    def res_entry(rid: int) -> Dict[str, int]:
        entry = resources.get(rid)
        if entry is None:
            entry = resources[rid] = {"grants": 0, "busy_cycles": 0}
        return entry

    def port_entry(port: int) -> Dict[str, int]:
        entry = port_totals.get(port)
        if entry is None:
            entry = port_totals[port] = {"injected": 0, "ejected": 0}
        return entry

    for record in records:
        event = record.get("event")
        if event == "meta":
            meta = {k: v for k, v in record.items() if k != "event"}
            continue
        events += 1
        counts[event] = counts.get(event, 0) + 1
        if event == "p2_grant":
            res_entry(record["resource"])["grants"] += 1
        elif event == "cool":
            granted = record.get("granted", -1)
            cycle = record.get("cycle", 0)
            if isinstance(granted, int) and 0 <= granted < cycle:
                res_entry(record["resource"])["busy_cycles"] += cycle - granted
        elif event == "inject":
            port_entry(record["src"])["injected"] += 1
        elif event == "eject":
            port_entry(record["dst"])["ejected"] += 1
    return {
        "events": events,
        "counts_by_kind": counts,
        "resources": resources,
        "ports": port_totals,
        "meta": meta,
    }


# ---------------------------------------------------------------------------
# Epochs and anomalies
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Epoch:
    """Per-window service summary (one fairness epoch).

    Attributes:
        index: Window index (``cycle // window``).
        start_cycle / end_cycle: Nominal window bounds (end exclusive).
        grants: Phase-2 grants committed in the window.
        ejected_flits: Flits delivered in the window.
        active_inputs: Inputs that were served, blocked, or backlogged.
        jain: Jain index of per-active-input grants (None when fewer
            than two inputs were active or nothing was granted).
        max_min: Best-to-worst served ratio (None when undefined or
            infinite — some active input got nothing).
        mean_class: Mean CLRG class of the window's grants (None when
            the scheme is not CLRG or nothing was granted).
        utilization: Ejected flits per output per cycle.
        failed_channels: Failed L2LC channels at window close (the
            fault state reconstructed from ``fault_inject`` /
            ``fault_repair`` events; 0 on fault-free traces).
    """

    index: int
    start_cycle: int
    end_cycle: int
    grants: int
    ejected_flits: int
    active_inputs: int
    jain: Optional[float]
    max_min: Optional[float]
    mean_class: Optional[float]
    utilization: float
    failed_channels: int = 0

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (one entry of ``summary()['epochs']``)."""
        return {
            "index": self.index,
            "start_cycle": self.start_cycle,
            "end_cycle": self.end_cycle,
            "grants": self.grants,
            "ejected_flits": self.ejected_flits,
            "active_inputs": self.active_inputs,
            "jain": self.jain,
            "max_min": self.max_min,
            "mean_class": self.mean_class,
            "utilization": self.utilization,
            "failed_channels": self.failed_channels,
        }


@dataclass(frozen=True)
class Anomaly:
    """One flagged irregularity, anchored to a cycle."""

    kind: str            # unfair_epoch | throughput_collapse | starvation
    cycle: int           # | drain_stall | truncated_trace | fault
    detail: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (one entry of ``summary()['anomalies']``)."""
        return {"kind": self.kind, "cycle": self.cycle, "detail": self.detail}


# ---------------------------------------------------------------------------
# The streaming analyzer
# ---------------------------------------------------------------------------
class TraceAnalyzer:
    """Single-pass, bounded-memory consumer of switch trace records.

    Feed it self-describing event records (the JSONL schema —
    ``tracer.records()`` yields the same dicts) in stream order via
    :meth:`feed`, then call :meth:`finish` for the
    :class:`AuditReport`; or use the :func:`analyze_records` /
    :func:`analyze_jsonl` / :func:`analyze_tracer` convenience wrappers.

    Args:
        window: Fairness-epoch length in cycles.
        fairness_threshold: Epoch Jain index below which the epoch is
            flagged unfair.
        max_min_threshold: Epoch best-to-worst served ratio above which
            the epoch is flagged unfair (an active input served nothing
            counts as an infinite ratio).
        collapse_fraction: Epochs ejecting less than this fraction of
            the peak epoch while inputs are backlogged are collapses.
        starvation_gap: Grant gaps (while backlogged) at least this long
            flag the input as starved; defaults to ``4 * window``.
        max_epochs: Stored-epoch bound; beyond it the epoch list is
            deterministically decimated (every other record kept, stride
            doubled).  Streaming epoch aggregates stay exact.
        max_anomalies: Stored-anomaly bound (further ones only counted).
        top_resources: How many busiest resources the summary lists.
    """

    def __init__(
        self,
        window: int = DEFAULT_WINDOW,
        fairness_threshold: float = DEFAULT_FAIRNESS_THRESHOLD,
        max_min_threshold: float = DEFAULT_MAX_MIN_THRESHOLD,
        collapse_fraction: float = DEFAULT_COLLAPSE_FRACTION,
        starvation_gap: Optional[int] = None,
        max_epochs: int = DEFAULT_MAX_EPOCHS,
        max_anomalies: int = DEFAULT_MAX_ANOMALIES,
        top_resources: int = DEFAULT_TOP_RESOURCES,
    ) -> None:
        if window < 1:
            raise ValueError("window must be >= 1 cycle")
        if not 0.0 < fairness_threshold <= 1.0:
            raise ValueError("fairness threshold must be in (0, 1]")
        if max_min_threshold < 1.0:
            raise ValueError("max/min threshold must be >= 1")
        if not 0.0 <= collapse_fraction < 1.0:
            raise ValueError("collapse fraction must be in [0, 1)")
        if starvation_gap is not None and starvation_gap < 1:
            raise ValueError("starvation gap must be >= 1 cycle")
        if max_epochs < 1 or max_anomalies < 1 or top_resources < 1:
            raise ValueError("bounds must be >= 1")
        self.window = window
        self.fairness_threshold = fairness_threshold
        self.max_min_threshold = max_min_threshold
        self.collapse_fraction = collapse_fraction
        self.starvation_gap = (
            starvation_gap if starvation_gap is not None else 4 * window
        )
        self.max_epochs = max_epochs
        self.max_anomalies = max_anomalies
        self.top_resources = top_resources

        # Stream position / identity.
        self.meta: Dict[str, object] = {}
        self._records = 0
        self._events = 0
        self._counts: Dict[str, int] = {}
        self._first_cycle: Optional[int] = None
        self._last_cycle = 0
        self._dropped_events = 0
        self._finished: Optional[AuditReport] = None

        # Per-input state (grown on demand, O(ports)).
        self._ports = 0
        self._service: List[int] = []      # total phase-2 grants
        self._p2_blocks: List[int] = []    # total phase-2 losses
        self._backlog: List[int] = []      # flits injected - ejected
        self._gap_start: List[Optional[int]] = []
        self._max_gap: List[int] = []
        self._max_gap_at: List[int] = []
        self._ever_active = bytearray()

        # Traffic totals.
        self._packets_injected = 0
        self._flits_injected = 0
        self._packets_ejected = 0
        self._flits_ejected = 0

        # CLRG dynamics.
        self._class_grants: Dict[int, int] = {}
        self._halvings_by_output: Dict[int, int] = {}

        # VOQ scheduler rounds (sched_grant / sched_accept), keyed by
        # iteration number.
        self._sched_grants_by_iter: Dict[int, int] = {}
        self._sched_accepts_by_iter: Dict[int, int] = {}

        # Fault state reconstructed from fault_inject / fault_repair.
        self._failed_channel_ids: set = set()
        self._stuck_input_ids: set = set()
        self._fault_events = 0
        self._repair_events = 0
        self._clrg_corruptions = 0
        self._max_failed_channels = 0
        # Degradation curve: window cycles / delivered flits bucketed by
        # the failed-channel count in effect when the window closed.
        self._cycles_by_failed: Dict[int, int] = {}
        self._ejected_by_failed: Dict[int, int] = {}

        # Per-resource utilization (O(resources)).
        self._res_busy: Dict[int, int] = {}
        self._res_grants: Dict[int, int] = {}

        # Open-window accumulators.
        self._epoch_index = 0
        self._win_grants: List[int] = []
        self._win_active = bytearray()
        self._win_ejected = 0
        self._win_class_sum = 0
        self._win_class_n = 0
        self._peak_win_ejected = 0

        # Stored epochs (bounded, decimated) + exact streaming aggregates.
        self.epochs: List[Epoch] = []
        self.epoch_stride = 1
        self._epochs_total = 0
        self._unfair_epochs = 0
        self._jain_sum = 0.0
        self._jain_n = 0
        self._jain_min: Optional[float] = None
        self._jain_min_epoch: Optional[int] = None

        # Anomalies (bounded).
        self.anomalies: List[Anomaly] = []
        self._anomalies_total = 0

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    def _ensure_ports(self, count: int) -> None:
        if count <= self._ports:
            return
        grow = count - self._ports
        self._service.extend([0] * grow)
        self._p2_blocks.extend([0] * grow)
        self._backlog.extend([0] * grow)
        self._gap_start.extend([None] * grow)
        self._max_gap.extend([0] * grow)
        self._max_gap_at.extend([-1] * grow)
        self._ever_active.extend(b"\x00" * grow)
        self._win_grants.extend([0] * grow)
        self._win_active.extend(b"\x00" * grow)
        self._ports = count

    def feed(self, record: Dict[str, object]) -> None:
        """Consume one record (meta first, events in stream order)."""
        if self._finished is not None:
            raise RuntimeError("analyzer already finished")
        self._records += 1
        event = record.get("event")
        if event == "meta":
            self.meta.update(
                (key, value) for key, value in record.items() if key != "event"
            )
            radix = record.get("radix")
            if isinstance(radix, int) and radix > 0:
                self._ensure_ports(radix)
            dropped = record.get("dropped")
            if isinstance(dropped, int) and dropped > 0:
                self._dropped_events += dropped
            return
        if self._records == 1:
            raise ValueError("trace must start with a meta record")
        cycle = record.get("cycle")
        if not isinstance(cycle, int) or cycle < 0:
            raise ValueError(f"{event}: cycle must be a non-negative integer")
        if self._first_cycle is None:
            self._first_cycle = cycle
            self._epoch_index = cycle // self.window
        elif cycle < self._first_cycle:
            self._first_cycle = cycle
        if cycle > self._last_cycle:
            self._last_cycle = cycle
        # Close every window the stream has fully moved past.  (Records
        # arrive in non-decreasing cycle order from both exporters; a
        # stray earlier cycle is folded into the open window.)
        while cycle // self.window > self._epoch_index:
            self._close_epoch()
        self._events += 1
        self._counts[event] = self._counts.get(event, 0) + 1

        if event == "inject":
            src = record["src"]
            self._ensure_ports(src + 1)
            flits = record.get("num_flits", 0)
            self._packets_injected += 1
            self._flits_injected += flits
            if self._backlog[src] == 0 and self._gap_start[src] is None:
                self._gap_start[src] = cycle
            self._backlog[src] += flits
            self._win_active[src] = 1
            self._ever_active[src] = 1
        elif event == "eject":
            src = record["src"]
            self._ensure_ports(max(src, record.get("dst", 0)) + 1)
            self._flits_ejected += 1
            self._win_ejected += 1
            if record.get("tail"):
                self._packets_ejected += 1
            if self._backlog[src] > 0:
                self._backlog[src] -= 1
                if self._backlog[src] == 0:
                    # Fully served: the wait ended at the grant that was
                    # already recorded, so just stop the clock.
                    self._gap_start[src] = None
            self._win_active[src] = 1
        elif event == "p2_grant":
            rid = record["resource"]
            inp = record["input"]
            self._ensure_ports(inp + 1)
            self._service[inp] += 1
            self._win_grants[inp] += 1
            self._win_active[inp] = 1
            self._ever_active[inp] = 1
            self._res_grants[rid] = self._res_grants.get(rid, 0) + 1
            self._record_gap(inp, cycle)
            # Still backlogged after this grant: the next inter-grant
            # interval starts accruing now.
            self._gap_start[inp] = cycle if self._backlog[inp] > 0 else None
            cls = record.get("cls", -1)
            if isinstance(cls, int) and cls >= 0:
                self._class_grants[cls] = self._class_grants.get(cls, 0) + 1
                self._win_class_sum += cls
                self._win_class_n += 1
        elif event == "p2_block":
            inp = record["input"]
            self._ensure_ports(inp + 1)
            self._p2_blocks[inp] += 1
            self._win_active[inp] = 1
            self._ever_active[inp] = 1
        elif event == "cool":
            granted = record.get("granted", -1)
            if isinstance(granted, int) and 0 <= granted < cycle:
                rid = record["resource"]
                self._res_busy[rid] = (
                    self._res_busy.get(rid, 0) + cycle - granted
                )
        elif event == "clrg_halve":
            output = record["output"]
            halvings = record.get("halvings", 0)
            if halvings > self._halvings_by_output.get(output, 0):
                self._halvings_by_output[output] = halvings
        elif event == "sched_grant":
            iteration = record.get("iteration", 0)
            grants = self._sched_grants_by_iter
            grants[iteration] = grants.get(iteration, 0) + 1
        elif event == "sched_accept":
            iteration = record.get("iteration", 0)
            accepts = self._sched_accepts_by_iter
            accepts[iteration] = accepts.get(iteration, 0) + 1
        elif event == "drain_stall":
            self._add_anomaly("drain_stall", cycle, {
                "idle_cycles": record.get("idle_cycles", 0),
                "occupancy": record.get("occupancy", 0),
            })
        elif event == "fault_inject":
            fault = record.get("fault", -1)
            target = record.get("target", -1)
            self._fault_events += 1
            if fault == FAULT_CHANNEL:
                self._failed_channel_ids.add(target)
                if len(self._failed_channel_ids) > self._max_failed_channels:
                    self._max_failed_channels = len(self._failed_channel_ids)
            elif fault == FAULT_INPUT:
                self._stuck_input_ids.add(target)
            elif fault == FAULT_CLRG:
                self._clrg_corruptions += 1
            self._add_anomaly("fault", cycle, {
                "fault": FAULT_NAMES.get(fault, str(fault)),
                "target": target,
                "aux": record.get("aux", 0),
            })
        elif event == "fault_repair":
            fault = record.get("fault", -1)
            target = record.get("target", -1)
            self._repair_events += 1
            if fault == FAULT_CHANNEL:
                self._failed_channel_ids.discard(target)
            elif fault == FAULT_INPUT:
                self._stuck_input_ids.discard(target)
        # p1_grant / via_block contribute to counts_by_kind only.

    # ------------------------------------------------------------------
    # Columnar ingestion (binary traces)
    # ------------------------------------------------------------------
    def feed_row(self, cycle: int, kind: int, a: int = 0, b: int = 0,
                 c: int = 0, d: int = 0) -> None:
        """Consume one decoded binary event: integer columns, no dicts.

        The integer twin of :meth:`feed` for
        :class:`repro.obs.tracebin.TraceColumns` rows — same state
        machine, same epoch/anomaly behaviour, but without building a
        record dict per event.  The meta record must still be fed first
        (via :meth:`feed`, normally ``columns.jsonl_meta()``).
        """
        if self._finished is not None:
            raise RuntimeError("analyzer already finished")
        name = EVENT_NAMES.get(kind)
        if name is None:
            raise ValueError(f"unknown event kind {kind}")
        self._records += 1
        if self._records == 1:
            raise ValueError("trace must start with a meta record")
        if cycle < 0:
            raise ValueError(f"{name}: cycle must be a non-negative integer")
        if self._first_cycle is None:
            self._first_cycle = cycle
            self._epoch_index = cycle // self.window
        elif cycle < self._first_cycle:
            self._first_cycle = cycle
        if cycle > self._last_cycle:
            self._last_cycle = cycle
        while cycle // self.window > self._epoch_index:
            self._close_epoch()
        self._events += 1
        self._counts[name] = self._counts.get(name, 0) + 1
        if kind == COOL:
            if 0 <= d < cycle:
                self._res_busy[a] = self._res_busy.get(a, 0) + (cycle - d)
        elif kind == CLRG_HALVE:
            if b > self._halvings_by_output.get(a, 0):
                self._halvings_by_output[a] = b
        elif kind == SCHED_GRANT:
            grants = self._sched_grants_by_iter
            grants[a] = grants.get(a, 0) + 1
        elif kind == SCHED_ACCEPT:
            accepts = self._sched_accepts_by_iter
            accepts[a] = accepts.get(a, 0) + 1
        else:
            self._seq_row(cycle, kind, a, b, c, d)

    def _seq_row(self, cycle: int, kind: int, a: int, b: int, c: int,
                 d: int) -> None:
        """The order-sensitive part of the per-event state machine.

        Handles the kinds that touch backlog/gap/window accumulators or
        emit anomalies; counts-only kinds (``p1_grant``, ``via_block``,
        ``invariant``) fall through as no-ops.  Mirrors :meth:`feed`'s
        dispatch with the :data:`repro.obs.trace.EVENT_FIELDS` slot
        mapping applied.
        """
        if kind == EJECT:
            src = a
            self._ensure_ports((src if src > b else b) + 1)
            self._flits_ejected += 1
            self._win_ejected += 1
            if d:
                self._packets_ejected += 1
            backlog = self._backlog
            if backlog[src] > 0:
                backlog[src] -= 1
                if backlog[src] == 0:
                    self._gap_start[src] = None
            self._win_active[src] = 1
        elif kind == INJECT:
            src = a
            self._ensure_ports(src + 1)
            self._packets_injected += 1
            self._flits_injected += c
            if self._backlog[src] == 0 and self._gap_start[src] is None:
                self._gap_start[src] = cycle
            self._backlog[src] += c
            self._win_active[src] = 1
            self._ever_active[src] = 1
        elif kind == P2_GRANT:
            inp = b
            self._ensure_ports(inp + 1)
            self._service[inp] += 1
            self._win_grants[inp] += 1
            self._win_active[inp] = 1
            self._ever_active[inp] = 1
            self._res_grants[a] = self._res_grants.get(a, 0) + 1
            self._record_gap(inp, cycle)
            self._gap_start[inp] = cycle if self._backlog[inp] > 0 else None
            if d >= 0:
                self._class_grants[d] = self._class_grants.get(d, 0) + 1
                self._win_class_sum += d
                self._win_class_n += 1
        elif kind == P2_BLOCK:
            inp = b
            self._ensure_ports(inp + 1)
            self._p2_blocks[inp] += 1
            self._win_active[inp] = 1
            self._ever_active[inp] = 1
        elif kind == DRAIN_STALL:
            self._add_anomaly("drain_stall", cycle, {
                "idle_cycles": a, "occupancy": b,
            })
        elif kind == FAULT_INJECT:
            self._fault_events += 1
            if a == FAULT_CHANNEL:
                self._failed_channel_ids.add(b)
                if len(self._failed_channel_ids) > self._max_failed_channels:
                    self._max_failed_channels = len(self._failed_channel_ids)
            elif a == FAULT_INPUT:
                self._stuck_input_ids.add(b)
            elif a == FAULT_CLRG:
                self._clrg_corruptions += 1
            self._add_anomaly("fault", cycle, {
                "fault": FAULT_NAMES.get(a, str(a)),
                "target": b,
                "aux": c,
            })
        elif kind == FAULT_REPAIR:
            self._repair_events += 1
            if a == FAULT_CHANNEL:
                self._failed_channel_ids.discard(b)
            elif a == FAULT_INPUT:
                self._stuck_input_ids.discard(b)

    def consume_columns(self, columns) -> None:
        """Ingest a decoded binary trace (``TraceColumns``) in one pass.

        Feeds the stream's meta record, then reduces the event columns —
        vectorized per-window where numpy is available, row by row via
        :meth:`feed_row` otherwise.  Produces state identical to feeding
        the equivalent JSONL records through :meth:`feed`.  Fleet traces
        carry a lane column and must be sliced per lane first
        (``columns.for_lane(lane)``).
        """
        if self._finished is not None:
            raise RuntimeError("analyzer already finished")
        if getattr(columns, "lane", None) is not None:
            raise ValueError(
                "fleet trace has a lane column; analyze one lane at a "
                "time via columns.for_lane(lane)"
            )
        self.feed(columns.jsonl_meta())
        if not len(columns.kind):
            return
        if _np is not None:
            self._consume_rows_np(columns.cycle, columns.kind, columns.a,
                                  columns.b, columns.c, columns.d)
            return
        feed_row = self.feed_row
        for row in zip(columns.cycle, columns.kind, columns.a, columns.b,
                       columns.c, columns.d):
            # int() per field: the columns may still be numpy arrays
            # (decoded elsewhere) and numpy scalars would poison the
            # JSON-serialisable summary dicts.
            feed_row(int(row[0]), int(row[1]), int(row[2]), int(row[3]),
                     int(row[4]), int(row[5]))

    def _consume_rows_np(self, cyc, kind, a, b, c, d) -> None:
        """Vectorized column ingestion (numpy available).

        Bulk-reduces everything the window machinery never reads
        (counts, cycle span, ``cool`` busy sums, ``clrg_halve`` maxima)
        and walks only the order-sensitive kinds row by row, closing
        epochs exactly where :meth:`feed` would: each row's effective
        window is the running maximum of ``cycle // window`` (stray
        earlier cycles fold into the open window), and rows that never
        touch window state cannot change what a close observes.
        """
        np = _np
        cyc = np.asarray(cyc, dtype=np.int64)
        kind = np.asarray(kind, dtype=np.int64)
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        c = np.asarray(c, dtype=np.int64)
        d = np.asarray(d, dtype=np.int64)
        n = int(kind.shape[0])
        if int(kind.min()) < 0 or int(kind.max()) >= len(EVENT_NAMES):
            raise ValueError("unknown event kind in columns")
        bad = np.flatnonzero(cyc < 0)
        if len(bad):
            name = EVENT_NAMES[int(kind[int(bad[0])])]
            raise ValueError(f"{name}: cycle must be a non-negative integer")

        counts = self._counts
        binned = np.bincount(kind, minlength=len(EVENT_NAMES)).tolist()
        for code, count in enumerate(binned):
            if count:
                name = EVENT_NAMES[code]
                counts[name] = counts.get(name, 0) + count
        self._records += n
        self._events += n
        if self._first_cycle is None:
            self._first_cycle = int(cyc[0])
            self._epoch_index = self._first_cycle // self.window
        low = int(cyc.min())
        if low < self._first_cycle:
            self._first_cycle = low
        high = int(cyc.max())
        if high > self._last_cycle:
            self._last_cycle = high

        # Epoch-insensitive reductions: _close_epoch never reads the
        # per-resource busy sums or the halving maxima.
        cool_rows = np.flatnonzero(kind == COOL)
        if len(cool_rows):
            granted = d[cool_rows]
            at = cyc[cool_rows]
            valid = (granted >= 0) & (granted < at)
            if valid.any():
                uniq, inverse = np.unique(
                    a[cool_rows][valid], return_inverse=True
                )
                busy = np.zeros(len(uniq), dtype=np.int64)
                np.add.at(busy, inverse, (at - granted)[valid])
                res_busy = self._res_busy
                for rid, extra in zip(uniq.tolist(), busy.tolist()):
                    res_busy[rid] = res_busy.get(rid, 0) + extra
        halve_rows = np.flatnonzero(kind == CLRG_HALVE)
        if len(halve_rows):
            uniq, inverse = np.unique(a[halve_rows], return_inverse=True)
            best = np.zeros(len(uniq), dtype=np.int64)
            np.maximum.at(best, inverse, b[halve_rows])
            halvings = self._halvings_by_output
            for output, top in zip(uniq.tolist(), best.tolist()):
                if top > halvings.get(output, 0):
                    halvings[output] = top
        for code, bucket in (
            (SCHED_GRANT, self._sched_grants_by_iter),
            (SCHED_ACCEPT, self._sched_accepts_by_iter),
        ):
            rows = np.flatnonzero(kind == code)
            if len(rows):
                uniq, per = np.unique(a[rows], return_counts=True)
                for iteration, count in zip(uniq.tolist(), per.tolist()):
                    bucket[iteration] = bucket.get(iteration, 0) + count

        # Order-sensitive kinds: backlog/gap/window accumulators and
        # anomaly emission must interleave with epoch closes exactly as
        # the stream dictates.  Only these rows can change what a close
        # observes, so closes triggered between them by counts-only
        # rows can safely wait for the next sequential row (or finish).
        seq_rows = np.flatnonzero(
            (kind == INJECT) | (kind == EJECT) | (kind == P2_GRANT)
            | (kind == P2_BLOCK) | (kind == DRAIN_STALL)
            | (kind == FAULT_INJECT) | (kind == FAULT_REPAIR)
        )
        if len(seq_rows):
            epochs = np.maximum(
                np.maximum.accumulate(cyc // self.window)[seq_rows],
                self._epoch_index,
            )
            seq_row = self._seq_row
            close = self._close_epoch
            for cycle, code, ai, bi, ci, di, epoch in zip(
                cyc[seq_rows].tolist(), kind[seq_rows].tolist(),
                a[seq_rows].tolist(), b[seq_rows].tolist(),
                c[seq_rows].tolist(), d[seq_rows].tolist(),
                epochs.tolist(),
            ):
                while epoch > self._epoch_index:
                    close()
                seq_row(cycle, code, ai, bi, ci, di)
        # Trailing counts-only rows may still have advanced the open
        # window; finish() closes through _last_cycle either way.

    def _record_gap(self, inp: int, cycle: int) -> None:
        start = self._gap_start[inp]
        if start is None:
            return
        gap = cycle - start
        if gap > self._max_gap[inp]:
            self._max_gap[inp] = gap
            self._max_gap_at[inp] = cycle

    def _add_anomaly(self, kind: str, cycle: int, detail: Dict[str, object]) -> None:
        self._anomalies_total += 1
        if len(self.anomalies) < self.max_anomalies:
            self.anomalies.append(Anomaly(kind, cycle, detail))

    # ------------------------------------------------------------------
    # Windows
    # ------------------------------------------------------------------
    def _close_epoch(self) -> None:
        start = self._epoch_index * self.window
        end = start + self.window
        values: List[int] = []
        backlogged = 0
        for port in range(self._ports):
            if self._backlog[port] > 0:
                backlogged += 1
            if self._win_active[port] or self._backlog[port] > 0:
                values.append(self._win_grants[port])
        active = len(values)
        grants = sum(values)
        jain: Optional[float] = None
        maxmin: Optional[float] = None
        unfair = False
        served_zero = 0
        if active >= 2 and grants > 0:
            jain = jain_index(values)
            ratio = max_min_ratio(values)
            maxmin = None if math.isinf(ratio) else ratio
            served_zero = sum(1 for value in values if value == 0)
            # Only judge fairness once there was enough service for an
            # even split to give every active input at least one grant;
            # shorter epochs cannot distinguish unfairness from
            # discretization.
            if grants >= active and (
                jain < self.fairness_threshold
                or ratio > self.max_min_threshold
            ):
                unfair = True
        mean_class = (
            self._win_class_sum / self._win_class_n
            if self._win_class_n else None
        )
        utilization = (
            self._win_ejected / (self.window * self._ports)
            if self._ports else 0.0
        )
        failed_now = len(self._failed_channel_ids)
        self._cycles_by_failed[failed_now] = (
            self._cycles_by_failed.get(failed_now, 0) + self.window
        )
        self._ejected_by_failed[failed_now] = (
            self._ejected_by_failed.get(failed_now, 0) + self._win_ejected
        )
        epoch = Epoch(
            index=self._epoch_index, start_cycle=start, end_cycle=end,
            grants=grants, ejected_flits=self._win_ejected,
            active_inputs=active, jain=jain, max_min=maxmin,
            mean_class=mean_class, utilization=utilization,
            failed_channels=failed_now,
        )
        if self._epochs_total % self.epoch_stride == 0:
            self.epochs.append(epoch)
            if len(self.epochs) > self.max_epochs:
                self.epochs[:] = self.epochs[::2]
                self.epoch_stride *= 2
        self._epochs_total += 1
        if jain is not None:
            self._jain_sum += jain
            self._jain_n += 1
            if self._jain_min is None or jain < self._jain_min:
                self._jain_min = jain
                self._jain_min_epoch = self._epoch_index
        if unfair:
            self._unfair_epochs += 1
            self._add_anomaly("unfair_epoch", start, {
                "jain": jain, "max_min": maxmin, "grants": grants,
                "active_inputs": active, "served_zero": served_zero,
            })
        if (
            backlogged > 0
            and self._peak_win_ejected > 0
            and self._win_ejected
            < self.collapse_fraction * self._peak_win_ejected
        ):
            self._add_anomaly("throughput_collapse", start, {
                "ejected_flits": self._win_ejected,
                "peak_ejected_flits": self._peak_win_ejected,
                "backlogged_inputs": backlogged,
            })
        if self._win_ejected > self._peak_win_ejected:
            self._peak_win_ejected = self._win_ejected
        # Reset the window accumulators in place.
        for port in range(self._ports):
            self._win_grants[port] = 0
            self._win_active[port] = 0
        self._win_ejected = 0
        self._win_class_sum = 0
        self._win_class_n = 0
        self._epoch_index += 1

    # ------------------------------------------------------------------
    # Finishing
    # ------------------------------------------------------------------
    def finish(self) -> "AuditReport":
        """Close open windows/gaps and build the :class:`AuditReport`."""
        if self._finished is not None:
            return self._finished
        if self._first_cycle is not None:
            while self._epoch_index <= self._last_cycle // self.window:
                self._close_epoch()
            # Inputs still waiting when the trace ended: their open wait
            # is a (lower bound on a) grant gap.
            for port in range(self._ports):
                if self._backlog[port] > 0:
                    self._record_gap(port, self._last_cycle)
        starved = [
            port for port in range(self._ports)
            if self._max_gap[port] >= self.starvation_gap
        ]
        for port in starved:
            self._add_anomaly("starvation", self._max_gap_at[port], {
                "input": port, "gap_cycles": self._max_gap[port],
                "gap_limit": self.starvation_gap,
            })
        if self._dropped_events > 0:
            self._add_anomaly("truncated_trace", self._last_cycle, {
                "dropped_events": self._dropped_events,
            })
        first = self._first_cycle if self._first_cycle is not None else 0
        self._finished = AuditReport(
            meta=dict(self.meta),
            window=self.window,
            fairness_threshold=self.fairness_threshold,
            max_min_threshold=self.max_min_threshold,
            starvation_gap=self.starvation_gap,
            top_resources=self.top_resources,
            records=self._records,
            events=self._events,
            counts_by_kind=dict(self._counts),
            dropped_events=self._dropped_events,
            first_cycle=first,
            last_cycle=self._last_cycle,
            packets_injected=self._packets_injected,
            flits_injected=self._flits_injected,
            packets_ejected=self._packets_ejected,
            flits_ejected=self._flits_ejected,
            per_input_grants=list(self._service),
            per_input_p2_blocks=list(self._p2_blocks),
            per_input_max_gap=list(self._max_gap),
            ever_active=[bool(flag) for flag in self._ever_active],
            class_grants=dict(self._class_grants),
            halvings_by_output=dict(self._halvings_by_output),
            resource_busy=dict(self._res_busy),
            resource_grants=dict(self._res_grants),
            epochs=list(self.epochs),
            epoch_stride=self.epoch_stride,
            epochs_total=self._epochs_total,
            unfair_epochs=self._unfair_epochs,
            jain_epoch_mean=(
                self._jain_sum / self._jain_n if self._jain_n else None
            ),
            jain_epoch_min=self._jain_min,
            jain_epoch_min_epoch=self._jain_min_epoch,
            anomalies=list(self.anomalies),
            anomalies_total=self._anomalies_total,
            starved_inputs=starved,
            fault_events=self._fault_events,
            repair_events=self._repair_events,
            clrg_corruptions=self._clrg_corruptions,
            max_failed_channels=self._max_failed_channels,
            final_failed_channels=sorted(self._failed_channel_ids),
            final_stuck_inputs=sorted(self._stuck_input_ids),
            degradation={
                failed: {
                    "cycles": cycles,
                    "ejected_flits": self._ejected_by_failed.get(failed, 0),
                    "throughput_flits_per_cycle": (
                        self._ejected_by_failed.get(failed, 0) / cycles
                        if cycles else 0.0
                    ),
                }
                for failed, cycles in sorted(self._cycles_by_failed.items())
            },
            sched_grants_by_iteration=dict(self._sched_grants_by_iter),
            sched_accepts_by_iteration=dict(self._sched_accepts_by_iter),
        )
        return self._finished


def analyze_records(
    records: Iterable[Dict[str, object]], **options
) -> "AuditReport":
    """Run a :class:`TraceAnalyzer` over a record iterable (one pass)."""
    analyzer = TraceAnalyzer(**options)
    for record in records:
        analyzer.feed(record)
    return analyzer.finish()


def analyze_jsonl(path, **options) -> "AuditReport":
    """Audit a JSONL trace file, streaming it line by line."""
    return analyze_records(iter_jsonl(path), **options)


def analyze_tracer(tracer, **options) -> "AuditReport":
    """Audit an in-memory tracer buffer.

    :class:`repro.obs.BinaryTracer` goes through the columnar fast
    path; anything exposing ``records()`` (a
    :class:`repro.obs.SwitchTracer`) streams dict records.
    """
    if hasattr(tracer, "columns"):
        return analyze_columns(tracer.columns(), **options)
    return analyze_records(tracer.records(), **options)


def analyze_columns(columns, **options) -> "AuditReport":
    """Audit decoded binary trace columns (``TraceColumns``)."""
    analyzer = TraceAnalyzer(**options)
    analyzer.consume_columns(columns)
    return analyzer.finish()


def analyze_tracebin(path, **options) -> "AuditReport":
    """Audit a ``repro.trace_bin/v1`` file via the columnar path."""
    from repro.obs.tracebin import read_tracebin

    return analyze_columns(read_tracebin(path), **options)


# ---------------------------------------------------------------------------
# The report
# ---------------------------------------------------------------------------
@dataclass
class AuditReport:
    """Everything the analyzer reconstructed from one trace.

    :meth:`summary` renders the stable machine-readable dict
    (:data:`AUDIT_SCHEMA`); :meth:`to_stats` exports the headline
    numbers onto a :class:`repro.obs.StatsRegistry`;
    ``repro.harness.report.render_audit_markdown`` renders the human
    report.
    """

    meta: Dict[str, object]
    window: int
    fairness_threshold: float
    max_min_threshold: float
    starvation_gap: int
    top_resources: int
    records: int
    events: int
    counts_by_kind: Dict[str, int]
    dropped_events: int
    first_cycle: int
    last_cycle: int
    packets_injected: int
    flits_injected: int
    packets_ejected: int
    flits_ejected: int
    per_input_grants: List[int]
    per_input_p2_blocks: List[int]
    per_input_max_gap: List[int]
    ever_active: List[bool]
    class_grants: Dict[int, int]
    halvings_by_output: Dict[int, int]
    resource_busy: Dict[int, int]
    resource_grants: Dict[int, int]
    epochs: List[Epoch]
    epoch_stride: int
    epochs_total: int
    unfair_epochs: int
    jain_epoch_mean: Optional[float]
    jain_epoch_min: Optional[float]
    jain_epoch_min_epoch: Optional[int]
    anomalies: List[Anomaly]
    anomalies_total: int
    starved_inputs: List[int]
    # Fault / degradation state (PR 4; zero-valued on fault-free traces).
    fault_events: int = 0
    repair_events: int = 0
    clrg_corruptions: int = 0
    max_failed_channels: int = 0
    final_failed_channels: List[int] = field(default_factory=list)
    final_stuck_inputs: List[int] = field(default_factory=list)
    degradation: Dict[int, Dict[str, float]] = field(default_factory=dict)
    # VOQ scheduler rounds (zero-valued on non-VOQ traces).
    sched_grants_by_iteration: Dict[int, int] = field(default_factory=dict)
    sched_accepts_by_iteration: Dict[int, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Derived values
    # ------------------------------------------------------------------
    @property
    def cycles(self) -> int:
        """Cycle span the trace covers (inclusive of both ends)."""
        if self.events == 0:
            return 0
        return self.last_cycle - self.first_cycle + 1

    @property
    def throughput_flits_per_cycle(self) -> float:
        return self.flits_ejected / self.cycles if self.cycles else 0.0

    @property
    def throughput_packets_per_cycle(self) -> float:
        return self.packets_ejected / self.cycles if self.cycles else 0.0

    def service_values(self) -> List[int]:
        """Per-input grant counts of every input that ever participated."""
        return [
            grants for grants, active
            in zip(self.per_input_grants, self.ever_active) if active
        ]

    @property
    def jain(self) -> Optional[float]:
        """Jain index of per-input service over the whole trace."""
        values = self.service_values()
        return jain_index(values) if values else None

    @property
    def max_min(self) -> Optional[float]:
        """Best-to-worst per-input service ratio (None when infinite)."""
        values = self.service_values()
        if not values:
            return None
        ratio = max_min_ratio(values)
        return None if math.isinf(ratio) else ratio

    @property
    def max_gap_cycles(self) -> int:
        """Longest grant gap any input saw while backlogged."""
        return max(self.per_input_max_gap, default=0)

    @property
    def max_gap_input(self) -> Optional[int]:
        if not self.per_input_max_gap or self.max_gap_cycles == 0:
            return None
        return self.per_input_max_gap.index(self.max_gap_cycles)

    @property
    def total_halvings(self) -> int:
        return sum(self.halvings_by_output.values())

    @property
    def degraded_throughput_ratio(self) -> Optional[float]:
        """Throughput with channels down relative to fully healthy.

        Delivered flits per cycle over every epoch with at least one
        failed channel, divided by the healthy-epoch rate.  ``None``
        when the trace lacks healthy epochs, degraded epochs, or any
        healthy throughput to normalise by.
        """
        healthy = self.degradation.get(0)
        if not healthy or not healthy.get("throughput_flits_per_cycle"):
            return None
        cycles = sum(
            entry["cycles"]
            for failed, entry in self.degradation.items() if failed > 0
        )
        if not cycles:
            return None
        ejected = sum(
            entry["ejected_flits"]
            for failed, entry in self.degradation.items() if failed > 0
        )
        return (ejected / cycles) / healthy["throughput_flits_per_cycle"]

    @property
    def sched_grants(self) -> int:
        """VOQ scheduler grant-stage events across all iterations."""
        return sum(self.sched_grants_by_iteration.values())

    @property
    def sched_accepts(self) -> int:
        """VOQ scheduler accepted pairs across all iterations."""
        return sum(self.sched_accepts_by_iteration.values())

    @property
    def sched_first_iteration_fraction(self) -> Optional[float]:
        """Share of accepted pairs matched in iteration 0.

        Under desynchronized iSLIP pointers this approaches 1.0 (every
        grant is accepted in the first round); extra iterations only
        matter while pointers still collide.  ``None`` on traces with
        no scheduler rounds.
        """
        total = self.sched_accepts
        if not total:
            return None
        return self.sched_accepts_by_iteration.get(0, 0) / total

    def busiest_resources(self) -> List[Dict[str, object]]:
        """Top resources by busy cycles, labelled from the trace meta."""
        radix = self.meta.get("radix", 0)
        layers = self.meta.get("layers", 0)
        cmult = self.meta.get("channel_multiplicity", 0)
        span = self.cycles
        ranked = sorted(
            self.resource_busy,
            key=lambda rid: (-self.resource_busy[rid], rid),
        )[: self.top_resources]
        return [
            {
                "resource": rid,
                "label": resource_label(rid, radix, layers, cmult),
                "busy_cycles": self.resource_busy[rid],
                "busy_frac": self.resource_busy[rid] / span if span else 0.0,
                "grants": self.resource_grants.get(rid, 0),
            }
            for rid in ranked
        ]

    # ------------------------------------------------------------------
    # Exports
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """The stable, JSON-serialisable audit summary (the schema)."""
        return {
            "schema": AUDIT_SCHEMA,
            "meta": dict(self.meta),
            "trace": {
                "records": self.records,
                "events": self.events,
                "dropped": self.dropped_events,
                "first_cycle": self.first_cycle,
                "last_cycle": self.last_cycle,
                "cycles": self.cycles,
                "counts_by_kind": dict(self.counts_by_kind),
            },
            "traffic": {
                "packets_injected": self.packets_injected,
                "flits_injected": self.flits_injected,
                "packets_ejected": self.packets_ejected,
                "flits_ejected": self.flits_ejected,
                "throughput_flits_per_cycle": self.throughput_flits_per_cycle,
                "throughput_packets_per_cycle": (
                    self.throughput_packets_per_cycle
                ),
            },
            "service": {
                "per_input_grants": list(self.per_input_grants),
                "per_input_p2_blocks": list(self.per_input_p2_blocks),
                "active_inputs": sum(1 for a in self.ever_active if a),
            },
            "fairness": {
                "jain": self.jain,
                "max_min": self.max_min,
                "window": self.window,
                "threshold": self.fairness_threshold,
                "max_min_threshold": self.max_min_threshold,
                "epochs": self.epochs_total,
                "unfair_epochs": self.unfair_epochs,
                "unfair_epoch_fraction": (
                    self.unfair_epochs / self.epochs_total
                    if self.epochs_total else 0.0
                ),
                "jain_epoch_mean": self.jain_epoch_mean,
                "jain_epoch_min": self.jain_epoch_min,
                "jain_epoch_min_epoch": self.jain_epoch_min_epoch,
            },
            "starvation": {
                "max_gap_cycles": self.max_gap_cycles,
                "max_gap_input": self.max_gap_input,
                "gap_limit": self.starvation_gap,
                "starved_inputs": list(self.starved_inputs),
                "per_input_max_gap": list(self.per_input_max_gap),
            },
            "clrg": {
                "class_grants": {
                    str(cls): count
                    for cls, count in sorted(self.class_grants.items())
                },
                "halvings": self.total_halvings,
                "halvings_by_output": {
                    str(output): count
                    for output, count in sorted(
                        self.halvings_by_output.items()
                    )
                },
            },
            "utilization": {
                "busiest": self.busiest_resources(),
                "resources_observed": len(self.resource_busy),
            },
            "epochs": {
                "stride": self.epoch_stride,
                "stored": len(self.epochs),
                "records": [epoch.to_dict() for epoch in self.epochs],
            },
            "anomalies": {
                "count": self.anomalies_total,
                "dropped": self.anomalies_total - len(self.anomalies),
                "items": [anomaly.to_dict() for anomaly in self.anomalies],
            },
            # Additive (not schema-required): fault-free traces report
            # zeros so baselines recorded before PR 4 still compare.
            "faults": {
                "fault_events": self.fault_events,
                "repair_events": self.repair_events,
                "clrg_corruptions": self.clrg_corruptions,
                "max_failed_channels": self.max_failed_channels,
                "final_failed_channels": list(self.final_failed_channels),
                "final_stuck_inputs": list(self.final_stuck_inputs),
                "degraded_throughput_ratio": self.degraded_throughput_ratio,
                "degradation": {
                    str(failed): dict(entry)
                    for failed, entry in sorted(self.degradation.items())
                },
            },
            # Additive (not schema-required): zero-valued on non-VOQ
            # traces, so pre-existing baselines still compare.
            "scheduler": {
                "grants": self.sched_grants,
                "accepts": self.sched_accepts,
                "grants_by_iteration": {
                    str(iteration): count
                    for iteration, count in sorted(
                        self.sched_grants_by_iteration.items()
                    )
                },
                "accepts_by_iteration": {
                    str(iteration): count
                    for iteration, count in sorted(
                        self.sched_accepts_by_iteration.items()
                    )
                },
                "first_iteration_fraction":
                    self.sched_first_iteration_fraction,
            },
        }

    def to_stats(self, registry, prefix: str = "audit") -> None:
        """Export the headline audit numbers onto a stats registry."""
        registry.scalar(
            f"{prefix}.cycles", "cycle span of the trace"
        ).set(self.cycles)
        registry.scalar(
            f"{prefix}.events", "trace events analyzed"
        ).set(self.events)
        registry.scalar(
            f"{prefix}.packets_ejected", "packets delivered in the trace"
        ).set(self.packets_ejected)
        registry.scalar(
            f"{prefix}.throughput_flits_per_cycle",
            "delivered flits per cycle",
        ).set(self.throughput_flits_per_cycle)
        jain = self.jain
        registry.scalar(
            f"{prefix}.fairness.jain",
            "Jain index of per-input service",
        ).set(jain if jain is not None else float("nan"))
        registry.scalar(
            f"{prefix}.fairness.unfair_epochs",
            f"epochs below the fairness thresholds (window {self.window})",
        ).set(self.unfair_epochs)
        registry.scalar(
            f"{prefix}.fairness.epochs", "fairness epochs evaluated"
        ).set(self.epochs_total)
        registry.scalar(
            f"{prefix}.starvation.max_gap",
            "longest backlogged grant gap (cycles)",
        ).set(self.max_gap_cycles)
        registry.scalar(
            f"{prefix}.clrg.halvings", "CLRG class-bank halvings"
        ).set(self.total_halvings)
        registry.scalar(
            f"{prefix}.anomalies", "anomalies flagged by the audit"
        ).set(self.anomalies_total)
        if self.fault_events or self.repair_events:
            registry.scalar(
                f"{prefix}.faults.injected", "fault injections in the trace"
            ).set(self.fault_events)
            registry.scalar(
                f"{prefix}.faults.repaired", "fault repairs in the trace"
            ).set(self.repair_events)
            registry.scalar(
                f"{prefix}.faults.max_failed_channels",
                "peak simultaneously failed channels",
            ).set(self.max_failed_channels)
            ratio = self.degraded_throughput_ratio
            if ratio is not None:
                registry.scalar(
                    f"{prefix}.faults.degraded_throughput_ratio",
                    "degraded vs healthy delivered throughput",
                ).set(ratio)
        if self.per_input_grants:
            registry.vector(
                f"{prefix}.per_input_grants", len(self.per_input_grants),
                "phase-2 grants by primary input",
            ).load(self.per_input_grants)


# ---------------------------------------------------------------------------
# Schema validation (used by tests, the CLI, and the CI smoke job)
# ---------------------------------------------------------------------------
_SUMMARY_SECTIONS: Dict[str, Tuple[str, ...]] = {
    "trace": ("records", "events", "cycles", "counts_by_kind"),
    "traffic": (
        "packets_injected", "packets_ejected", "flits_ejected",
        "throughput_flits_per_cycle",
    ),
    "service": ("per_input_grants", "active_inputs"),
    "fairness": (
        "jain", "window", "threshold", "epochs", "unfair_epochs",
        "unfair_epoch_fraction",
    ),
    "starvation": ("max_gap_cycles", "gap_limit", "starved_inputs"),
    "clrg": ("class_grants", "halvings"),
    "utilization": ("busiest",),
    "epochs": ("stride", "stored", "records"),
    "anomalies": ("count", "items"),
}


def validate_audit_summary(summary: Dict[str, object]) -> Dict[str, object]:
    """Validate an audit summary dict against the v1 schema.

    Returns the summary unchanged for chaining.

    Raises:
        ValueError: On a wrong schema tag or a missing section/field.
    """
    if not isinstance(summary, dict):
        raise ValueError("audit summary must be an object")
    schema = summary.get("schema")
    if schema != AUDIT_SCHEMA:
        raise ValueError(
            f"unsupported audit schema: {schema!r} (want {AUDIT_SCHEMA!r})"
        )
    for section, fields in _SUMMARY_SECTIONS.items():
        body = summary.get(section)
        if not isinstance(body, dict):
            raise ValueError(f"audit summary missing section {section!r}")
        for name in fields:
            if name not in body:
                raise ValueError(
                    f"audit summary section {section!r} missing {name!r}"
                )
    return summary


# ---------------------------------------------------------------------------
# Baseline comparison (run-to-run regression detection)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class AuditRegression:
    """One audited metric that moved outside tolerance vs a baseline."""

    metric: str
    baseline: float
    current: float
    limit: float

    def __str__(self) -> str:
        return (
            f"{self.metric}: {self.current:.6g} vs baseline "
            f"{self.baseline:.6g} (allowed {self.limit:.6g})"
        )


#: Compared summary metrics and their good direction.
COMPARED_METRICS: Tuple[Tuple[str, str], ...] = (
    ("traffic.throughput_flits_per_cycle", "higher"),
    ("traffic.packets_ejected", "higher"),
    ("fairness.jain", "higher"),
    ("fairness.jain_epoch_min", "higher"),
    ("fairness.unfair_epoch_fraction", "lower"),
    ("starvation.max_gap_cycles", "lower"),
    ("anomalies.count", "lower"),
)


def _lookup(summary: Dict[str, object], path: str):
    value: object = summary
    for part in path.split("."):
        if not isinstance(value, dict):
            return None
        value = value.get(part)
    return value


def compare_audits(
    current: Dict[str, object],
    baseline: Dict[str, object],
    rel_tol: float = 0.05,
    abs_tol: float = 0.0,
) -> List[AuditRegression]:
    """Diff two audit summaries; return every out-of-tolerance metric.

    Each metric in :data:`COMPARED_METRICS` may move in its good
    direction freely; in the bad direction it may move by at most
    ``rel_tol`` (relative to the baseline) plus ``abs_tol``.  A metric
    missing or null on either side is skipped.  An empty return means
    no regression (`repro audit --against` exits 0).
    """
    if rel_tol < 0 or abs_tol < 0:
        raise ValueError("tolerances must be non-negative")
    regressions: List[AuditRegression] = []
    for path, direction in COMPARED_METRICS:
        base = _lookup(baseline, path)
        cur = _lookup(current, path)
        if not isinstance(base, (int, float)) or not isinstance(
            cur, (int, float)
        ):
            continue
        if direction == "higher":
            limit = base * (1.0 - rel_tol) - abs_tol
            if cur < limit - 1e-12:
                regressions.append(AuditRegression(path, base, cur, limit))
        else:
            limit = base * (1.0 + rel_tol) + abs_tol
            if cur > limit + 1e-12:
                regressions.append(AuditRegression(path, base, cur, limit))
    return regressions

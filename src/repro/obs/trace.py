"""Cycle-level event tracing for the switch kernels.

A :class:`SwitchTracer` is handed to a switch at construction
(``HiRiseSwitch(config, tracer=...)`` or
``ReferenceHiRiseSwitch(config, tracer=...)``) and receives every
observable arbitration and datapath event: injections, ejections,
phase-1 (local) grants, phase-2 (inter-layer) grants and losses,
viability rejections, path cooldowns (with the grant cycle, so path
occupancy intervals come for free), CLRG counter halvings, and drain
stalls.  Tracing is *opt-in at construction*: an untraced switch keeps
its hot loop byte-for-byte on the fast path behind a single predictable
``tracer is None`` check per cycle, and traced runs are bit-identical to
untraced runs (the tracer only observes, never decides).

Events are buffered as compact integer tuples
``(cycle, kind, a, b, c, d)`` and exported in two formats:

* **JSONL** — one self-describing record per line (plus a leading
  ``meta`` record), the stable machine-readable schema
  (:data:`EVENT_FIELDS`, checked by :func:`validate_jsonl_path`);
* **Chrome ``trace_event``** — a timeline JSON loadable in
  ``chrome://tracing`` / Perfetto: one "thread" per switch resource with
  a complete ("X") event per path hold, instant events for CLRG
  halvings and drain stalls, and a per-cycle ejected-flit counter track.
"""

import json
from collections import Counter
from typing import IO, Dict, Iterable, Iterator, List, Optional, Tuple, Union

#: Trace format version, written into the JSONL meta record.
TRACE_VERSION = 1

# ---------------------------------------------------------------------------
# Event kinds
# ---------------------------------------------------------------------------
INJECT = 0       #: packet entered a source queue
EJECT = 1        #: flit left the switch at its output
P1_GRANT = 2     #: phase-1 (local switch) grant of a resource
P2_GRANT = 3     #: phase-2 (inter-layer) grant: full path locked
P2_BLOCK = 4     #: phase-1 winner lost the inter-layer arbitration
VIA_BLOCK = 5    #: an idle input had head flits but no viable request
COOL = 6         #: path released (tail transferred); cooling this cycle
CLRG_HALVE = 7   #: a CLRG class-counter bank halved
DRAIN_STALL = 8  #: drain loop made no progress for the idle limit
FAULT_INJECT = 9  #: a scheduled fault was applied to the switch
FAULT_REPAIR = 10  #: a scheduled fault was repaired (channel/input re-armed)
INVARIANT = 11   #: a runtime invariant check failed (raised right after)
SCHED_GRANT = 12   #: VOQ scheduler grant stage: an output granted an input
SCHED_ACCEPT = 13  #: VOQ scheduler accept stage: an input accepted an output

#: ``fault_inject``/``fault_repair`` fault-class codes (the ``fault``
#: payload slot): what kind of component the event hit.
FAULT_CHANNEL = 0  #: an L2LC (TSV bundle) failed or was repaired
FAULT_INPUT = 1    #: an input port stuck (stopped requesting) / recovered
FAULT_CLRG = 2     #: a sub-block's CLRG class-counter bank was corrupted

#: Fault-class code -> wire name (used in summaries and reports).
FAULT_NAMES: Dict[int, str] = {
    FAULT_CHANNEL: "channel",
    FAULT_INPUT: "input",
    FAULT_CLRG: "clrg",
}

#: Event kind -> wire name used in the JSONL export.
EVENT_NAMES: Dict[int, str] = {
    INJECT: "inject",
    EJECT: "eject",
    P1_GRANT: "p1_grant",
    P2_GRANT: "p2_grant",
    P2_BLOCK: "p2_block",
    VIA_BLOCK: "via_block",
    COOL: "cool",
    CLRG_HALVE: "clrg_halve",
    DRAIN_STALL: "drain_stall",
    FAULT_INJECT: "fault_inject",
    FAULT_REPAIR: "fault_repair",
    INVARIANT: "invariant",
    SCHED_GRANT: "sched_grant",
    SCHED_ACCEPT: "sched_accept",
}

#: Event kind -> names of the payload slots ``(a, b, c, d)`` actually
#: used by that kind (unused trailing slots are not serialised).
#:
#: * ``inject``: src port, dst port, packet length in flits, packet id.
#: * ``eject``: src port, dst port, flit sequence number, tail flag.
#: * ``p1_grant``: resource id, winning input, requested output, weight
#:   (live requestor count, the WLRG weight).
#: * ``p2_grant``: resource id, input, output, winner's CLRG class
#:   after the commit (-1 under non-CLRG schemes).
#: * ``p2_block``: resource id, input, output it lost.
#: * ``via_block``: input port, blocked destination, reason code
#:   (0 = output busy, 1 = output cooling, 2 = resource busy,
#:   3 = resource cooling, 4 = every channel toward the destination
#:   layer has failed).
#: * ``cool``: resource id, input, output, cycle the path was granted.
#: * ``clrg_halve``: output whose bank halved, total halvings so far.
#: * ``drain_stall``: consecutive idle cycles, flits still inside.
#: * ``fault_inject``: fault-class code (0 = channel, 1 = input,
#:   2 = clrg), target (flat resource id of the failed channel / stuck
#:   input port / corrupted output), aux detail (corrupted counter value
#:   for clrg faults, 0 otherwise).
#: * ``fault_repair``: fault-class code, target (same encoding).
#: * ``invariant``: check code (see
#:   :data:`repro.check.invariants.CHECK_CODES`), first implicated flat
#:   resource/port id (-1 if none), aux detail.  Emitted at most once
#:   per run, immediately before the checker raises.
#: * ``sched_grant``: iteration number, granting output, granted input,
#:   VOQ occupancy of the granted pair (the scheduler's edge weight).
#:   Emitted once per output per iSLIP iteration; MWM emits its final
#:   matching as iteration-0 grants.
#: * ``sched_accept``: iteration number, accepting input, accepted
#:   output, VOQ occupancy of the matched pair.  An accepted pair in
#:   iteration 0 commits the iSLIP pointer updates (desynchronization).
EVENT_FIELDS: Dict[int, Tuple[str, ...]] = {
    INJECT: ("src", "dst", "num_flits", "packet_id"),
    EJECT: ("src", "dst", "seq", "tail"),
    P1_GRANT: ("resource", "input", "output", "weight"),
    P2_GRANT: ("resource", "input", "output", "cls"),
    P2_BLOCK: ("resource", "input", "output"),
    VIA_BLOCK: ("input", "dst", "reason"),
    COOL: ("resource", "input", "output", "granted"),
    CLRG_HALVE: ("output", "halvings"),
    DRAIN_STALL: ("idle_cycles", "occupancy"),
    FAULT_INJECT: ("fault", "target", "aux"),
    FAULT_REPAIR: ("fault", "target"),
    INVARIANT: ("check", "resource", "aux"),
    SCHED_GRANT: ("iteration", "output", "input", "weight"),
    SCHED_ACCEPT: ("iteration", "input", "output", "weight"),
}

#: ``via_block`` reason codes.
REASON_OUTPUT_BUSY = 0
REASON_OUTPUT_COOLING = 1
REASON_RESOURCE_BUSY = 2
REASON_RESOURCE_COOLING = 3
REASON_CHANNEL_FAILED = 4

_NAME_TO_KIND = {name: kind for kind, name in EVENT_NAMES.items()}

#: Default event-buffer capacity (events beyond it are counted, not kept).
DEFAULT_CAPACITY = 1 << 20


class SwitchTracer:
    """Buffers cycle-level switch events as compact integer tuples.

    Args:
        capacity: Maximum number of buffered events; once full, further
            events are dropped (and counted in :attr:`dropped`) instead
            of growing memory without bound.  ``None`` means unbounded.

    A tracer is bound to the switch it is constructed with (the switch
    calls :meth:`bind` so exports can name resources); reusing one
    tracer across switches concatenates their events under the last
    bound configuration.
    """

    __slots__ = ("events", "cycle", "capacity", "dropped", "config")

    def __init__(self, capacity: Optional[int] = DEFAULT_CAPACITY) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("tracer capacity must be >= 1 or None")
        self.events: List[Tuple[int, int, int, int, int, int]] = []
        self.cycle = 0
        self.capacity = capacity
        self.dropped = 0
        self.config = None

    def bind(self, switch) -> None:
        """Attach the switch's configuration (resource naming for exports)."""
        self.config = getattr(switch, "config", None)

    # ------------------------------------------------------------------
    # Emission (called from the traced switch step)
    # ------------------------------------------------------------------
    def emit(self, kind: int, a: int = 0, b: int = 0, c: int = 0,
             d: int = 0) -> None:
        """Append one event at the tracer's current cycle."""
        if self.capacity is not None and len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append((self.cycle, kind, a, b, c, d))

    def inject(self, cycle: int, src: int, dst: int, num_flits: int,
               packet_id: int) -> None:
        """Injection events carry their own cycle (they precede step())."""
        if self.capacity is not None and len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append((cycle, INJECT, src, dst, num_flits, packet_id))

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def counts_by_kind(self) -> Dict[str, int]:
        """Event counts keyed by wire name (for summaries and tests)."""
        counted = Counter(event[1] for event in self.events)
        return {EVENT_NAMES[kind]: count for kind, count in counted.items()}

    def halving_events(self) -> List[Tuple[int, int, int]]:
        """All CLRG halvings as ``(cycle, output, total_halvings)``."""
        return [
            (cycle, a, b)
            for cycle, kind, a, b, _c, _d in self.events
            if kind == CLRG_HALVE
        ]

    def resource_name(self, resource_id: int) -> str:
        """Human-readable name of a flat resource id (export labelling)."""
        config = self.config
        if config is not None:
            try:
                key = config.resource_key_table[resource_id]
            except IndexError:
                return f"res{resource_id}"
            if key[0] == "int":
                return f"int L{key[1]}.{key[2]}"
            return f"ch L{key[1]}->L{key[2]}#{key[3]}"
        return f"res{resource_id}"

    # ------------------------------------------------------------------
    # JSONL export
    # ------------------------------------------------------------------
    def records(self) -> Iterator[Dict[str, object]]:
        """Self-describing dict per event, meta record first."""
        meta: Dict[str, object] = {
            "event": "meta",
            "version": TRACE_VERSION,
            "events": len(self.events),
            "dropped": self.dropped,
        }
        config = self.config
        if config is not None:
            meta.update(
                radix=config.radix,
                layers=config.layers,
                channel_multiplicity=config.channel_multiplicity,
                arbitration=str(config.arbitration.value),
                allocation=str(config.allocation.value),
            )
        yield meta
        fields = EVENT_FIELDS
        names = EVENT_NAMES
        for cycle, kind, a, b, c, d in self.events:
            record: Dict[str, object] = {"cycle": cycle, "event": names[kind]}
            payload = (a, b, c, d)
            for index, field in enumerate(fields[kind]):
                record[field] = payload[index]
            yield record

    def write_jsonl(self, destination: Union[str, IO[str]]) -> int:
        """Write the JSONL export; returns the number of records written."""
        if hasattr(destination, "write"):
            return self._write_jsonl(destination)
        with open(destination, "w", encoding="utf-8") as handle:
            return self._write_jsonl(handle)

    def _write_jsonl(self, handle: IO[str]) -> int:
        count = 0
        for record in self.records():
            handle.write(json.dumps(record, separators=(",", ":")) + "\n")
            count += 1
        return count

    # ------------------------------------------------------------------
    # Chrome trace_event export
    # ------------------------------------------------------------------
    def chrome_trace(self) -> Dict[str, object]:
        """Chrome ``trace_event`` JSON (1 simulated cycle = 1 us).

        Tracks: pid 0 holds one thread per switch resource with an "X"
        (complete) slice per path hold — built from ``cool`` events,
        which carry the grant cycle — plus slices for paths still open
        at export time; pid 1 carries instant events (CLRG halvings per
        output, drain stalls); pid 2 carries an ``ejected_flits``
        counter sampled on every cycle that ejected at least one flit.
        """
        return {
            "traceEvents": list(
                iter_chrome_events(self.events, self.resource_name)
            ),
            "displayTimeUnit": "ms",
        }

    def write_chrome(self, destination: Union[str, IO[str]]) -> int:
        """Stream the Chrome trace; returns the number of trace events.

        Events are serialised record-by-record, so memory stays bounded
        regardless of trace size (the event *source* here is the
        in-memory tuple buffer; the binary tracer streams from columns).
        """
        return write_chrome_stream(
            destination, iter_chrome_events(self.events, self.resource_name)
        )


def iter_chrome_events(events, resource_name) -> Iterator[Dict[str, object]]:
    """Generate Chrome ``trace_event`` dicts from raw event tuples.

    Shared by :class:`SwitchTracer`, the binary tracer, and the
    ``--convert`` CLI path.  Streaming: per-cycle ejected-flit counter
    samples flush as soon as the eject cycle advances (eject cycles are
    non-decreasing in every kernel's stream), so the only state held
    across the sweep is the open-path table and the resource-name set.

    Args:
        events: Iterable of ``(cycle, kind, a, b, c, d)`` tuples.
        resource_name: ``callable(resource_id) -> str`` for labelling.
    """
    yield {"ph": "M", "pid": 0, "name": "process_name",
           "args": {"name": "switch paths"}}
    yield {"ph": "M", "pid": 1, "name": "process_name",
           "args": {"name": "arbitration"}}
    yield {"ph": "M", "pid": 2, "name": "process_name",
           "args": {"name": "throughput"}}
    named_resources = set()
    open_paths: Dict[int, Tuple[int, int, int]] = {}  # input -> state
    eject_cycle = -1
    eject_count = 0
    last_cycle = 0

    def name_resource(resource: int) -> Optional[Dict[str, object]]:
        if resource in named_resources:
            return None
        named_resources.add(resource)
        return {"ph": "M", "pid": 0, "tid": resource, "name": "thread_name",
                "args": {"name": resource_name(resource)}}

    for cycle, kind, a, b, c, d in events:
        cycle = int(cycle)
        kind = int(kind)
        last_cycle = cycle if cycle > last_cycle else last_cycle
        if kind == P2_GRANT:
            open_paths[int(b)] = (cycle, int(a), int(c))
        elif kind == COOL:
            naming = name_resource(int(a))
            if naming is not None:
                yield naming
            start = int(d) if d >= 0 else cycle
            yield {"name": f"in{b} -> out{c}", "cat": "path", "ph": "X",
                   "ts": start, "dur": max(cycle - start, 1),
                   "pid": 0, "tid": int(a)}
            open_paths.pop(int(b), None)
        elif kind == EJECT:
            if cycle != eject_cycle:
                if eject_count:
                    yield {"name": "ejected_flits", "ph": "C",
                           "ts": eject_cycle, "pid": 2,
                           "args": {"flits": eject_count}}
                eject_cycle = cycle
                eject_count = 0
            eject_count += 1
        elif kind == CLRG_HALVE:
            yield {"name": "clrg_halve", "cat": "clrg", "ph": "i",
                   "ts": cycle, "pid": 1, "tid": int(a), "s": "t",
                   "args": {"output": int(a), "halvings": int(b)}}
        elif kind == DRAIN_STALL:
            yield {"name": "drain_stall", "cat": "engine", "ph": "i",
                   "ts": cycle, "pid": 1, "tid": 0, "s": "g",
                   "args": {"idle_cycles": int(a), "occupancy": int(b)}}
        elif kind == FAULT_INJECT or kind == FAULT_REPAIR:
            verb = "fault" if kind == FAULT_INJECT else "repair"
            kind_name = FAULT_NAMES.get(int(a), str(a))
            target = (
                resource_name(int(b)) if a == FAULT_CHANNEL else str(b)
            )
            yield {"name": f"{verb}:{kind_name} {target}", "cat": "fault",
                   "ph": "i", "ts": cycle, "pid": 1, "tid": 0, "s": "g",
                   "args": {"fault": kind_name, "target": int(b),
                            "aux": int(c)}}
    if eject_count:
        yield {"name": "ejected_flits", "ph": "C", "ts": eject_cycle,
               "pid": 2, "args": {"flits": eject_count}}
    # Paths still streaming when the trace ended.
    for input_port, (start, resource, output) in open_paths.items():
        naming = name_resource(resource)
        if naming is not None:
            yield naming
        yield {"name": f"in{input_port} -> out{output} (open)",
               "cat": "path", "ph": "X", "ts": start,
               "dur": max(last_cycle - start, 1), "pid": 0, "tid": resource}


def write_chrome_stream(destination: Union[str, IO[str]],
                        events: Iterable[Dict[str, object]]) -> int:
    """Serialise Chrome trace events record-by-record; returns the count.

    Writes the ``traceEvents`` container incrementally instead of
    materialising the full event list, so exporting an arbitrarily large
    trace runs in bounded memory.
    """
    if not hasattr(destination, "write"):
        with open(destination, "w", encoding="utf-8") as handle:
            return write_chrome_stream(handle, events)
    destination.write('{"traceEvents": [')
    count = 0
    for event in events:
        if count:
            destination.write(", ")
        destination.write(json.dumps(event))
        count += 1
    destination.write('], "displayTimeUnit": "ms"}')
    return count


# ---------------------------------------------------------------------------
# Schema validation (used by tests, the CLI, and the CI smoke job)
# ---------------------------------------------------------------------------
def validate_record(record: Dict[str, object]) -> None:
    """Validate one JSONL event record against the schema.

    Raises:
        ValueError: On a missing/unknown event name, a missing field, or
            a non-integer cycle/field value.
    """
    event = record.get("event")
    if event == "meta":
        version = record.get("version")
        if not isinstance(version, int):
            raise ValueError("meta record missing integer 'version'")
        return
    kind = _NAME_TO_KIND.get(event)
    if kind is None:
        raise ValueError(f"unknown event name: {event!r}")
    cycle = record.get("cycle")
    if not isinstance(cycle, int) or cycle < 0:
        raise ValueError(f"{event}: cycle must be a non-negative integer")
    for field in EVENT_FIELDS[kind]:
        value = record.get(field)
        if not isinstance(value, int):
            raise ValueError(f"{event}: field {field!r} missing or not an int")


def validate_records(records: Iterable[Dict[str, object]]) -> int:
    """Validate an iterable of records (meta first); returns the count.

    Raises:
        ValueError: On an empty stream, a stream not starting with a
            meta record, or any invalid record.
    """
    count = 0
    for index, record in enumerate(records):
        if index == 0 and record.get("event") != "meta":
            raise ValueError("trace must start with a meta record")
        validate_record(record)
        count += 1
    if count == 0:
        raise ValueError("empty trace")
    return count


def validate_jsonl_path(path) -> int:
    """Validate a JSONL trace file; returns the record count."""
    with open(path, "r", encoding="utf-8") as handle:
        return validate_records(
            json.loads(line) for line in handle if line.strip()
        )


def validate_chrome(trace: Dict[str, object]) -> int:
    """Validate a Chrome trace_event dict; returns the event count.

    Raises:
        ValueError: If the container or any event is malformed.
    """
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("chrome trace needs a non-empty traceEvents list")
    for event in events:
        if not isinstance(event, dict):
            raise ValueError("trace event must be an object")
        phase = event.get("ph")
        if phase not in ("X", "i", "C", "M", "B", "E"):
            raise ValueError(f"unknown trace event phase: {phase!r}")
        if "name" not in event or "pid" not in event:
            raise ValueError("trace event needs 'name' and 'pid'")
        if phase != "M":
            ts = event.get("ts")
            if not isinstance(ts, int) or ts < 0:
                raise ValueError("timed trace event needs integer 'ts' >= 0")
        if phase == "X" and not isinstance(event.get("dur"), int):
            raise ValueError("complete ('X') event needs integer 'dur'")
    return len(events)


def validate_chrome_path(path) -> int:
    """Validate a Chrome trace file; returns the event count."""
    with open(path, "r", encoding="utf-8") as handle:
        return validate_chrome(json.load(handle))

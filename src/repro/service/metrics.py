"""Service-level counters, exported through the Prometheus renderer.

One :class:`ServiceMetrics` per daemon: monotonic counters for the
admission path (accepted / shed / quarantined-rejected), the execution
path (completed, failed, simulations actually run, executor retries /
crashes / timeouts), and the cache (hits, misses, corrupt entries
quarantined), plus live gauges (queue depth, in-flight jobs, open
breaker circuits).  Exported onto a
:class:`~repro.obs.stats.StatsRegistry` under the ``service.`` prefix,
which the existing Prometheus text renderer turns into a scrape —
the service's live view is the same machinery every other subsystem
already reports through.

The counters are also the test surface for the service's headline
claims: "zero re-simulations after restart" is literally
``simulations == 0`` with ``cache_hits > 0``.
"""

import threading
from typing import Callable, Dict, Optional

_COUNTERS = (
    "accepted",
    "rejected_overload",
    "rejected_quarantined",
    "rejected_invalid",
    "coalesced",
    "completed",
    "failed",
    "simulations",
    "cache_hits",
    "cache_misses",
    "cache_corrupt",
    "retries",
    "crashes",
    "timeouts",
)

_COUNTER_HELP = {
    "accepted": "jobs admitted to the queue",
    "rejected_overload": "submissions shed by queue backpressure",
    "rejected_quarantined": "submissions refused by an open circuit",
    "rejected_invalid": "submissions refused by spec validation",
    "coalesced": "submissions attached to an in-flight duplicate",
    "completed": "jobs finished successfully",
    "failed": "jobs that reached the failed state",
    "simulations": "jobs actually computed (not served from cache)",
    "cache_hits": "results served from the content-addressed cache",
    "cache_misses": "cache lookups that missed",
    "cache_corrupt": "corrupt cache entries detected and quarantined",
    "retries": "executor retry events",
    "crashes": "worker crash events",
    "timeouts": "task timeout events",
}


class ServiceMetrics:
    """Thread-safe counter/gauge bundle for one daemon instance."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {name: 0 for name in _COUNTERS}
        self.queue_depth_fn: Optional[Callable[[], int]] = None
        self.inflight_fn: Optional[Callable[[], int]] = None
        self.breaker_open_fn: Optional[Callable[[], int]] = None

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment a counter (``ValueError`` on unknown names)."""
        if name not in self._counts:
            raise ValueError(f"unknown service counter {name!r}")
        with self._lock:
            self._counts[name] += amount

    def value(self, name: str) -> int:
        """One counter's current value."""
        with self._lock:
            return self._counts[name]

    def counters(self) -> Dict[str, int]:
        """Snapshot of every counter (a fresh dict)."""
        with self._lock:
            return dict(self._counts)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def _gauges(self) -> Dict[str, int]:
        return {
            "queue_depth": self.queue_depth_fn() if self.queue_depth_fn else 0,
            "inflight": self.inflight_fn() if self.inflight_fn else 0,
            "breaker_open": (
                self.breaker_open_fn() if self.breaker_open_fn else 0
            ),
        }

    def snapshot(self) -> Dict[str, int]:
        """Counters and gauges in one flat dict (wire/metrics op)."""
        snapshot = self.counters()
        snapshot.update(self._gauges())
        return snapshot

    def to_stats(self, registry, prefix: str = "service") -> None:
        """Export onto a :class:`~repro.obs.stats.StatsRegistry`."""
        for name, value in self.counters().items():
            registry.scalar(
                f"{prefix}.{name}", _COUNTER_HELP[name], value
            )
        gauges = self._gauges()
        registry.scalar(
            f"{prefix}.queue_depth", "jobs waiting in the bounded queue",
            gauges["queue_depth"],
        )
        registry.scalar(
            f"{prefix}.inflight", "jobs currently dispatched",
            gauges["inflight"],
        )
        registry.scalar(
            f"{prefix}.breaker_open", "fingerprints with an open circuit",
            gauges["breaker_open"],
        )

    def to_prometheus(self, namespace: str = "repro") -> str:
        """Prometheus text exposition of the live counters and gauges."""
        from repro.obs.stats import StatsRegistry

        registry = StatsRegistry()
        self.to_stats(registry)
        return registry.to_prometheus(namespace=namespace)

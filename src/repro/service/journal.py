"""Write-ahead job journal (``repro.service/v1`` JSONL).

The journal is what makes the daemon crash-safe: a job is **journaled
before it is queued** (write-ahead), and journaled again when it
reaches a terminal state.  After a ``kill -9``, replaying the journal
partitions history into *settled* jobs (an ``accepted`` line with a
matching ``done`` line — their results live in the content-addressed
cache) and *unsettled* jobs (``accepted`` without ``done``) that the
restarted daemon re-enqueues.  Jobs being pure functions of their
specs, the replayed run's results are bit-identical to the run the
crash interrupted.

The file format follows the house crash-journal rules (shared reader in
:mod:`repro.util.jsonl`): a header line pinning the format tag, one
flushed JSON line per event, torn trailing lines tolerated and dropped.
A torn ``accepted`` line means the client never got its acknowledgment
(the response is sent only after the journal write returns), so
dropping it breaks no promise; a torn ``done`` line re-runs one job
into a cache hit.
"""

from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.service.jobs import SERVICE_FORMAT
from repro.util.jsonl import append_jsonl, read_jsonl


class JobJournal:
    """Append-only write-ahead log of job admissions and completions."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fresh = not self.path.exists()
        self._handle = open(self.path, "a", encoding="utf-8")
        if fresh:
            append_jsonl(self._handle, {
                "format": SERVICE_FORMAT, "event": "header",
            })

    # ------------------------------------------------------------------
    # Write-ahead events
    # ------------------------------------------------------------------
    def accepted(self, job_id: str, fingerprint: str,
                 spec: Dict[str, object], priority: int) -> None:
        """Journal an admission — called BEFORE the job is queued."""
        append_jsonl(self._handle, {
            "event": "accepted", "job_id": job_id,
            "fingerprint": fingerprint, "priority": priority,
            "spec": spec,
        })

    def done(self, job_id: str, state: str, source: str,
             error: Optional[str] = None) -> None:
        """Journal a terminal state (``completed`` or ``failed``)."""
        append_jsonl(self._handle, {
            "event": "done", "job_id": job_id, "state": state,
            "source": source, "error": error,
        })

    def close(self) -> None:
        """Release the journal's append handle."""
        self._handle.close()

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    @classmethod
    def replay(cls, path: Union[str, Path]) -> Tuple[
        List[Dict[str, object]], Dict[str, Dict[str, object]], int
    ]:
        """Recover ``(unsettled, settled, next_sequence)`` from a journal.

        ``unsettled`` is the accepted-but-unfinished jobs in admission
        order (each the journaled admission record); ``settled`` maps
        job id to its terminal record merged over the admission.
        ``next_sequence`` is one past the highest numeric suffix of any
        ``job-N`` id, so a restarted daemon never reuses an id.  A
        missing journal replays as empty.  Lines that decode but are
        not this format's events raise ``ValueError`` (wrong file —
        not corruption, which the tolerant reader already dropped).
        """
        accepted: Dict[str, Dict[str, object]] = {}
        order: List[str] = []
        settled: Dict[str, Dict[str, object]] = {}
        next_sequence = 0
        rows = read_jsonl(path, missing_ok=True)
        for row in rows:
            if not isinstance(row, dict):
                continue
            event = row.get("event")
            if event == "header":
                if row.get("format") != SERVICE_FORMAT:
                    raise ValueError(
                        f"{path}: not a {SERVICE_FORMAT} journal "
                        f"(format={row.get('format')!r})"
                    )
                continue
            if event == "accepted":
                job_id = row.get("job_id")
                if not isinstance(job_id, str):
                    continue
                accepted[job_id] = row
                order.append(job_id)
                if job_id.startswith("job-"):
                    try:
                        next_sequence = max(
                            next_sequence, int(job_id[4:]) + 1
                        )
                    except ValueError:
                        pass
            elif event == "done":
                job_id = row.get("job_id")
                if isinstance(job_id, str) and job_id in accepted:
                    settled[job_id] = {**accepted[job_id], **row}
            else:
                raise ValueError(
                    f"{path}: unknown journal event {event!r}"
                )
        unsettled = [
            accepted[job_id] for job_id in order if job_id not in settled
        ]
        return unsettled, settled, next_sequence

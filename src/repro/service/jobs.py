"""Job specifications, fingerprints, and the worker-side executor.

A *job* is one unit of work a client submits to the sweep service: a
single simulation, a load sweep, a trace audit, or a fuzz campaign —
each a **pure function of its specification**.  That purity is the
load-bearing property of the whole service: it makes results
content-addressable (the same spec always produces the same payload, so
a cache entry keyed by the spec's fingerprint can be served forever),
makes crash recovery trivial (re-running an interrupted job cannot
produce a different answer), and makes the kill-and-restart equivalence
the tests pin actually hold.

Specs travel as plain JSON dicts.  :func:`normalize_spec` validates a
client's dict and fills defaults so that any two specs meaning the same
work normalize identically; :func:`job_fingerprint` hashes the
normalized spec — with the embedded :class:`~repro.core.config.HiRiseConfig`
reduced to its order-normalized :func:`repro.obs.perf.config_fingerprint`
— into the content address.

:func:`execute_job_task` is the module-level (hence picklable) entry
the daemon schedules through the resilient parallel executor: it runs
in a worker process, computes the payload, and writes the cache entry
*itself* (atomically, content-addressed — so two workers racing on the
same fingerprint write the same bytes and either rename wins).

The ``chaos`` job kind exists for fault-drill testing of the service's
own machinery (forced worker crashes, transient failures) — the same
role ``os._exit`` measurements play in the executor test-suite.
"""

import hashlib
import json
import os
from typing import Dict, Optional, Tuple

from repro.core.config import HiRiseConfig
from repro.obs.perf import config_fingerprint

#: Schema tag shared by the wire protocol, journal, and cache entries.
SERVICE_FORMAT = "repro.service/v1"

#: Job kinds the service accepts.
JOB_KINDS = ("simulate", "sweep", "audit", "fuzz", "chaos")

#: Chaos modes (service fault drills).
CHAOS_MODES = ("ok", "fail_once", "crash_once", "crash_always")

_CONFIG_FIELDS = (
    "radix", "layers", "channel_multiplicity", "allocation",
    "arbitration", "num_classes", "qos_weights", "failed_channels",
)


def build_config(fields: Optional[Dict[str, object]]) -> HiRiseConfig:
    """A :class:`HiRiseConfig` from a spec's ``config`` sub-dict.

    Unknown fields are rejected (a typo'd field silently meaning "the
    default" would fingerprint two different intentions identically).
    """
    fields = dict(fields or {})
    unknown = set(fields) - set(_CONFIG_FIELDS)
    if unknown:
        raise ValueError(f"unknown config field(s): {sorted(unknown)}")
    if "qos_weights" in fields and fields["qos_weights"] is not None:
        fields["qos_weights"] = tuple(fields["qos_weights"])
    if "failed_channels" in fields:
        fields["failed_channels"] = tuple(
            tuple(entry) for entry in fields["failed_channels"]
        )
    return HiRiseConfig(**fields)


def _config_wire(config: HiRiseConfig) -> Dict[str, object]:
    """The canonical JSON form of a config (inverse of :func:`build_config`)."""
    return {
        "radix": config.radix,
        "layers": config.layers,
        "channel_multiplicity": config.channel_multiplicity,
        "allocation": config.allocation.value,
        "arbitration": config.arbitration.value,
        "num_classes": config.num_classes,
        "qos_weights": (
            list(config.qos_weights)
            if config.qos_weights is not None else None
        ),
        "failed_channels": [list(e) for e in config.failed_channels],
    }


def _take(spec: Dict[str, object], name: str, default, kind) -> object:
    value = spec.get(name, default)
    if kind is float and isinstance(value, int):
        value = float(value)
    if not isinstance(value, kind) or isinstance(value, bool) != (kind is bool):
        raise ValueError(f"spec field {name!r} must be {kind.__name__}")
    return value


def normalize_spec(spec: Dict[str, object]) -> Dict[str, object]:
    """Validate a job spec and fill defaults into its canonical form.

    Two specs that mean the same work (fields in any order, defaults
    spelled out or omitted) normalize to the same dict, which is what
    :func:`job_fingerprint` hashes.  Raises ``ValueError`` on unknown
    kinds, unknown fields, or ill-typed values.
    """
    if not isinstance(spec, dict):
        raise ValueError("job spec must be a JSON object")
    kind = spec.get("kind")
    if kind not in JOB_KINDS:
        raise ValueError(f"unknown job kind {kind!r} (one of {JOB_KINDS})")

    known = {"kind", "config", "traffic", "load", "seed", "cycles",
             "warmup", "drain", "metric", "loads", "replications",
             "base_seed", "window", "cases", "max_radix", "mode"}
    unknown = set(spec) - known
    if unknown:
        raise ValueError(f"unknown spec field(s): {sorted(unknown)}")

    normalized: Dict[str, object] = {"kind": kind}
    if kind in ("simulate", "sweep", "audit"):
        config = build_config(spec.get("config"))
        normalized["config"] = _config_wire(config)
        normalized["warmup"] = _take(spec, "warmup", 40, int)
        normalized["cycles"] = _take(spec, "cycles", 300, int)
        if normalized["cycles"] < 1 or normalized["warmup"] < 0:
            raise ValueError("cycles must be >= 1 and warmup >= 0")
    if kind in ("simulate", "audit"):
        traffic = spec.get("traffic", "uniform")
        if traffic not in ("uniform", "hotspot"):
            raise ValueError(f"unknown traffic {traffic!r}")
        normalized["traffic"] = traffic
        normalized["load"] = _take(spec, "load", 0.3, float)
        normalized["seed"] = _take(spec, "seed", 1, int)
    if kind == "simulate":
        normalized["drain"] = _take(spec, "drain", False, bool)
    elif kind == "sweep":
        from repro.harness.measure import METRICS

        metric = spec.get("metric", "throughput")
        if metric not in METRICS:
            raise ValueError(f"unknown metric {metric!r} (one of {METRICS})")
        normalized["metric"] = metric
        loads = spec.get("loads", [0.3])
        if (not isinstance(loads, (list, tuple)) or not loads
                or not all(isinstance(l, (int, float)) for l in loads)):
            raise ValueError("loads must be a non-empty list of numbers")
        normalized["loads"] = [float(l) for l in loads]
        normalized["replications"] = _take(spec, "replications", 1, int)
        if normalized["replications"] < 1:
            raise ValueError("replications must be >= 1")
        normalized["base_seed"] = _take(spec, "base_seed", 0, int)
    elif kind == "audit":
        normalized["window"] = _take(spec, "window", 64, int)
        if normalized["window"] < 1:
            raise ValueError("window must be >= 1")
    elif kind == "fuzz":
        normalized["seed"] = _take(spec, "seed", 0, int)
        normalized["cases"] = _take(spec, "cases", 5, int)
        normalized["max_radix"] = _take(spec, "max_radix", 8, int)
        if normalized["cases"] < 1:
            raise ValueError("cases must be >= 1")
    elif kind == "chaos":
        mode = spec.get("mode", "ok")
        if mode not in CHAOS_MODES:
            raise ValueError(f"unknown chaos mode {mode!r}")
        normalized["mode"] = mode
        normalized["seed"] = _take(spec, "seed", 0, int)
    return normalized


def job_fingerprint(spec: Dict[str, object]) -> str:
    """Content address of a job: sha256 over its canonical identity.

    The config sub-dict is reduced to :func:`config_fingerprint`, so the
    job inherits the config's order normalisation (two specs whose
    ``failed_channels`` differ only in ordering address the same cache
    entry).
    """
    normalized = normalize_spec(spec)
    canonical = dict(normalized)
    if "config" in canonical:
        canonical["config"] = config_fingerprint(
            build_config(canonical["config"])
        )
    blob = json.dumps(
        {"format": SERVICE_FORMAT, "job": canonical},
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode()).hexdigest()


# ----------------------------------------------------------------------
# Execution (worker side)
# ----------------------------------------------------------------------
def _chaos_value(seed: int) -> float:
    return seed * seed + 0.5 * seed + 1.0


def _run_chaos(spec: Dict[str, object],
               chaos_dir: Optional[str]) -> Dict[str, object]:
    """The fault-drill job: misbehave as instructed, then answer.

    ``crash_once``/``fail_once`` leave a marker file keyed by the job's
    content so only the *first* attempt misbehaves — the retried attempt
    (in a rebuilt pool) finds the marker and answers normally, exactly
    like a transient OOM-kill.  With no ``chaos_dir`` (direct baseline
    computation outside the daemon) the drills are inert and only the
    answer remains, which is what interrupted-vs-uninterrupted
    comparisons diff against.
    """
    mode = spec["mode"]
    seed = spec["seed"]
    if chaos_dir is not None and mode != "ok":
        marker = os.path.join(
            chaos_dir, f"{job_fingerprint(spec)}.{mode}"
        )
        first_time = not os.path.exists(marker)
        if first_time:
            with open(marker, "w", encoding="utf-8"):
                pass
        if mode == "crash_always":
            os._exit(23)
        if first_time and mode == "crash_once":
            os._exit(23)
        if first_time and mode == "fail_once":
            raise RuntimeError("chaos: scripted transient failure")
    return {"kind": "chaos", "mode": mode, "seed": seed,
            "value": _chaos_value(seed)}


def _run_simulate(spec: Dict[str, object]) -> Dict[str, object]:
    from repro.core.hirise import HiRiseSwitch
    from repro.network.engine import Simulation

    config = build_config(spec["config"])
    switch = HiRiseSwitch(config)
    traffic = _build_traffic(spec, config)
    sim = Simulation(switch, traffic, warmup_cycles=spec["warmup"])
    result = sim.run(spec["cycles"], drain=spec["drain"])
    avg_latency = (
        result.latency_sum / result.latency_count
        if result.latency_count else 0.0
    )
    return {
        "kind": "simulate",
        "cycles": result.cycles,
        "packets_ejected": result.packets_ejected,
        "flits_ejected": result.flits_ejected,
        "throughput_packets_per_cycle":
            result.throughput_packets_per_cycle,
        "avg_latency_cycles": avg_latency,
    }


def _build_traffic(spec: Dict[str, object], config: HiRiseConfig):
    from repro.traffic import HotspotTraffic, UniformRandomTraffic

    if spec["traffic"] == "hotspot":
        return HotspotTraffic(
            config.radix, spec["load"],
            hotspot_output=config.radix - 1, seed=spec["seed"],
        )
    return UniformRandomTraffic(
        config.radix, spec["load"], seed=spec["seed"]
    )


def _run_sweep(spec: Dict[str, object]) -> Dict[str, object]:
    from repro.harness.measure import SimulationMeasurement
    from repro.harness.parallel import run_sweep

    config = build_config(spec["config"])
    measurement = SimulationMeasurement(
        config, metric=spec["metric"],
        warmup_cycles=spec["warmup"], measure_cycles=spec["cycles"],
    )
    grid = [{"load": load} for load in spec["loads"]]
    # workers=1: this already runs inside a pool worker, which cannot
    # spawn grandchildren; the fleet prepass still batches compatible
    # replications through the vectorized kernel when numpy is present.
    points = run_sweep(
        measurement, grid, replications=spec["replications"],
        base_seed=spec["base_seed"], workers=1,
    )
    wire_points = []
    for point in points:
        entry = {"load": point.parameters["load"], "value": point.value}
        if point.interval is not None:
            entry["half_width"] = point.interval.half_width
        wire_points.append(entry)
    return {"kind": "sweep", "metric": spec["metric"],
            "points": wire_points}


def _run_audit(spec: Dict[str, object]) -> Dict[str, object]:
    from repro.core.hirise import HiRiseSwitch
    from repro.network.engine import Simulation
    from repro.obs import SwitchTracer, analyze_tracer, validate_audit_summary

    config = build_config(spec["config"])
    tracer = SwitchTracer()
    switch = HiRiseSwitch(config, tracer=tracer)
    sim = Simulation(
        switch, _build_traffic(spec, config),
        warmup_cycles=spec["warmup"],
    )
    sim.run(spec["cycles"])
    report = analyze_tracer(tracer, window=spec["window"])
    return {"kind": "audit",
            "summary": validate_audit_summary(report.summary())}


def _run_fuzz(spec: Dict[str, object]) -> Dict[str, object]:
    from repro.check import run_fuzz

    report = run_fuzz(
        seed=spec["seed"], cases=spec["cases"],
        max_radix=spec["max_radix"], out_dir=None,
        invariants=True, minimize=False,
    )
    return {
        "kind": "fuzz",
        "seed": report.seed,
        "cases_run": report.cases_run,
        "ok": report.ok,
        "failures": [
            {
                "case_id": failure.original.case_id,
                "status": failure.outcome.status,
                "detail": failure.outcome.detail,
            }
            for failure in report.failures
        ],
    }


def run_job(spec: Dict[str, object],
            chaos_dir: Optional[str] = None) -> Dict[str, object]:
    """Compute one job's payload — a pure function of the (normalized) spec.

    ``chaos_dir`` arms the chaos drills; leave it ``None`` to compute
    the job's *answer* (e.g. as a baseline to diff a recovered run
    against).
    """
    spec = normalize_spec(spec)
    kind = spec["kind"]
    if kind == "chaos":
        return _run_chaos(spec, chaos_dir)
    if kind == "simulate":
        return _run_simulate(spec)
    if kind == "sweep":
        return _run_sweep(spec)
    if kind == "audit":
        return _run_audit(spec)
    return _run_fuzz(spec)


def execute_job_task(
    seed: int = 0,
    spec_json: str = "",
    cache_root: str = "",
    chaos_dir: Optional[str] = None,
) -> float:
    """The daemon's unit of scheduled work (module-level, picklable).

    Runs in a worker process under the resilient executor: computes the
    payload and writes the content-addressed cache entry itself (atomic
    write-then-rename, so a crash mid-job leaves no partial entry and a
    duplicate worker is harmless).  The scalar return value feeds the
    executor's bookkeeping; the *result* travels through the cache.
    """
    from repro.service.cache import ResultCache

    spec = json.loads(spec_json)
    fingerprint = job_fingerprint(spec)
    payload = run_job(spec, chaos_dir=chaos_dir)
    ResultCache(cache_root).put(fingerprint, payload)
    return 1.0

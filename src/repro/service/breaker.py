"""Per-key circuit breaker for jobs that keep killing workers.

A job whose simulation segfaults (or, in drills, calls ``os._exit``)
does not get better by being retried: every attempt costs a worker
process, a pool rebuild, and a slot another job could have used.  The
breaker counts **consecutive** crashes per key — here, per job
fingerprint, so the quarantine follows the *content* of the job across
resubmissions and daemon restarts within a process lifetime — and opens
at a threshold.  An open key fails fast: the resilient executor stops
retrying it (see ``ResiliencePolicy.breaker``) and the daemon rejects
new submissions of the same fingerprint with a structured
``quarantined`` response.

A success resets the streak (the crash was transient, e.g. an OOM kill
under memory pressure), which is what distinguishes the breaker from a
simple retry cap: transient crashes pay one rebuild and move on,
deterministic crashers get cut off after ``threshold`` attempts
*total*, however generous the retry budget is.
"""

import threading
from typing import Dict, List


class CircuitBreaker:
    """Consecutive-crash counting with an open/closed state per key.

    Duck-type contract consumed by
    :class:`repro.harness.parallel.ResiliencePolicy`:
    ``record_crash(key) -> bool`` (True when the breaker is now open),
    ``record_success(key)``, ``is_open(key)``.

    Args:
        threshold: Consecutive crashes that open a key's circuit.
    """

    def __init__(self, threshold: int = 3) -> None:
        if threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        self.threshold = int(threshold)
        self._streaks: Dict[object, int] = {}
        self._open: Dict[object, bool] = {}
        self._lock = threading.Lock()

    def record_crash(self, key: object) -> bool:
        """Count one worker crash against ``key``; True if now open."""
        with self._lock:
            streak = self._streaks.get(key, 0) + 1
            self._streaks[key] = streak
            if streak >= self.threshold:
                self._open[key] = True
            return self._open.get(key, False)

    def record_success(self, key: object) -> None:
        """A completed attempt: the streak was transient, reset it."""
        with self._lock:
            self._streaks.pop(key, None)

    def is_open(self, key: object) -> bool:
        """Whether ``key``'s circuit is open (fail fast, reject)."""
        with self._lock:
            return self._open.get(key, False)

    def reset(self, key: object) -> None:
        """Manually close a key's circuit (operator override)."""
        with self._lock:
            self._streaks.pop(key, None)
            self._open.pop(key, None)

    def open_keys(self) -> List[object]:
        """Every key whose circuit is currently open."""
        with self._lock:
            return [key for key, is_open in self._open.items() if is_open]

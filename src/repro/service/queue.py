"""Bounded priority job queue with admission control.

The queue is the service's overload valve: it has a hard bound, and a
full queue **rejects** new work at admission time instead of accepting
unbounded liabilities — the caller turns that into a structured
``overloaded`` + ``retry_after_s`` response, which is what "degrades
gracefully" means at the protocol level.  Admission is O(log n), every
accepted job is already journaled by the caller, and ordering is
(priority, admission sequence): higher priority first, FIFO within a
priority so equal-priority clients cannot starve each other.
"""

import heapq
import threading
from typing import List, Optional, Tuple


class BoundedJobQueue:
    """Thread-safe bounded priority queue of opaque job handles.

    Args:
        limit: Maximum queued (admitted, not yet dispatched) jobs.
    """

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValueError("queue limit must be >= 1")
        self.limit = int(limit)
        self._heap: List[Tuple[int, int, object]] = []
        self._sequence = 0
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._closed = False

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def offer(self, job: object, priority: int = 0) -> bool:
        """Admit a job, or refuse (``False``) when the bound is hit.

        Higher ``priority`` dispatches first; the negated priority goes
        into the min-heap with the admission sequence as tiebreak.
        """
        with self._ready:
            if self._closed or len(self._heap) >= self.limit:
                return False
            heapq.heappush(
                self._heap, (-int(priority), self._sequence, job)
            )
            self._sequence += 1
            self._ready.notify()
            return True

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def take(self, max_jobs: int = 1,
             timeout: Optional[float] = None) -> List[object]:
        """Up to ``max_jobs`` jobs in dispatch order; blocks when empty.

        Returns an empty list on timeout or when the queue is closed —
        the dispatcher's signal to re-check for shutdown.
        """
        if max_jobs < 1:
            raise ValueError("max_jobs must be >= 1")
        with self._ready:
            if not self._heap and not self._closed:
                self._ready.wait(timeout)
            taken: List[object] = []
            while self._heap and len(taken) < max_jobs:
                taken.append(heapq.heappop(self._heap)[2])
            return taken

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._heap)

    @property
    def is_full(self) -> bool:
        with self._lock:
            return len(self._heap) >= self.limit

    def close(self) -> None:
        """Refuse further admissions and wake any blocked dispatcher."""
        with self._ready:
            self._closed = True
            self._ready.notify_all()

"""Client for the sweep service's NDJSON protocol.

One TCP connection per request keeps the client stateless and immune to
daemon restarts between calls — exactly the property the crash-recovery
story needs: a client that submitted before a ``kill -9`` can poll the
restarted daemon for the same fingerprints and get the same results.

:class:`ServiceError` carries the structured rejection fields, so
callers handle backpressure as data::

    try:
        client.submit(spec)
    except ServiceError as error:
        if error.code == "overloaded":
            time.sleep(error.retry_after_s)
"""

import json
import socket
import time
from typing import Dict, List, Optional

from repro.service import protocol


class ServiceError(RuntimeError):
    """A structured error response from the daemon."""

    def __init__(self, response: Dict[str, object]) -> None:
        self.code = str(response.get("error", "internal"))
        self.response = response
        detail = response.get("message")
        super().__init__(
            f"{self.code}" + (f": {detail}" if detail else "")
        )

    @property
    def retry_after_s(self) -> float:
        """Backpressure hint (0 when the response carried none)."""
        value = self.response.get("retry_after_s", 0.0)
        return float(value) if isinstance(value, (int, float)) else 0.0


class ServiceClient:
    """Talks ``repro.service/v1`` to a daemon at ``(host, port)``."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7451,
                 timeout: float = 30.0) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def request(self, op: str, **fields: object) -> Dict[str, object]:
        """One request/response round trip; raises on structured errors.

        Raises:
            ServiceError: The daemon answered with ``ok: false``.
            OSError: The daemon is unreachable (connection refused, …).
        """
        message: Dict[str, object] = {"op": op}
        message.update(fields)
        with socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        ) as sock:
            sock.sendall(protocol.encode(message))
            with sock.makefile("rb") as stream:
                line = stream.readline()
        if not line:
            raise ServiceError(protocol.error(
                "internal", "daemon closed the connection mid-request"
            ))
        response = json.loads(line.decode("utf-8"))
        if not response.get("ok"):
            raise ServiceError(response)
        return response

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def ping(self) -> Dict[str, object]:
        """Liveness probe; returns the daemon's pid and job count."""
        return self.request("ping")

    def submit(self, spec: Dict[str, object],
               priority: int = 0) -> Dict[str, object]:
        """Submit a job; returns the job record (may be a cache hit)."""
        return self.request("submit", spec=spec, priority=priority)

    def submit_with_backpressure(
        self, spec: Dict[str, object], priority: int = 0,
        attempts: int = 20, max_sleep_s: float = 5.0,
    ) -> Dict[str, object]:
        """Submit, honouring ``overloaded`` rejections by waiting.

        The well-behaved client loop: on backpressure, sleep the
        daemon's ``retry_after_s`` hint (bounded) and try again.  Any
        other error propagates immediately.
        """
        last: Optional[ServiceError] = None
        for _ in range(max(1, attempts)):
            try:
                return self.submit(spec, priority=priority)
            except ServiceError as err:
                if err.code != "overloaded":
                    raise
                last = err
                time.sleep(min(max(err.retry_after_s, 0.05), max_sleep_s))
        raise last  # type: ignore[misc]

    def status(self, job_id: str) -> Dict[str, object]:
        """One job's current state snapshot (no payload)."""
        return self.request("status", job_id=job_id)

    def result(self, job_id: Optional[str] = None,
               fingerprint: Optional[str] = None,
               wait_s: float = 30.0) -> Dict[str, object]:
        """A terminal job's payload, waiting up to ``wait_s``.

        Raises ``ServiceError('timeout')`` if the job is still live
        when the wait expires.
        """
        fields: Dict[str, object] = {"wait_s": wait_s}
        if job_id is not None:
            fields["job_id"] = job_id
        if fingerprint is not None:
            fields["fingerprint"] = fingerprint
        return self.request("result", **fields)

    def jobs(self) -> List[Dict[str, object]]:
        """Snapshots of every job the daemon knows about."""
        return list(self.request("jobs")["jobs"])

    def metrics(self) -> Dict[str, object]:
        """Service counters plus their Prometheus exposition."""
        return self.request("metrics")

    def shutdown(self) -> Dict[str, object]:
        """Ask the daemon to stop serving and exit."""
        return self.request("shutdown")

    def wait_until_up(self, deadline_s: float = 10.0) -> None:
        """Poll ``ping`` until the daemon answers (startup races)."""
        deadline = time.monotonic() + deadline_s
        while True:
            try:
                self.ping()
                return
            except (OSError, ServiceError):
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)

"""Newline-delimited JSON wire protocol (``repro.service/v1``).

One request per line, one response line per request, UTF-8, over a
plain TCP stream — debuggable with ``nc`` and implementable from any
language's stdlib.  A connection may carry any number of sequential
requests.  Responses always carry ``ok``; failures add a stable
``error`` code plus machine-usable detail (``retry_after_s`` on
``overloaded``, the fingerprint on ``quarantined``), because the whole
point of *structured* rejection is that a client can react to it
programmatically instead of parsing prose.

Requests::

    {"op": "ping"}
    {"op": "submit", "spec": {...}, "priority": 0}
    {"op": "status", "job_id": "job-0"}
    {"op": "result", "job_id": "job-0", "wait_s": 10.0}
    {"op": "result", "fingerprint": "...", "wait_s": 10.0}
    {"op": "jobs"}
    {"op": "metrics"}
    {"op": "shutdown"}

Error codes: ``bad_request`` (undecodable or ill-formed),
``invalid_spec``, ``overloaded`` (queue full; honour ``retry_after_s``),
``quarantined`` (open circuit for this fingerprint), ``unknown_job``,
``timeout`` (a ``result`` wait expired; the job is still live),
``shutting_down``.
"""

import json
from typing import Dict, Optional

from repro.service.jobs import SERVICE_FORMAT

#: Every request operation the daemon understands.
OPS = (
    "ping", "submit", "status", "result", "jobs", "metrics", "shutdown",
)

#: Stable machine-readable error codes.
ERROR_CODES = (
    "bad_request", "invalid_spec", "overloaded", "quarantined",
    "unknown_job", "timeout", "shutting_down", "internal",
)

#: Hard ceiling on one request line (a defence against a client —
#: or a port-scanner — streaming garbage at the daemon).
MAX_LINE_BYTES = 4 * 1024 * 1024


def encode(message: Dict[str, object]) -> bytes:
    """One wire line (JSON + newline) for a request or response."""
    return (json.dumps(message, sort_keys=True,
                       separators=(",", ":")) + "\n").encode("utf-8")


def decode_line(line: bytes) -> Dict[str, object]:
    """Parse one wire line; raises ``ValueError`` on garbage."""
    if len(line) > MAX_LINE_BYTES:
        raise ValueError("request line exceeds the size limit")
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ValueError(f"undecodable request line: {error}") from error
    if not isinstance(message, dict):
        raise ValueError("request must be a JSON object")
    return message


def ok(**fields: object) -> Dict[str, object]:
    """A success response."""
    response: Dict[str, object] = {"ok": True, "format": SERVICE_FORMAT}
    response.update(fields)
    return response


def error(code: str, message: Optional[str] = None,
          **fields: object) -> Dict[str, object]:
    """A structured failure response with a stable error code."""
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}")
    response: Dict[str, object] = {
        "ok": False, "format": SERVICE_FORMAT, "error": code,
    }
    if message is not None:
        response["message"] = message
    response.update(fields)
    return response

"""The sweep service daemon: crash-safe job execution over TCP.

:class:`SweepService` ties the service pieces into one long-running
process:

- a :class:`~repro.service.queue.BoundedJobQueue` as the overload
  valve (full queue → structured ``overloaded`` rejection with a
  ``retry_after_s`` hint),
- a :class:`~repro.service.journal.JobJournal` written **ahead** of
  queueing, so a ``kill -9`` loses no accepted job,
- a :class:`~repro.service.cache.ResultCache` holding every result
  content-addressed by job fingerprint (submit-time hits answer
  without touching a worker; corrupt entries are quarantined and the
  job silently recomputed),
- a :class:`~repro.service.breaker.CircuitBreaker` keyed by job
  fingerprint, shared with the resilient executor so deterministic
  worker-killers stop being retried *and* stop being admitted,
- the crash-resilient parallel executor from
  :mod:`repro.harness.parallel` doing the actual work in batches,
  with per-fingerprint jittered backoff.

The dispatcher thread drains the queue into executor batches; a
:class:`ServiceMetrics` instance counts every admission, shed, retry,
crash, and cache outcome, and renders the lot through the existing
Prometheus text exposition.

Startup replays the journal: settled jobs are re-registered so
``status``/``result`` keep answering across restarts, unsettled jobs
are completed straight from cache when their result already landed
(zero re-simulation) and re-enqueued otherwise.  Jobs being pure
functions of their specs, the recovered run's results are
bit-identical to an uninterrupted one.
"""

import json
import os
import socketserver
import threading
import time
from collections import deque
from pathlib import Path
from typing import Deque, Dict, List, Optional, Union

from repro.harness.parallel import (
    ResiliencePolicy,
    TaskFailure,
    _execute_tasks_resilient,
)
from repro.service import protocol
from repro.service.breaker import CircuitBreaker
from repro.service.cache import ResultCache
from repro.service.jobs import (
    execute_job_task,
    job_fingerprint,
    normalize_spec,
)
from repro.service.journal import JobJournal
from repro.service.metrics import ServiceMetrics
from repro.service.queue import BoundedJobQueue

_Job = Dict[str, object]


class _BatchChannel:
    """Telemetry adapter: executor heartbeats → job state transitions.

    The resilient executor reports completions and failures through
    the telemetry duck-type (``start``/``record``/``record_failure``);
    this adapter turns those into service-level bookkeeping, so a job
    becomes visible to ``result`` waiters the moment its worker
    finishes — not when the whole batch does.
    """

    def __init__(self, service: "SweepService",
                 jobs: List[_Job]) -> None:
        self._service = service
        self._jobs = jobs

    def start(self, total: int) -> None:  # executor duck-type
        pass

    def record(self, heartbeat) -> None:
        self._service._job_finished(
            self._jobs[heartbeat.index], heartbeat.wall_s
        )

    def record_failure(self, kind: str) -> None:
        metrics = self._service.metrics
        metrics.bump("retries")
        if kind == "crash":
            metrics.bump("crashes")
        elif kind == "timeout":
            metrics.bump("timeouts")


class _ServiceServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    service: "SweepService"


class _Handler(socketserver.StreamRequestHandler):
    """One NDJSON request line in, one response line out; repeat."""

    def handle(self) -> None:
        service = self.server.service
        while True:
            try:
                line = self.rfile.readline(protocol.MAX_LINE_BYTES + 2)
            except OSError:
                return
            if not line:
                return
            if not line.strip():
                continue
            op = None
            try:
                message = protocol.decode_line(line)
                op = message.get("op")
                response = service.handle(message)
            except ValueError as error:
                response = protocol.error("bad_request", str(error))
            except Exception as error:  # a handler bug must not
                response = protocol.error(  # wedge the connection
                    "internal", repr(error)
                )
            try:
                self.wfile.write(protocol.encode(response))
                self.wfile.flush()
            except OSError:
                return
            if op == "shutdown":
                return


class SweepService:
    """A crash-safe sweep/audit/fuzz job daemon.

    Args:
        state_dir: Durable state root — holds ``journal.jsonl``, the
            ``cache/`` store, and the ``chaos/`` drill markers.  Point
            a restarted daemon at the same directory to recover.
        host, port: Listen address; port 0 picks an ephemeral port
            (read it back from :attr:`address` after :meth:`start`).
        workers: Executor pool width per batch.
        queue_limit: Bound on admitted-but-undispatched jobs; the
            overload knob.
        max_batch: Jobs dispatched to the executor per batch.  1 keeps
            batches independent (deterministic breaker drills);
            larger amortises pool spin-up across a campaign.
        breaker_threshold: Consecutive worker crashes that quarantine
            a job fingerprint.
        task_timeout / max_retries / backoff_base / backoff_cap /
        backoff_jitter / jitter_seed: Forwarded into the per-batch
            :class:`ResiliencePolicy`.
    """

    def __init__(
        self,
        state_dir: Union[str, Path],
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        queue_limit: int = 32,
        max_batch: int = 8,
        breaker_threshold: int = 3,
        task_timeout: Optional[float] = None,
        max_retries: int = 3,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        backoff_jitter: float = 0.5,
        jitter_seed: int = 0,
    ) -> None:
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.journal_path = self.state_dir / "journal.jsonl"
        self.chaos_dir = self.state_dir / "chaos"
        self.chaos_dir.mkdir(exist_ok=True)
        self.cache = ResultCache(self.state_dir / "cache")
        self.breaker = CircuitBreaker(threshold=breaker_threshold)
        self.queue = BoundedJobQueue(queue_limit)
        self.metrics = ServiceMetrics()
        self.workers = int(workers)
        self.max_batch = max(1, int(max_batch))
        self._policy_fields = dict(
            task_timeout=task_timeout,
            max_retries=max_retries,
            backoff_base=backoff_base,
            backoff_cap=backoff_cap,
            backoff_jitter=backoff_jitter,
            jitter_seed=jitter_seed,
        )
        self._host = host
        self._port = int(port)
        self._jobs: Dict[str, _Job] = {}
        self._inflight_fp: Dict[str, str] = {}
        self._carryover: Deque[_Job] = deque()
        self._next_sequence = 0
        self._inflight_count = 0
        self._mean_wall = 1.0
        self._lock = threading.RLock()
        self._changed = threading.Condition(self._lock)
        self._stopping = False
        self._started = False
        self.journal: Optional[JobJournal] = None
        self._server: Optional[_ServiceServer] = None
        self._server_thread: Optional[threading.Thread] = None
        self._dispatcher: Optional[threading.Thread] = None
        self.metrics.queue_depth_fn = (
            lambda: self.queue.depth + len(self._carryover)
        )
        self.metrics.inflight_fn = lambda: self._inflight_count
        self.metrics.breaker_open_fn = (
            lambda: len(self.breaker.open_keys())
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> "tuple":
        """``(host, port)`` actually bound (after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("service is not started")
        return self._server.server_address

    def start(self) -> None:
        """Recover from the journal, then begin serving and dispatching."""
        if self._started:
            raise RuntimeError("service already started")
        self._started = True
        self._recover()
        self._server = _ServiceServer(
            (self._host, self._port), _Handler
        )
        self._server.service = self
        self._server_thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-service-tcp", daemon=True,
        )
        self._server_thread.start()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop,
            name="repro-service-dispatch", daemon=True,
        )
        self._dispatcher.start()

    def wait(self) -> None:
        """Block until the daemon stops (a ``shutdown`` op or SIGTERM)."""
        while (
            self._server_thread is not None
            and self._server_thread.is_alive()
        ):
            self._server_thread.join(timeout=0.5)

    def stop(self) -> None:
        """Stop serving and dispatching; close the journal. Idempotent."""
        with self._lock:
            if self._stopping:
                return
            self._stopping = True
            self._changed.notify_all()
        self.queue.close()
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=30.0)
        if self.journal is not None:
            self.journal.close()

    def _recover(self) -> None:
        """Replay the journal: settle what the cache settles, requeue the rest."""
        unsettled, settled, next_sequence = JobJournal.replay(
            self.journal_path
        )
        self._next_sequence = next_sequence
        self.journal = JobJournal(self.journal_path)
        for job_id, row in settled.items():
            self._jobs[job_id] = {
                "job_id": job_id,
                "fingerprint": row.get("fingerprint"),
                "spec": row.get("spec"),
                "priority": row.get("priority", 0),
                "state": row.get("state", "completed"),
                "source": row.get("source"),
                "error": row.get("error"),
            }
        for row in unsettled:
            job_id = row["job_id"]
            fingerprint = row["fingerprint"]
            job: _Job = {
                "job_id": job_id,
                "fingerprint": fingerprint,
                "spec": row["spec"],
                "priority": row.get("priority", 0),
                "state": "queued",
                "source": None,
                "error": None,
                "recovered": True,
            }
            self._jobs[job_id] = job
            payload = self._cache_read(fingerprint, count=True)
            if payload is not None:
                # The result landed before the crash did: serve it
                # forever, recompute never.
                job["state"] = "completed"
                job["source"] = "cache"
                self.journal.done(job_id, "completed", "cache")
                self.metrics.bump("completed")
            else:
                self._inflight_fp[fingerprint] = job_id
                if not self.queue.offer(job, int(job["priority"])):
                    self._carryover.append(job)

    # ------------------------------------------------------------------
    # Wire dispatch
    # ------------------------------------------------------------------
    def handle(self, message: Dict[str, object]) -> Dict[str, object]:
        """One decoded request → one response dict."""
        op = message.get("op")
        if op == "ping":
            return protocol.ok(
                pid=os.getpid(),
                jobs=len(self._jobs),
                queue_depth=self.queue.depth,
            )
        if op == "submit":
            return self._handle_submit(message)
        if op == "status":
            return self._handle_status(message)
        if op == "result":
            return self._handle_result(message)
        if op == "jobs":
            with self._lock:
                snapshots = [
                    self._snapshot(job)
                    for _, job in sorted(self._jobs.items())
                ]
            return protocol.ok(jobs=snapshots)
        if op == "metrics":
            return protocol.ok(
                counters=self.metrics.snapshot(),
                prometheus=self.metrics.to_prometheus(),
            )
        if op == "shutdown":
            threading.Thread(
                target=self.stop, name="repro-service-stop", daemon=True
            ).start()
            return protocol.ok(stopping=True)
        return protocol.error(
            "bad_request", f"unknown op {op!r} (one of {protocol.OPS})"
        )

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _handle_submit(
        self, message: Dict[str, object]
    ) -> Dict[str, object]:
        if self._stopping:
            return protocol.error("shutting_down")
        try:
            spec = normalize_spec(message.get("spec"))
            fingerprint = job_fingerprint(spec)
            priority = int(message.get("priority", 0) or 0)
        except (ValueError, TypeError) as error:
            self.metrics.bump("rejected_invalid")
            return protocol.error("invalid_spec", str(error))
        if self.breaker.is_open(fingerprint):
            self.metrics.bump("rejected_quarantined")
            return protocol.error(
                "quarantined",
                "this job keeps crashing workers; its circuit is open",
                fingerprint=fingerprint,
            )
        payload = self._cache_read(fingerprint, count=True)
        with self._lock:
            if payload is not None:
                job = self._new_job(spec, fingerprint, priority)
                job["state"] = "completed"
                job["source"] = "cache"
                self.journal.accepted(
                    job["job_id"], fingerprint, spec, priority
                )
                self.journal.done(job["job_id"], "completed", "cache")
                self.metrics.bump("accepted")
                self.metrics.bump("completed")
                self._changed.notify_all()
                return protocol.ok(
                    job_id=job["job_id"], fingerprint=fingerprint,
                    state="completed", source="cache", cache_hit=True,
                )
            existing = self._inflight_fp.get(fingerprint)
            if existing is not None:
                self.metrics.bump("coalesced")
                return protocol.ok(
                    job_id=existing, fingerprint=fingerprint,
                    state=self._jobs[existing]["state"],
                    coalesced=True,
                )
            if self.queue.is_full:
                self.metrics.bump("rejected_overload")
                return protocol.error(
                    "overloaded",
                    "job queue is full; retry after the hinted delay",
                    retry_after_s=self._retry_after(),
                )
            job = self._new_job(spec, fingerprint, priority)
            # Write-ahead: the journal line lands before the queue
            # (and before the client hears "accepted"), so a crash
            # after this point cannot lose the job.
            self.journal.accepted(
                job["job_id"], fingerprint, spec, priority
            )
            self._inflight_fp[fingerprint] = job["job_id"]
            if not self.queue.offer(job, priority):
                self._carryover.append(job)
            self.metrics.bump("accepted")
            return protocol.ok(
                job_id=job["job_id"], fingerprint=fingerprint,
                state="queued", cache_hit=False,
            )

    def _new_job(self, spec: Dict[str, object], fingerprint: str,
                 priority: int) -> _Job:
        job_id = f"job-{self._next_sequence}"
        self._next_sequence += 1
        job: _Job = {
            "job_id": job_id,
            "fingerprint": fingerprint,
            "spec": spec,
            "priority": priority,
            "state": "queued",
            "source": None,
            "error": None,
        }
        self._jobs[job_id] = job
        return job

    def _retry_after(self) -> float:
        backlog = (
            self.queue.depth + len(self._carryover)
            + self._inflight_count
        )
        return round(
            max(0.25, backlog * self._mean_wall / max(self.workers, 1)),
            3,
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _snapshot(self, job: _Job) -> Dict[str, object]:
        spec = job.get("spec") or {}
        return {
            "job_id": job["job_id"],
            "fingerprint": job["fingerprint"],
            "kind": spec.get("kind") if isinstance(spec, dict) else None,
            "priority": job.get("priority", 0),
            "state": job["state"],
            "source": job.get("source"),
            "error": job.get("error"),
        }

    def _handle_status(
        self, message: Dict[str, object]
    ) -> Dict[str, object]:
        job_id = message.get("job_id")
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return protocol.error(
                    "unknown_job", f"no job {job_id!r}"
                )
            return protocol.ok(job=self._snapshot(job))

    def _handle_result(
        self, message: Dict[str, object]
    ) -> Dict[str, object]:
        job_id = message.get("job_id")
        fingerprint = message.get("fingerprint")
        try:
            wait_s = max(0.0, float(message.get("wait_s", 0.0) or 0.0))
        except (TypeError, ValueError):
            return protocol.error("bad_request", "wait_s must be a number")
        deadline = time.monotonic() + wait_s
        while True:
            with self._lock:
                job = None
                if isinstance(job_id, str):
                    job = self._jobs.get(job_id)
                    if job is None:
                        return protocol.error(
                            "unknown_job", f"no job {job_id!r}"
                        )
                elif isinstance(fingerprint, str):
                    job = self._latest_by_fingerprint(fingerprint)
                if job is None:
                    if isinstance(fingerprint, str):
                        payload = self._cache_read(fingerprint)
                        if payload is not None:
                            return protocol.ok(
                                fingerprint=fingerprint,
                                state="completed", source="cache",
                                payload=payload,
                            )
                    return protocol.error(
                        "unknown_job",
                        "pass job_id or a known fingerprint",
                    )
                state = job["state"]
                if state == "failed":
                    return protocol.ok(job=self._snapshot(job))
                if state == "completed":
                    payload = self._cache_read(job["fingerprint"])
                    if payload is not None:
                        response = self._snapshot(job)
                        return protocol.ok(job=response, payload=payload)
                    # The entry went corrupt (or missing) after the
                    # job settled: it was quarantined by the read —
                    # recompute rather than ever serving bad bytes.
                    self._requeue(job)
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return protocol.error(
                        "timeout",
                        f"job {job['job_id']} still {job['state']} "
                        f"after {wait_s}s",
                        job_id=job["job_id"], state=job["state"],
                    )
                self._changed.wait(min(remaining, 0.5))

    def _latest_by_fingerprint(
        self, fingerprint: str
    ) -> Optional[_Job]:
        best: Optional[_Job] = None
        for job in self._jobs.values():
            if job.get("fingerprint") != fingerprint:
                continue
            if best is None or job["job_id"] > best["job_id"]:
                best = job
        return best

    def _requeue(self, job: _Job) -> None:
        """Send a settled-but-unservable job back through the executor."""
        job["state"] = "queued"
        job["source"] = None
        self._inflight_fp.setdefault(
            str(job["fingerprint"]), str(job["job_id"])
        )
        self._carryover.append(job)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _cache_read(self, fingerprint: str,
                    count: bool = False) -> Optional[Dict[str, object]]:
        """A cache lookup that keeps the service counters honest."""
        corrupt_before = self.cache.corrupt
        payload = self.cache.get(fingerprint)
        newly_corrupt = self.cache.corrupt - corrupt_before
        if newly_corrupt:
            self.metrics.bump("cache_corrupt", newly_corrupt)
        if count:
            self.metrics.bump(
                "cache_hits" if payload is not None else "cache_misses"
            )
        return payload

    def _dispatch_loop(self) -> None:
        while not self._stopping:
            batch: List[_Job] = []
            with self._lock:
                while self._carryover and len(batch) < self.max_batch:
                    batch.append(self._carryover.popleft())
            want = self.max_batch - len(batch)
            if want > 0:
                batch.extend(self.queue.take(
                    want, timeout=0.0 if batch else 0.2
                ))
            if not batch:
                continue
            self._run_batch(batch)

    def _run_batch(self, jobs: List[_Job]) -> None:
        with self._lock:
            for job in jobs:
                job["state"] = "running"
            self._inflight_count = len(jobs)
        tasks = [
            (
                execute_job_task,
                {
                    "spec_json": json.dumps(
                        job["spec"], sort_keys=True,
                        separators=(",", ":"),
                    ),
                    "cache_root": str(self.cache.root),
                    "chaos_dir": str(self.chaos_dir),
                },
                0,
            )
            for job in jobs
        ]
        policy = ResiliencePolicy(
            breaker=self.breaker,
            breaker_keys=tuple(job["fingerprint"] for job in jobs),
            **self._policy_fields,
        )
        channel = _BatchChannel(self, jobs)
        try:
            _execute_tasks_resilient(
                tasks, self.workers, policy, telemetry=channel
            )
        except TaskFailure as failure:
            self._job_failed(
                jobs[failure.index], repr(failure.cause)
            )
            with self._lock:
                # Innocent batch-mates go back in line; each pass
                # through here removes at least the one failed job,
                # so the recursion-by-carryover terminates.
                for job in jobs:
                    if job["state"] == "running":
                        job["state"] = "queued"
                        self._carryover.append(job)
        except Exception as error:  # the dispatcher must outlive bugs
            with self._lock:
                victims = [
                    job for job in jobs if job["state"] == "running"
                ]
            for job in victims:
                self._job_failed(job, repr(error))
        finally:
            with self._lock:
                self._inflight_count = 0

    def _job_finished(self, job: _Job, wall_s: float) -> None:
        with self._lock:
            if job["state"] == "completed":
                return
            job["state"] = "completed"
            job["source"] = "computed"
            self._inflight_fp.pop(str(job["fingerprint"]), None)
            self.journal.done(
                str(job["job_id"]), "completed", "computed"
            )
            self.metrics.bump("completed")
            self.metrics.bump("simulations")
            self._mean_wall = 0.8 * self._mean_wall + 0.2 * wall_s
            self._changed.notify_all()

    def _job_failed(self, job: _Job, error: str) -> None:
        with self._lock:
            job["state"] = "failed"
            job["error"] = error
            self._inflight_fp.pop(str(job["fingerprint"]), None)
            self.journal.done(
                str(job["job_id"]), "failed", "computed", error=error
            )
            self.metrics.bump("failed")
            self._changed.notify_all()

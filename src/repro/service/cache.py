"""Content-addressed result store with end-to-end integrity checks.

One file per completed job, named by the job's
:func:`~repro.service.jobs.job_fingerprint`.  Entries are written
**atomically** (temp file in the same directory, ``fsync``, then
``os.replace``), so a crash — of a worker, the daemon, or the whole
host — can never leave a half-written entry under a valid name; at
worst it leaves an orphaned temp file that is ignored and swept.

Every entry embeds its own fingerprint and a sha256 digest of the
canonical payload JSON, so corruption that *does* reach the disk
(bit-rot, truncation by an unrelated tool, a mis-copied file) is
detected at read time: the entry is **quarantined** — renamed to
``<fingerprint>.corrupt-<n>`` beside the store, preserved for
post-mortem — and the read reports a miss, which makes the daemon
recompute rather than ever serving a corrupt payload.

Because entries are pure functions of the fingerprint, writes are
idempotent: two workers racing on the same job write byte-identical
temp files and either rename wins.
"""

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.service.jobs import SERVICE_FORMAT

_FINGERPRINT_LEN = 64  # sha256 hexdigest


def payload_digest(payload: Dict[str, object]) -> str:
    """sha256 of the canonical (sorted, separator-free) payload JSON."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class CorruptEntry(ValueError):
    """A cache entry failed its integrity checks (for reporting)."""


class ResultCache:
    """Content-addressed store of job result payloads.

    Counters (``hits``/``misses``/``corrupt``) tally this instance's
    reads, feeding the service metrics.

    Args:
        root: Store directory (created if missing).
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def path_for(self, fingerprint: str) -> Path:
        """The entry path for a fingerprint (validated hex name)."""
        if (
            len(fingerprint) != _FINGERPRINT_LEN
            or not all(c in "0123456789abcdef" for c in fingerprint)
        ):
            raise ValueError(f"malformed fingerprint {fingerprint!r}")
        return self.root / fingerprint

    def _quarantine_path(self, fingerprint: str) -> Path:
        for attempt in range(10_000):
            candidate = self.root / f"{fingerprint}.corrupt-{attempt}"
            if not candidate.exists():
                return candidate
        raise RuntimeError(f"quarantine namespace exhausted: {fingerprint}")

    # ------------------------------------------------------------------
    # Write
    # ------------------------------------------------------------------
    def put(self, fingerprint: str, payload: Dict[str, object]) -> Path:
        """Store one payload atomically; returns the entry path."""
        path = self.path_for(fingerprint)
        entry = {
            "format": SERVICE_FORMAT,
            "fingerprint": fingerprint,
            "sha256": payload_digest(payload),
            "payload": payload,
        }
        blob = json.dumps(entry, sort_keys=True, separators=(",", ":"))
        temp = self.root / f".{fingerprint}.tmp-{os.getpid()}"
        with open(temp, "w", encoding="utf-8") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, path)
        return path

    # ------------------------------------------------------------------
    # Read
    # ------------------------------------------------------------------
    def get(self, fingerprint: str) -> Optional[Dict[str, object]]:
        """The stored payload, or ``None`` on miss *or* quarantine.

        A corrupt entry (unparseable, wrong format tag, fingerprint not
        matching its filename, or payload digest mismatch) is renamed
        aside and counted, then reported as a miss — the caller's only
        correct reaction is to recompute, and the one thing this method
        guarantees is that a payload it returns passed its digest.
        """
        path = self.path_for(fingerprint)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                raw = handle.read()
        except FileNotFoundError:
            self.misses += 1
            return None
        try:
            payload = self._verify(fingerprint, raw)
        except CorruptEntry:
            self.corrupt += 1
            self.misses += 1
            os.replace(path, self._quarantine_path(fingerprint))
            return None
        self.hits += 1
        return payload

    def _verify(self, fingerprint: str, raw: str) -> Dict[str, object]:
        try:
            entry = json.loads(raw)
        except json.JSONDecodeError as error:
            raise CorruptEntry(f"undecodable entry: {error}") from error
        if not isinstance(entry, dict):
            raise CorruptEntry("entry is not an object")
        if entry.get("format") != SERVICE_FORMAT:
            raise CorruptEntry(
                f"wrong format tag {entry.get('format')!r}"
            )
        if entry.get("fingerprint") != fingerprint:
            raise CorruptEntry("fingerprint does not match entry name")
        payload = entry.get("payload")
        if not isinstance(payload, dict):
            raise CorruptEntry("payload is not an object")
        if entry.get("sha256") != payload_digest(payload):
            raise CorruptEntry("payload digest mismatch")
        return payload

    def contains(self, fingerprint: str) -> bool:
        """Whether an entry file exists (no integrity check)."""
        return self.path_for(fingerprint).exists()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def fingerprints(self) -> List[str]:
        """Fingerprints of all (unquarantined) entries in the store."""
        return sorted(
            name for name in os.listdir(self.root)
            if len(name) == _FINGERPRINT_LEN
            and all(c in "0123456789abcdef" for c in name)
        )

    def quarantined(self) -> List[str]:
        """Names of quarantined entries (kept for post-mortem)."""
        return sorted(
            name for name in os.listdir(self.root)
            if ".corrupt-" in name
        )

    def sweep_temp(self) -> int:
        """Remove orphaned temp files from crashed writers."""
        removed = 0
        for name in os.listdir(self.root):
            if name.startswith(".") and ".tmp-" in name:
                try:
                    os.unlink(self.root / name)
                    removed += 1
                except OSError:
                    pass
        return removed

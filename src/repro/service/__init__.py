"""Sweep-as-a-service: a crash-safe job daemon for the repro harness.

The service accepts simulation/sweep/audit/fuzz jobs over a
newline-delimited JSON TCP protocol (``repro.service/v1``), executes
them through the crash-resilient parallel executor, and serves every
result from a content-addressed cache keyed by the job's normalized
spec fingerprint.  A write-ahead journal makes admission durable: a
``kill -9`` mid-campaign loses nothing — the restarted daemon replays
accepted-but-unfinished jobs to bit-identical results, serving
already-landed ones straight from cache.

Layers (each its own module, composable in tests without the daemon):

- :mod:`~repro.service.jobs` — specs, fingerprints, worker-side
  execution;
- :mod:`~repro.service.cache` — atomic content-addressed results with
  digest verification and corruption quarantine;
- :mod:`~repro.service.queue` — bounded priority admission (the
  overload valve);
- :mod:`~repro.service.breaker` — per-fingerprint circuit breaker for
  worker-killing jobs;
- :mod:`~repro.service.journal` — the write-ahead job journal;
- :mod:`~repro.service.metrics` — service counters on the Prometheus
  renderer;
- :mod:`~repro.service.protocol` / :mod:`~repro.service.client` — the
  wire format and a stdlib client;
- :mod:`~repro.service.daemon` — :class:`SweepService`, tying it all
  together.
"""

from repro.service.breaker import CircuitBreaker
from repro.service.cache import CorruptEntry, ResultCache, payload_digest
from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import SweepService
from repro.service.jobs import (
    CHAOS_MODES,
    JOB_KINDS,
    SERVICE_FORMAT,
    execute_job_task,
    job_fingerprint,
    normalize_spec,
    run_job,
)
from repro.service.journal import JobJournal
from repro.service.metrics import ServiceMetrics
from repro.service.queue import BoundedJobQueue

__all__ = [
    "CHAOS_MODES",
    "CircuitBreaker",
    "CorruptEntry",
    "JOB_KINDS",
    "JobJournal",
    "ResultCache",
    "SERVICE_FORMAT",
    "ServiceClient",
    "ServiceError",
    "ServiceMetrics",
    "SweepService",
    "BoundedJobQueue",
    "execute_job_task",
    "job_fingerprint",
    "normalize_spec",
    "payload_digest",
    "run_job",
]

"""Small shared utilities with no simulation dependencies."""

from repro.util.jsonl import (
    append_jsonl,
    iter_jsonl_strict,
    iter_jsonl_tolerant,
    read_jsonl,
)

__all__ = [
    "append_jsonl",
    "iter_jsonl_strict",
    "iter_jsonl_tolerant",
    "read_jsonl",
]

"""Append-only JSONL files with torn-line tolerance.

Every durable artifact in this repo that survives crashes is an
append-only JSONL file: the sweep checkpoint (``repro.checkpoint/v1``),
the perf ledger (``repro.perf/v1``), JSONL trace exports, and the
service job journal (``repro.service/v1``).  They all share the same
failure model — a writer appends one flushed line per record, so a
``kill -9`` mid-append leaves at most one *torn* (truncated, hence
undecodable) trailing line — and therefore the same reader: decode each
non-blank line, skip the ones a crashed writer tore.

This module is that one reader (plus the matching writer), so each new
journal format stops growing its own copy of the loop.  Two tolerance
levels:

* :func:`iter_jsonl_tolerant` / :func:`read_jsonl` — skip lines that do
  not decode.  Right for crash-tolerant journals where a torn tail is
  expected and harmless.
* :func:`iter_jsonl_strict` — raise on the first undecodable line.
  Right for machine-written exports that are re-read immediately (a
  garbled line there is a bug, not a crash artifact).

Neither skips *well-formed* lines of the wrong shape — format-tag
validation stays with each caller, because a cleanly-decoding line with
the wrong ``format`` is a wrong-file mistake that silently skipping
would hide.
"""

import json
from pathlib import Path
from typing import IO, Iterator, List, Union

_PathLike = Union[str, Path]


def iter_jsonl_strict(path: _PathLike) -> Iterator[object]:
    """Yield every decoded record; raise on the first garbled line.

    Blank lines are skipped (a flushed writer may legally end the file
    with a newline).  ``json.JSONDecodeError`` propagates, carrying the
    offending content.
    """
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)


def iter_jsonl_tolerant(path: _PathLike) -> Iterator[object]:
    """Yield decoded records, skipping torn/garbled lines and blanks.

    A crashed writer's partial append decodes as garbage and is dropped;
    every line that decodes — wherever it sits in the file — is yielded,
    so a mid-file tear (two writers racing, a recovered filesystem)
    costs only the damaged line, not the tail of the file.
    """
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                continue


def read_jsonl(
    path: _PathLike, missing_ok: bool = False
) -> List[object]:
    """All tolerantly-decoded records of ``path`` as a list.

    With ``missing_ok`` a nonexistent file reads as an empty history —
    the natural state of a journal nothing has appended to yet.
    """
    try:
        return list(iter_jsonl_tolerant(path))
    except FileNotFoundError:
        if missing_ok:
            return []
        raise


def append_jsonl(target: Union[_PathLike, IO[str]], record: object) -> None:
    """Append one record as a single flushed line.

    ``target`` may be a path (opened in append mode for the one write)
    or an already-open text handle (the caller keeps it; useful for
    long-lived journals).  One ``write`` + ``flush`` per record keeps
    the torn-line window to a single line.
    """
    line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
    if hasattr(target, "write"):
        target.write(line)
        target.flush()
    else:
        with open(target, "a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()

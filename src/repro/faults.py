"""Deterministic, seeded fault injection for the Hi-Rise switch.

The paper's ``c``-channel redundancy exists because TSV bundles fail in
the field, yet a static ``failed_channels`` tuple frozen at
:class:`~repro.core.config.HiRiseConfig` construction can only model
faults present from cycle 0.  This module adds *dynamic* faults: a
:class:`FaultSchedule` is an immutable, cycle-ordered list of
:class:`FaultEvent`\\ s — scripted by hand or generated stochastically
from a seed (:meth:`FaultSchedule.random`) — that both cycle kernels
(:class:`repro.core.hirise.HiRiseSwitch` and
:class:`repro.core.reference.ReferenceHiRiseSwitch`) consume through an
identical per-cycle hook, so fast and reference runs stay bit-identical
under any schedule.

Supported fault classes:

* **channel failure / repair** (``fail_channel`` / ``repair_channel``) —
  an L2LC's TSV bundle dies mid-run.  The in-flight packet holding the
  channel *quiesces*: its path stays locked and its remaining flits
  stream out normally (flits are never dropped), but the channel is
  masked from all new arbitration from the event cycle onward.  On
  repair the channel re-arms and is grantable in the same cycle's
  arbitration.  Failing *every* channel between a layer pair is allowed
  dynamically (unlike static config validation): traffic toward the dead
  layer simply queues at its sources (degraded mode / partition).
* **stuck input** (``fail_input`` / ``repair_input``) — an input port's
  request logic wedges: it stops presenting phase-1 requests (its active
  packet, if any, quiesces first), while injected traffic keeps
  accumulating in its source queue.
* **CLRG counter corruption** (``corrupt_clrg``) — a sub-block's class
  counter bank is overwritten with an arbitrary value (single input or
  the whole bank), modelling an SEU in the fairness state.  A no-op
  under non-CLRG arbitration schemes.

Kernel hook contract (both kernels, identical ordering): at the very
start of ``step(cycle)`` — before the cooling-clear, transmit, and
arbitration sub-phases — the switch pops every schedule event with
``event.cycle <= cycle`` from its private :class:`FaultCursor` and
applies it via :func:`apply_fault_events`.  Traced switches emit one
``fault_inject`` / ``fault_repair`` trace event per applied fault before
any other event of that cycle.  A switch built with ``faults=None``
(the default) pays exactly one predictable branch per cycle and is
bit-identical to the pre-fault-engine kernels.
"""

import json
import random
from dataclasses import dataclass
from typing import IO, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.obs.trace import (
    FAULT_CHANNEL,
    FAULT_CLRG,
    FAULT_INJECT,
    FAULT_INPUT,
    FAULT_REPAIR,
)

#: Schedule file format tag, written by :meth:`FaultSchedule.dump`.
SCHEDULE_FORMAT = "repro.faults/v1"

# Event kind names (the JSON wire vocabulary).
FAIL_CHANNEL = "fail_channel"
REPAIR_CHANNEL = "repair_channel"
FAIL_INPUT = "fail_input"
REPAIR_INPUT = "repair_input"
CORRUPT_CLRG = "corrupt_clrg"

#: All valid event kinds, and the payload field each one requires.
EVENT_KINDS: Dict[str, Tuple[str, ...]] = {
    FAIL_CHANNEL: ("channel",),
    REPAIR_CHANNEL: ("channel",),
    FAIL_INPUT: ("port",),
    REPAIR_INPUT: ("port",),
    CORRUPT_CLRG: ("output",),
}


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault, applied at the start of ``step(cycle)``.

    Attributes:
        cycle: Simulation cycle the event takes effect (>= 0).
        kind: One of :data:`EVENT_KINDS` (``fail_channel``,
            ``repair_channel``, ``fail_input``, ``repair_input``,
            ``corrupt_clrg``).
        channel: ``(src_layer, dst_layer, channel)`` triple for channel
            events.
        port: Input port for stuck-input events; for ``corrupt_clrg``
            it optionally narrows the corruption to one input's counter
            (``None`` overwrites the whole bank).
        output: Final output whose sub-block is corrupted
            (``corrupt_clrg`` only).
        value: Counter value written by ``corrupt_clrg`` (clamped to the
            bank's saturation value on application).
    """

    cycle: int
    kind: str
    channel: Optional[Tuple[int, int, int]] = None
    port: Optional[int] = None
    output: Optional[int] = None
    value: int = 0

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise ValueError(f"fault cycle must be >= 0, got {self.cycle}")
        required = EVENT_KINDS.get(self.kind)
        if required is None:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {sorted(EVENT_KINDS)}"
            )
        for field_name in required:
            if getattr(self, field_name) is None:
                raise ValueError(f"{self.kind} event needs {field_name!r}")
        if self.channel is not None:
            channel = tuple(int(x) for x in self.channel)
            if len(channel) != 3:
                raise ValueError(
                    "channel must be a (src_layer, dst_layer, channel) triple"
                )
            if channel[0] == channel[1]:
                raise ValueError("a layer has no L2LC to itself")
            object.__setattr__(self, "channel", channel)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable record (only the fields the kind uses)."""
        record: Dict[str, object] = {"cycle": self.cycle, "kind": self.kind}
        if self.channel is not None:
            record["channel"] = list(self.channel)
        if self.port is not None:
            record["port"] = self.port
        if self.output is not None:
            record["output"] = self.output
        if self.kind == CORRUPT_CLRG:
            record["value"] = self.value
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "FaultEvent":
        """Inverse of :meth:`to_dict` (validates on construction)."""
        channel = record.get("channel")
        return cls(
            cycle=int(record["cycle"]),
            kind=str(record["kind"]),
            channel=tuple(channel) if channel is not None else None,
            port=record.get("port"),
            output=record.get("output"),
            value=int(record.get("value", 0)),
        )


def fail_channel(cycle: int, src: int, dst: int, channel: int) -> FaultEvent:
    """Scripted transient/permanent L2LC failure at ``cycle``."""
    return FaultEvent(cycle, FAIL_CHANNEL, channel=(src, dst, channel))


def repair_channel(cycle: int, src: int, dst: int, channel: int) -> FaultEvent:
    """Scripted channel repair (re-arms the L2LC for arbitration)."""
    return FaultEvent(cycle, REPAIR_CHANNEL, channel=(src, dst, channel))


def fail_input(cycle: int, port: int) -> FaultEvent:
    """Scripted stuck-input fault: the port stops presenting requests."""
    return FaultEvent(cycle, FAIL_INPUT, port=port)


def repair_input(cycle: int, port: int) -> FaultEvent:
    """Scripted stuck-input recovery."""
    return FaultEvent(cycle, REPAIR_INPUT, port=port)


def corrupt_clrg(
    cycle: int, output: int, value: int, port: Optional[int] = None
) -> FaultEvent:
    """Scripted CLRG counter corruption at ``output`` (one input or all)."""
    return FaultEvent(cycle, CORRUPT_CLRG, port=port, output=output, value=value)


class FaultSchedule:
    """An immutable, cycle-ordered sequence of :class:`FaultEvent`\\ s.

    Events sort stably by cycle (scripted same-cycle order is
    preserved), so two schedules built from the same events in the same
    order apply identically — the determinism the golden parity suite
    relies on.  A schedule is shareable: each switch consuming it gets
    its own :class:`FaultCursor`, so running the fast and reference
    kernels from one schedule object is safe.
    """

    __slots__ = ("_events",)

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        materialised = list(events)
        for event in materialised:
            if not isinstance(event, FaultEvent):
                raise TypeError(
                    f"FaultSchedule takes FaultEvent items, got {type(event)!r}"
                )
        materialised.sort(key=lambda event: event.cycle)  # stable
        self._events = tuple(materialised)

    @property
    def events(self) -> Tuple[FaultEvent, ...]:
        """The events, sorted by cycle (stable within a cycle)."""
        return self._events

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultSchedule):
            return NotImplemented
        return self._events == other._events

    def __hash__(self) -> int:
        return hash(self._events)

    def __repr__(self) -> str:
        return f"FaultSchedule({len(self._events)} events)"

    @property
    def max_cycle(self) -> int:
        """Cycle of the last event (-1 for an empty schedule)."""
        return self._events[-1].cycle if self._events else -1

    def event_cycles(self) -> List[int]:
        """Sorted unique cycles at which at least one event fires."""
        return sorted({event.cycle for event in self._events})

    # ------------------------------------------------------------------
    # Stochastic generation
    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        config,
        seed: int,
        horizon: int,
        faults: int = 4,
        mean_downtime: int = 40,
        permanent_fraction: float = 0.0,
        include_inputs: bool = False,
        include_clrg: bool = False,
        start: int = 0,
    ) -> "FaultSchedule":
        """Generate a seeded stochastic schedule (deterministic per seed).

        Args:
            config: A :class:`~repro.core.config.HiRiseConfig` (only its
                geometry — layers, channel multiplicity, radix, class
                count — is read).
            seed: RNG seed; the same seed always yields the same schedule.
            horizon: Fault onset cycles are drawn from ``[start, horizon)``.
            faults: Number of fault onsets to draw.
            mean_downtime: Mean cycles between a transient failure and
                its repair (uniform on ``[1, 2 * mean_downtime]``).
            permanent_fraction: Probability a channel/input fault never
                repairs.
            include_inputs: Also draw stuck-input faults.
            include_clrg: Also draw CLRG counter corruptions.
            start: Earliest onset cycle.
        """
        if horizon <= start:
            raise ValueError("horizon must exceed the start cycle")
        if faults < 0:
            raise ValueError("fault count must be >= 0")
        rng = random.Random(seed)
        kinds = ["channel"]
        if include_inputs:
            kinds.append("input")
        if include_clrg:
            kinds.append("clrg")
        pairs = [
            (src, dst)
            for src in range(config.layers)
            for dst in range(config.layers)
            if src != dst
        ]
        events: List[FaultEvent] = []
        for _ in range(faults):
            cycle = rng.randrange(start, horizon)
            kind = rng.choice(kinds)
            if kind == "channel":
                src, dst = rng.choice(pairs)
                channel = rng.randrange(config.channel_multiplicity)
                events.append(fail_channel(cycle, src, dst, channel))
                if rng.random() >= permanent_fraction:
                    downtime = 1 + rng.randrange(max(2 * mean_downtime, 1))
                    events.append(
                        repair_channel(cycle + downtime, src, dst, channel)
                    )
            elif kind == "input":
                port = rng.randrange(config.radix)
                events.append(fail_input(cycle, port))
                if rng.random() >= permanent_fraction:
                    downtime = 1 + rng.randrange(max(2 * mean_downtime, 1))
                    events.append(repair_input(cycle + downtime, port))
            else:
                output = rng.randrange(config.radix)
                value = rng.randrange(max(config.num_classes - 1, 1))
                events.append(corrupt_clrg(cycle, output, value))
        return cls(events)

    # ------------------------------------------------------------------
    # Serialisation (schedule files for the CLI and CI)
    # ------------------------------------------------------------------
    def to_records(self) -> List[Dict[str, object]]:
        """Events as JSON-serialisable dicts."""
        return [event.to_dict() for event in self._events]

    @classmethod
    def from_records(
        cls, records: Sequence[Dict[str, object]]
    ) -> "FaultSchedule":
        """Build a schedule from :meth:`to_records` output."""
        return cls(FaultEvent.from_dict(record) for record in records)

    def dump(self, destination: Union[str, IO[str]]) -> None:
        """Write the schedule file (``repro.faults/v1`` JSON)."""
        payload = {"format": SCHEDULE_FORMAT, "events": self.to_records()}
        if hasattr(destination, "write"):
            json.dump(payload, destination, indent=2)
        else:
            with open(destination, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2)

    @classmethod
    def load(cls, source: Union[str, IO[str]]) -> "FaultSchedule":
        """Read a schedule file written by :meth:`dump`.

        Raises:
            ValueError: On a wrong format tag or malformed events.
        """
        if hasattr(source, "read"):
            payload = json.load(source)
        else:
            with open(source, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        if payload.get("format") != SCHEDULE_FORMAT:
            raise ValueError(
                f"not a {SCHEDULE_FORMAT} schedule: "
                f"format={payload.get('format')!r}"
            )
        events = payload.get("events")
        if not isinstance(events, list):
            raise ValueError("schedule file needs an 'events' list")
        return cls.from_records(events)

    # ------------------------------------------------------------------
    # Static state reconstruction (degradation phases, reachability)
    # ------------------------------------------------------------------
    def state_at(
        self, cycle: int, initial_failed: Iterable[Tuple[int, int, int]] = ()
    ) -> Tuple[frozenset, frozenset]:
        """``(failed_channels, stuck_inputs)`` after events up to ``cycle``.

        Mirrors the kernel hook exactly: every event with
        ``event.cycle <= cycle`` has been applied.
        """
        failed = set(tuple(entry) for entry in initial_failed)
        stuck: set = set()
        for event in self._events:
            if event.cycle > cycle:
                break
            if event.kind == FAIL_CHANNEL:
                failed.add(event.channel)
            elif event.kind == REPAIR_CHANNEL:
                failed.discard(event.channel)
            elif event.kind == FAIL_INPUT:
                stuck.add(event.port)
            elif event.kind == REPAIR_INPUT:
                stuck.discard(event.port)
        return frozenset(failed), frozenset(stuck)


class FaultCursor:
    """Per-switch read position over a (shared) :class:`FaultSchedule`.

    The kernels call :meth:`take` once per cycle; with no event due it
    costs two comparisons.  Catch-up semantics: *every* event at or
    before the queried cycle is returned, so stepping a switch from a
    nonzero start cycle (or a schedule with cycle-0 events) applies the
    whole backlog on the first step.
    """

    __slots__ = ("_events", "_pos")

    def __init__(self, schedule: FaultSchedule) -> None:
        self._events = schedule.events
        self._pos = 0

    def take(self, cycle: int) -> Optional[List[FaultEvent]]:
        """Events due at or before ``cycle`` (None when there are none)."""
        events = self._events
        pos = self._pos
        if pos >= len(events) or events[pos].cycle > cycle:
            return None
        batch: List[FaultEvent] = []
        while pos < len(events) and events[pos].cycle <= cycle:
            batch.append(events[pos])
            pos += 1
        self._pos = pos
        return batch

    @property
    def applied(self) -> int:
        """Number of events already handed to the switch."""
        return self._pos

    @property
    def remaining(self) -> int:
        """Number of events still pending in the schedule."""
        return len(self._events) - self._pos


def apply_fault_events(switch, events: Sequence[FaultEvent]) -> None:
    """Apply a batch of due fault events to a switch (both kernels).

    This is the shared half of the kernel hook: it mutates only state
    both kernels expose identically (``failed_channels``,
    ``stuck_inputs``, the sub-block arbiters' counter banks) and defers
    representation-specific rebuilds to the kernel's
    ``_refresh_fault_state()``.  Idempotent per event: failing an
    already-failed channel (or repairing a healthy one) is a silent
    no-op and emits no trace event, so fast/reference event streams
    cannot diverge on redundant schedules.
    """
    tracer = switch._tracer
    config = switch.config
    topology_changed = False
    for event in events:
        kind = event.kind
        if kind == FAIL_CHANNEL:
            channel = event.channel
            if channel[2] >= config.channel_multiplicity or not (
                0 <= channel[0] < config.layers
                and 0 <= channel[1] < config.layers
            ):
                raise ValueError(f"fault channel {channel} out of range")
            if channel in switch.failed_channels:
                continue
            switch.failed_channels = switch.failed_channels | {channel}
            topology_changed = True
            if tracer is not None:
                tracer.emit(
                    FAULT_INJECT, FAULT_CHANNEL,
                    config.channel_resource_id(*channel), 0,
                )
        elif kind == REPAIR_CHANNEL:
            channel = event.channel
            if channel not in switch.failed_channels:
                continue
            switch.failed_channels = switch.failed_channels - {channel}
            topology_changed = True
            if tracer is not None:
                tracer.emit(
                    FAULT_REPAIR, FAULT_CHANNEL,
                    config.channel_resource_id(*channel),
                )
        elif kind == FAIL_INPUT:
            port = event.port
            if not 0 <= port < config.radix:
                raise ValueError(f"fault port {port} out of range")
            if port in switch.stuck_inputs:
                continue
            switch.stuck_inputs.add(port)
            topology_changed = True
            if tracer is not None:
                tracer.emit(FAULT_INJECT, FAULT_INPUT, port, 0)
        elif kind == REPAIR_INPUT:
            port = event.port
            if port not in switch.stuck_inputs:
                continue
            switch.stuck_inputs.discard(port)
            topology_changed = True
            if tracer is not None:
                tracer.emit(FAULT_REPAIR, FAULT_INPUT, port)
        elif kind == CORRUPT_CLRG:
            output = event.output
            if not 0 <= output < config.radix:
                raise ValueError(f"fault output {output} out of range")
            counters = getattr(switch.subblock_arbiters[output], "counters", None)
            if counters is None:
                continue  # non-CLRG scheme: nothing to corrupt
            value = min(max(int(event.value), 0), counters.max_count)
            if event.port is not None and not 0 <= event.port < counters.num_inputs:
                raise ValueError(f"fault port {event.port} out of range")
            if hasattr(counters, "_costs"):
                # QoS banks shadow the integer counters with float costs.
                if event.port is None:
                    counters._costs = [float(value)] * counters.num_inputs
                else:
                    counters._costs[event.port] = float(value)
            elif event.port is None:
                counters._counts = [value] * counters.num_inputs
            else:
                counters._counts[event.port] = value
            if tracer is not None:
                tracer.emit(FAULT_INJECT, FAULT_CLRG, output, value)
        else:  # pragma: no cover - FaultEvent validates kinds
            raise ValueError(f"unknown fault kind {kind!r}")
    if topology_changed:
        switch._refresh_fault_state()


def describe_fault_state(switch) -> Dict[str, object]:
    """JSON-serialisable live fault state of a switch.

    Embedded in telemetry snapshots (and therefore in the drain-stall
    ``RuntimeError``), so a wedge under faults shows *which* channels
    were dead and how much of the schedule was still pending.
    """
    state: Dict[str, object] = {
        "failed_channels": sorted(
            list(channel) for channel in switch.failed_channels
        ),
        "stuck_inputs": sorted(getattr(switch, "stuck_inputs", ()) or ()),
    }
    cursor = getattr(switch, "_fault_cursor", None)
    if cursor is not None:
        state["applied_events"] = cursor.applied
        state["pending_events"] = cursor.remaining
    return state


# ---------------------------------------------------------------------------
# Degraded-mode measurement (CLI `repro faults`, CI fault-smoke)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class DegradationPhase:
    """Metrics for one inter-event window of a degraded run."""

    start_cycle: int
    end_cycle: int             # exclusive
    failed_channels: int       # active channel faults during the phase
    stuck_inputs: int          # active stuck inputs during the phase
    packets_ejected: int
    flits_ejected: int
    throughput: float          # packets per cycle
    avg_latency: float         # cycles (nan when nothing delivered)
    reachable_fraction: float  # reachable (src, dst) pairs / radix^2

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (one entry of the report's phase list)."""
        return {
            "start_cycle": self.start_cycle,
            "end_cycle": self.end_cycle,
            "failed_channels": self.failed_channels,
            "stuck_inputs": self.stuck_inputs,
            "packets_ejected": self.packets_ejected,
            "flits_ejected": self.flits_ejected,
            "throughput": self.throughput,
            "avg_latency": self.avg_latency,
            "reachable_fraction": self.reachable_fraction,
        }


@dataclass(frozen=True)
class DegradationReport:
    """Phase-by-phase degradation profile of one faulted run."""

    kernel: str
    load: float
    seed: int
    warmup_cycles: int
    measure_cycles: int
    schedule_events: int
    phases: Tuple[DegradationPhase, ...]
    total_packets: int
    total_cycles: int

    @property
    def overall_throughput(self) -> float:
        if self.total_cycles == 0:
            return 0.0
        return self.total_packets / self.total_cycles

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (rendered by the CLI and markdown)."""
        return {
            "kernel": self.kernel,
            "load": self.load,
            "seed": self.seed,
            "warmup_cycles": self.warmup_cycles,
            "measure_cycles": self.measure_cycles,
            "schedule_events": self.schedule_events,
            "total_packets": self.total_packets,
            "total_cycles": self.total_cycles,
            "overall_throughput": self.overall_throughput,
            "phases": [phase.to_dict() for phase in self.phases],
        }


def reachable_fraction(
    config, failed_channels: Iterable[Tuple[int, int, int]]
) -> float:
    """Fraction of (src, dst) pairs connected under a live fault set."""
    from repro.analysis.connectivity import reachable_outputs

    failed = frozenset(tuple(entry) for entry in failed_channels)
    reachable = sum(
        len(reachable_outputs(config, src, failed_channels=failed))
        for src in range(config.radix)
    )
    return reachable / float(config.radix * config.radix)


def measure_degradation(
    config,
    schedule: FaultSchedule,
    load: float = 0.9,
    seed: int = 0,
    measure_cycles: int = 500,
    warmup_cycles: int = 50,
    kernel: str = "fast",
    tracer=None,
) -> DegradationReport:
    """Run a faulted simulation, slicing metrics at every event cycle.

    The measurement window ``[warmup, warmup + measure_cycles)`` is split
    into phases at each distinct schedule-event cycle; each phase reports
    its own throughput, latency, live fault counts, and proven
    reachability (:mod:`repro.analysis.connectivity` under the phase's
    failed-channel set).  No drain pass runs: a partitioned schedule
    (all channels of a pair dead) leaves undeliverable traffic queued,
    which is exactly the degraded mode being measured.
    """
    from repro.network.engine import Simulation
    from repro.traffic import UniformRandomTraffic

    switch = _make_switch(config, kernel, schedule, tracer)
    traffic = UniformRandomTraffic(config.radix, load=load, seed=seed)
    simulation = Simulation(switch, traffic, warmup_cycles=warmup_cycles)

    start = warmup_cycles
    end = warmup_cycles + measure_cycles
    boundaries = [start]
    boundaries.extend(
        cycle for cycle in schedule.event_cycles() if start < cycle < end
    )
    boundaries.append(end)

    phases: List[DegradationPhase] = []
    total_packets = 0
    total_cycles = 0
    reach_cache: Dict[frozenset, float] = {}
    for phase_start, phase_end in zip(boundaries, boundaries[1:]):
        window = phase_end - phase_start
        result = simulation.run(measure_cycles=window)
        failed, stuck = schedule.state_at(
            phase_start, initial_failed=config.failed_channels
        )
        reach = reach_cache.get(failed)
        if reach is None:
            reach = reachable_fraction(config, failed)
            reach_cache[failed] = reach
        phases.append(DegradationPhase(
            start_cycle=phase_start,
            end_cycle=phase_end,
            failed_channels=len(failed),
            stuck_inputs=len(stuck),
            packets_ejected=result.packets_ejected,
            flits_ejected=result.flits_ejected,
            throughput=result.throughput_packets_per_cycle,
            avg_latency=result.avg_latency_cycles,
            reachable_fraction=reach,
        ))
        total_packets += result.packets_ejected
        total_cycles += window
    return DegradationReport(
        kernel=kernel,
        load=load,
        seed=seed,
        warmup_cycles=warmup_cycles,
        measure_cycles=measure_cycles,
        schedule_events=len(schedule),
        phases=tuple(phases),
        total_packets=total_packets,
        total_cycles=total_cycles,
    )


def _make_switch(config, kernel: str, schedule: Optional[FaultSchedule],
                 tracer=None, invariants=None):
    """Instantiate a kernel by name with a fault schedule attached."""
    if kernel == "fast":
        from repro.core.hirise import HiRiseSwitch

        return HiRiseSwitch(
            config, tracer=tracer, faults=schedule, invariants=invariants
        )
    if kernel == "reference":
        from repro.core.reference import ReferenceHiRiseSwitch

        return ReferenceHiRiseSwitch(
            config, tracer=tracer, faults=schedule, invariants=invariants
        )
    raise ValueError(f"unknown kernel {kernel!r} (expected fast|reference)")


def verify_parity(
    config,
    schedule: Optional[FaultSchedule] = None,
    load: float = 0.9,
    seed: int = 0,
    measure_cycles: int = 300,
    warmup_cycles: int = 40,
    traffic_factory=None,
    invariants: bool = False,
    drain: bool = False,
    fleet_lanes: int = 0,
) -> List[str]:
    """Run both kernels under one schedule; return mismatch descriptions.

    Both kernels are traced, so the check covers results *and* the full
    trace event streams (the acceptance bar for golden parity under
    faults).  An empty list means bit-identical.

    Args:
        schedule: Fault schedule shared by both runs (``None`` = no
            faults).
        traffic_factory: ``callable(config) -> TrafficSource`` building
            a *fresh* source per kernel (sources hold RNG state);
            defaults to uniform random at ``load``/``seed``.
        invariants: Attach a fresh
            :class:`repro.check.invariants.InvariantChecker` to each
            kernel; a violation propagates to the caller.
        drain: Run each simulation with ``drain=True`` (a wedged drain
            raises :class:`repro.check.invariants.DrainStallError`).
        fleet_lanes: When > 0, additionally run the batched fleet kernel
            with this many lanes (lane ``i`` seeded ``seed + i``, or
            ``traffic_factory`` per lane when given) and compare every
            lane against a scalar fast-kernel run; lane mismatches are
            appended as ``"fleet lane i: …"`` entries.  Requires numpy
            and a fleet-supported config
            (:func:`repro.core.fleet.fleet_supports`).
    """
    from repro.network.engine import Simulation
    from repro.obs.trace import SwitchTracer
    from repro.traffic import UniformRandomTraffic

    results = {}
    traces = {}
    for kernel in ("fast", "reference"):
        tracer = SwitchTracer(capacity=None)
        checker = None
        if invariants:
            from repro.check.invariants import InvariantChecker

            checker = InvariantChecker()
        switch = _make_switch(config, kernel, schedule, tracer, checker)
        if traffic_factory is not None:
            traffic = traffic_factory(config)
        else:
            traffic = UniformRandomTraffic(config.radix, load=load, seed=seed)
        simulation = Simulation(switch, traffic, warmup_cycles=warmup_cycles)
        results[kernel] = simulation.run(
            measure_cycles=measure_cycles, drain=drain
        )
        traces[kernel] = tracer.events
    fast, reference = results["fast"], results["reference"]
    mismatches: List[str] = []
    for field_name in (
        "packets_injected", "packets_ejected", "flits_ejected", "cycles",
        "packet_latencies", "per_input_ejected", "per_input_latency_sum",
        "per_output_ejected",
    ):
        if getattr(fast, field_name) != getattr(reference, field_name):
            mismatches.append(f"result field {field_name} differs")
    if traces["fast"] != traces["reference"]:
        length = f"{len(traces['fast'])} vs {len(traces['reference'])} events"
        for index, (left, right) in enumerate(
            zip(traces["fast"], traces["reference"])
        ):
            if left != right:
                mismatches.append(
                    f"trace diverges at event {index}: "
                    f"fast={left} reference={right} ({length})"
                )
                break
        else:
            mismatches.append(f"trace length differs: {length}")
    if fleet_lanes > 0:
        from repro.core.fleet import verify_fleet_parity

        factories = None
        if traffic_factory is not None:
            factories = [
                (lambda: traffic_factory(config))
            ] * fleet_lanes
        mismatches.extend(
            verify_fleet_parity(
                config,
                schedule=schedule,
                load=load,
                seed=seed,
                measure_cycles=measure_cycles,
                warmup_cycles=warmup_cycles,
                lanes=fleet_lanes,
                drain=drain,
                traffic_factories=factories,
            )
        )
    return mismatches

"""Runtime structural invariants for the Hi-Rise cycle kernels.

An :class:`InvariantChecker` is handed to a switch at construction
(``HiRiseSwitch(config, invariants=...)`` or
``ReferenceHiRiseSwitch(config, invariants=...)``) and re-verifies, at
the end of every ``step(cycle)``, the structural properties the paper's
single-cycle two-phase arbitration guarantees by construction:

* **flit conservation** — every injected flit is either still inside
  the switch or has been ejected (the fault model *quiesces* in-flight
  packets, it never drops flits, so dropped-by-fault is identically 0);
* **path coherence** — ``connections``, ``resource_owner``,
  ``output_owner`` and the ports' active-VC state describe the same set
  of locked paths (at most one grant per output sub-block, at most one
  owner per resource);
* **grant legality** — a path granted this cycle went to a non-stuck
  input, over a healthy (non-failed, non-diagonal) resource that
  geometrically connects the input's layer to the output's layer, and
  never to an input/output/resource in its cooling blackout cycle;
* **L2LC occupancy** — at most ``c`` busy channels per ordered layer
  pair (Section III-A's channel redundancy bound);
* **CLRG sanity** — class counters stay within their saturation range
  ``[0, num_classes - 1]``, banks halve at most once per cycle (one
  grant per output per cycle), and a halving cycle leaves every counter
  at ``<= max_count // 2 + 1`` (halve-all-together plus the winner's
  increment, Section III-B);
* **LRG total order** — every least-recently-granted arbiter's recency
  keys are pairwise distinct with the next stamp strictly above them
  (a valid total order, the paper's LRG priority invariant).

Like the ``tracer=`` and ``faults=`` hooks, the checker is opt-in at
construction: an unchecked switch carries a single predictable
``invariants is None`` branch per cycle and is bit-identical to the
pre-checker kernels.  A failed check raises a structured
:class:`InvariantViolation` carrying the cycle, the implicated flat
resource/port ids, and a telemetry snapshot — and, on a traced switch,
emits one ``invariant`` trace event first so the failure is visible on
the timeline.
"""

import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "CHECK_CODES",
    "DrainStallError",
    "InvariantChecker",
    "InvariantViolation",
]

#: Check name -> integer code used in the ``invariant`` trace event.
CHECK_CODES: Dict[str, int] = {
    "flit_conservation": 0,
    "path_coherence": 1,
    "output_uniqueness": 2,
    "grant_legality": 3,
    "l2lc_occupancy": 4,
    "clrg_counters": 5,
    "lrg_order": 6,
    "drain_stall": 7,
    # VOQ scheduler checks (repro.check.matching).
    "matching_validity": 8,
    "stuck_input_grant": 9,
    "voq_occupancy": 10,
}


class InvariantViolation(RuntimeError):
    """A structural switch invariant failed during a checked run.

    Attributes:
        check: Invariant name (a :data:`CHECK_CODES` key).
        cycle: Simulation cycle the violation was detected at.
        resources: Implicated flat resource/port ids (may be empty).
        snapshot: :func:`repro.obs.telemetry_snapshot` of the switch at
            detection time (``None`` when no switch was available).
    """

    def __init__(
        self,
        message: str,
        *,
        check: str = "",
        cycle: int = -1,
        resources: Sequence[int] = (),
        snapshot: Optional[Dict[str, object]] = None,
    ) -> None:
        super().__init__(message)
        self.check = check
        self.cycle = cycle
        self.resources = tuple(int(r) for r in resources)
        self.snapshot = snapshot

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable record (embedded in repro files)."""
        return {
            "check": self.check,
            "cycle": self.cycle,
            "resources": list(self.resources),
            "message": str(self),
            "snapshot": self.snapshot,
        }


class DrainStallError(InvariantViolation):
    """A draining simulation made no progress for the idle limit.

    Raised by :meth:`repro.network.engine.Simulation.run` in place of
    the former bare ``RuntimeError`` (which it still is, so existing
    callers keep working) so ``repro check`` classifies a wedged drain
    as a structured violation instead of crashing the fuzz loop.
    """

    def __init__(
        self,
        message: str,
        *,
        cycle: int = -1,
        idle_cycles: int = 0,
        occupancy: int = 0,
        snapshot: Optional[Dict[str, object]] = None,
    ) -> None:
        super().__init__(
            message, check="drain_stall", cycle=cycle, snapshot=snapshot
        )
        self.idle_cycles = idle_cycles
        self.occupancy = occupancy


class InvariantChecker:
    """Per-cycle structural invariant verification for one switch.

    A checker binds to exactly one switch (differential runs need one
    checker per kernel); it counts injected flits by wrapping the
    switch's injection methods and re-derives everything else from the
    public path state after each step, so a passing checked run is
    bit-identical to an unchecked one.

    Args:
        snapshot_ports: Port-list cap passed to the telemetry snapshot
            embedded in violations.
    """

    def __init__(self, snapshot_ports: int = 8) -> None:
        self.snapshot_ports = snapshot_ports
        self.injected_flits = 0
        self.injected_packets = 0
        self.ejected_flits = 0
        self.cycles_checked = 0
        self.config = None
        self._switch = None
        self._rid_of_key: Dict[Tuple, int] = {}
        self._prev_connections: Dict[int, Tuple[int, int]] = {}
        self._prev_halvings: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Construction-time wiring (called by the kernels)
    # ------------------------------------------------------------------
    def bind(self, switch) -> None:
        """Attach to a switch; wraps its injection methods for counting."""
        if self._switch is not None and self._switch is not switch:
            raise ValueError(
                "an InvariantChecker verifies exactly one switch; "
                "build one checker per kernel"
            )
        self._switch = switch
        self.config = switch.config
        self._rid_of_key = {
            key: rid
            for rid, key in enumerate(switch.config.resource_key_table)
        }

        original_inject = switch.inject

        def _counting_inject(packet, _original=original_inject):
            _original(packet)
            self.injected_packets += 1
            self.injected_flits += packet.num_flits

        switch.inject = _counting_inject

        original_many = getattr(switch, "inject_many", None)
        if original_many is not None:

            def _counting_inject_many(packets, _original=original_many):
                materialised = list(packets)
                count = _original(materialised)
                self.injected_packets += count
                self.injected_flits += sum(
                    packet.num_flits for packet in materialised
                )
                return count

            switch.inject_many = _counting_inject_many

    # ------------------------------------------------------------------
    # Failure path
    # ------------------------------------------------------------------
    def _fail(
        self,
        switch,
        check: str,
        cycle: int,
        detail: str,
        resources: Sequence[int] = (),
    ) -> None:
        from repro.obs.snapshot import telemetry_snapshot
        from repro.obs.trace import INVARIANT

        tracer = getattr(switch, "_tracer", None)
        if tracer is not None:
            first = resources[0] if resources else -1
            second = resources[1] if len(resources) > 1 else -1
            tracer.emit(INVARIANT, CHECK_CODES.get(check, -1), first, second)
        snapshot = telemetry_snapshot(switch, max_ports=self.snapshot_ports)
        raise InvariantViolation(
            f"invariant {check!r} violated at cycle {cycle}: {detail}",
            check=check,
            cycle=cycle,
            resources=resources,
            snapshot=snapshot,
        )

    # ------------------------------------------------------------------
    # State normalisation (fast kernel: flat ids; reference: tuple keys)
    # ------------------------------------------------------------------
    def _flat_connections(self, switch) -> Dict[int, Tuple[int, int]]:
        rid_of_key = self._rid_of_key
        flat: Dict[int, Tuple[int, int]] = {}
        for input_port, (resource, output) in switch.connections.items():
            rid = resource if isinstance(resource, int) else rid_of_key[resource]
            flat[input_port] = (rid, output)
        return flat

    def _busy_resources(self, switch) -> Dict[int, int]:
        owner_state = switch.resource_owner
        if isinstance(owner_state, dict):
            rid_of_key = self._rid_of_key
            return {
                rid_of_key[key]: owner for key, owner in owner_state.items()
            }
        return {
            rid: owner for rid, owner in enumerate(owner_state) if owner >= 0
        }

    def _cooling(self, switch):
        paths = getattr(switch, "_cooling_paths", None)
        if paths is not None:
            # Fast kernel: (src, output, rid) triples torn down this
            # cycle.  (The permanent diagonal sentinels live only in the
            # _res_cooling bytearray, never here.)
            inputs = {path[0] for path in paths}
            outputs = {path[1] for path in paths}
            resources = {path[2] for path in paths}
        else:
            rid_of_key = self._rid_of_key
            inputs = set(switch._cooling_inputs)
            outputs = set(switch._cooling_outputs)
            resources = {rid_of_key[key] for key in switch._cooling_resources}
        return inputs, outputs, resources

    # ------------------------------------------------------------------
    # The per-cycle check (called at the end of step())
    # ------------------------------------------------------------------
    def after_step(self, switch, cycle: int, ejected) -> None:
        """Verify every invariant against the post-step switch state."""
        self.cycles_checked += 1
        self.ejected_flits += len(ejected)
        cfg = switch.config

        # 1. Flit conservation: the fault model quiesces in-flight
        # packets (flits are never dropped), so the ledger is exact.
        occupancy = switch.occupancy()
        expected = occupancy + self.ejected_flits
        if self.injected_flits != expected:
            self._fail(
                switch, "flit_conservation", cycle,
                f"{self.injected_flits} flits injected but "
                f"{occupancy} in flight + {self.ejected_flits} ejected "
                f"= {expected}",
            )

        connections = self._flat_connections(switch)
        busy = self._busy_resources(switch)

        # 2/3. Path coherence and output uniqueness.
        outputs_seen: Dict[int, int] = {}
        resources_seen: Dict[int, int] = {}
        key_table = cfg.resource_key_table
        for input_port, (rid, output) in connections.items():
            prior = outputs_seen.get(output)
            if prior is not None:
                self._fail(
                    switch, "output_uniqueness", cycle,
                    f"output {output} held by inputs {prior} and "
                    f"{input_port} simultaneously",
                    resources=(output, prior, input_port),
                )
            outputs_seen[output] = input_port
            prior = resources_seen.get(rid)
            if prior is not None:
                self._fail(
                    switch, "path_coherence", cycle,
                    f"resource {key_table[rid]} held by inputs {prior} "
                    f"and {input_port} simultaneously",
                    resources=(rid, prior, input_port),
                )
            resources_seen[rid] = input_port
            if busy.get(rid) != input_port:
                self._fail(
                    switch, "path_coherence", cycle,
                    f"connection {input_port} -> {key_table[rid]} but "
                    f"resource owner is {busy.get(rid)}",
                    resources=(rid, input_port),
                )
            if switch.output_owner[output] != input_port:
                self._fail(
                    switch, "path_coherence", cycle,
                    f"connection {input_port} -> output {output} but "
                    f"output owner is {switch.output_owner[output]}",
                    resources=(output, input_port),
                )
        for rid, owner in busy.items():
            if rid not in resources_seen:
                self._fail(
                    switch, "path_coherence", cycle,
                    f"resource {key_table[rid]} owned by input {owner} "
                    f"without a connection (leaked path)",
                    resources=(rid, owner),
                )
        for output, owner in enumerate(switch.output_owner):
            if owner is not None and outputs_seen.get(output) != owner:
                self._fail(
                    switch, "path_coherence", cycle,
                    f"output {output} owned by input {owner} without a "
                    f"connection (leaked output)",
                    resources=(output, owner),
                )
        for port in switch.ports:
            connected = port.port_id in connections
            if (port.active_vc is not None) != connected:
                self._fail(
                    switch, "path_coherence", cycle,
                    f"input {port.port_id} active_vc={port.active_vc} "
                    f"but connected={connected}",
                    resources=(port.port_id,),
                )

        # 3. Grant legality for paths locked this cycle.
        cooling_inputs, cooling_outputs, cooling_resources = (
            self._cooling(switch)
        )
        previous = self._prev_connections
        failed_channels = switch.failed_channels
        for input_port, path in connections.items():
            if previous.get(input_port) == path:
                continue  # held over from an earlier cycle
            rid, output = path
            if switch.grant_cycle.get(input_port) != cycle:
                self._fail(
                    switch, "grant_legality", cycle,
                    f"new path {input_port} -> output {output} carries "
                    f"grant cycle {switch.grant_cycle.get(input_port)}",
                    resources=(rid, input_port),
                )
            if input_port in switch.stuck_inputs:
                self._fail(
                    switch, "grant_legality", cycle,
                    f"stuck input {input_port} was granted output {output}",
                    resources=(rid, input_port),
                )
            if (input_port in cooling_inputs or output in cooling_outputs
                    or rid in cooling_resources):
                self._fail(
                    switch, "grant_legality", cycle,
                    f"grant {input_port} -> output {output} through "
                    f"{key_table[rid]} during its cooling blackout",
                    resources=(rid, input_port),
                )
            key = key_table[rid]
            if key[0] == "ch":
                src_layer, dst_layer, channel = key[1], key[2], key[3]
                if src_layer == dst_layer:
                    self._fail(
                        switch, "grant_legality", cycle,
                        f"diagonal channel {key} granted",
                        resources=(rid, input_port),
                    )
                if (src_layer, dst_layer, channel) in failed_channels:
                    self._fail(
                        switch, "grant_legality", cycle,
                        f"failed channel {key} granted to input "
                        f"{input_port}",
                        resources=(rid, input_port),
                    )
                if (cfg.layer_of_port(input_port) != src_layer
                        or cfg.layer_of_port(output) != dst_layer):
                    self._fail(
                        switch, "grant_legality", cycle,
                        f"channel {key} does not connect input "
                        f"{input_port} to output {output}",
                        resources=(rid, input_port),
                    )
            else:  # intermediate output: same-layer path, rid == output
                if (cfg.layer_of_port(input_port) != key[1]
                        or output != rid):
                    self._fail(
                        switch, "grant_legality", cycle,
                        f"intermediate output {key} does not connect "
                        f"input {input_port} to output {output}",
                        resources=(rid, input_port),
                    )

        # 4. L2LC occupancy <= c per ordered layer pair.
        pair_busy: Dict[Tuple[int, int], int] = {}
        for rid in busy:
            key = key_table[rid]
            if key[0] != "ch":
                continue
            pair = (key[1], key[2])
            pair_busy[pair] = pair_busy.get(pair, 0) + 1
        for pair, count in pair_busy.items():
            if count > cfg.channel_multiplicity:
                self._fail(
                    switch, "l2lc_occupancy", cycle,
                    f"{count} busy channels between layers {pair[0]} -> "
                    f"{pair[1]} exceeds c={cfg.channel_multiplicity}",
                    resources=pair,
                )

        # 5. CLRG counter sanity (integer banks only: the QoS extension
        # charges fractional costs whose post-halving bound depends on
        # the weights, so it is exempt from the integer-bank bounds).
        prev_halvings = self._prev_halvings
        for output, arbiter in switch.subblock_arbiters.items():
            counters = getattr(arbiter, "counters", None)
            if counters is None:
                continue
            counts = counters.counts()
            halvings = counters.halvings
            integer_bank = all(isinstance(value, int) for value in counts)
            if integer_bank and any(
                value < 0 or value > counters.max_count for value in counts
            ):
                self._fail(
                    switch, "clrg_counters", cycle,
                    f"output {output} class counters {counts} outside "
                    f"[0, {counters.max_count}]",
                    resources=(output,),
                )
            before = prev_halvings.get(output, halvings)
            if halvings < before or halvings > before + 1:
                self._fail(
                    switch, "clrg_counters", cycle,
                    f"output {output} halvings went {before} -> "
                    f"{halvings} in one cycle (one grant per output per "
                    f"cycle allows at most one halving)",
                    resources=(output,),
                )
            if integer_bank and halvings == before + 1:
                bound = counters.max_count // 2 + 1
                if max(counts) > bound:
                    self._fail(
                        switch, "clrg_counters", cycle,
                        f"output {output} halved this cycle but counters "
                        f"{counts} exceed {bound} (bank did not halve "
                        f"all together)",
                        resources=(output,),
                    )
            prev_halvings[output] = halvings

        # 6. LRG recency keys form a valid total order everywhere.
        self._check_lrg_orders(switch, cycle)

        self._prev_connections = connections

    def _check_lrg_orders(self, switch, cycle: int) -> None:
        def check_one(arbiter, label: str) -> None:
            lrg = arbiter if hasattr(arbiter, "_rank") else getattr(
                arbiter, "lrg", None
            )
            if lrg is None or not hasattr(lrg, "_rank"):
                return  # round-robin / age sub-blocks carry no LRG state
            ranks = lrg._rank
            if len(set(ranks)) != len(ranks) or lrg._stamp <= max(ranks):
                self._fail(
                    switch, "lrg_order", cycle,
                    f"{label} recency keys {list(ranks)} (next stamp "
                    f"{lrg._stamp}) are not a valid total order",
                )

        for (layer, local), arbiter in switch.int_arbiters.items():
            check_one(arbiter, f"intermediate arbiter L{layer}.{local}")
        for (src, dst, channel), arbiter in switch.chan_arbiters.items():
            check_one(arbiter, f"channel arbiter L{src}->L{dst}#{channel}")
        for (src, dst), arbiter in switch.pair_arbiters.items():
            check_one(arbiter, f"pair arbiter L{src}->L{dst}")
        for output, arbiter in switch.subblock_arbiters.items():
            check_one(arbiter, f"sub-block arbiter out{output}")

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, int]:
        """Conservation ledger totals (embedded in telemetry snapshots)."""
        return {
            "cycles_checked": self.cycles_checked,
            "injected_packets": self.injected_packets,
            "injected_flits": self.injected_flits,
            "ejected_flits": self.ejected_flits,
        }

    def __repr__(self) -> str:
        return (
            f"InvariantChecker(cycles_checked={self.cycles_checked}, "
            f"injected_flits={self.injected_flits}, "
            f"ejected_flits={self.ejected_flits})"
        )

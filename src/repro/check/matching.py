"""Runtime invariants for the VOQ input-queued switch.

The matching-legality twin of :class:`repro.check.InvariantChecker`:
where the Hi-Rise checker re-derives path/arbiter legality from the 3D
switch's resource tables, this checker verifies the scheduler contract
of :class:`repro.switches.VOQSwitch` after every cycle:

* **flit conservation** — injected = ejected + resident (faults wedge
  traffic, they never drop it);
* **matching validity** — the connection set is a bipartite matching:
  no output driven by two inputs, ``output_owner`` coherent with
  ``connections``, every connection's resource id equal to its output
  (the VOQ fabric is flat);
* **grant legality** — no connection established for an input the
  fault schedule has stuck (schedulers must not chase the phantom
  weight of a port that cannot transmit), and no grant to an input or
  output whose tail moved the same cycle (the single-cycle
  arbitrate-or-transmit contract);
* **voq_occupancy** — every stage's occupancy row equals its actual
  VOQ lengths (the weights the schedulers saw were real).

Attached via the same ``invariants=`` constructor hook; checked runs
stay bit-identical to unchecked runs.  :func:`checker_for` picks the
right checker class for a config's arbitration scheme.
"""

from typing import Dict, Optional, Sequence, Set, Tuple

from repro.check.invariants import CHECK_CODES, InvariantViolation

__all__ = ["MatchingInvariantChecker", "checker_for"]


class MatchingInvariantChecker:
    """Per-cycle matching-legality verification for one VOQ switch.

    Mirrors the :class:`repro.check.InvariantChecker` interface
    (``bind``/``after_step``/``summary``) so the harness and the
    telemetry snapshot treat both checker families identically.
    """

    def __init__(self, snapshot_ports: int = 8) -> None:
        self.snapshot_ports = snapshot_ports
        self.injected_flits = 0
        self.injected_packets = 0
        self.ejected_flits = 0
        self.cycles_checked = 0
        self.config = None
        self._switch = None
        self._prev_connections: Dict[int, Tuple[int, int]] = {}

    def bind(self, switch) -> None:
        """Attach to a switch; wraps its injection methods for counting."""
        if self._switch is not None and self._switch is not switch:
            raise ValueError(
                "a MatchingInvariantChecker verifies exactly one switch; "
                "build one checker per switch"
            )
        self._switch = switch
        self.config = switch.config

        original_inject = switch.inject

        def _counting_inject(packet, _original=original_inject):
            _original(packet)
            self.injected_packets += 1
            self.injected_flits += packet.num_flits

        switch.inject = _counting_inject

        original_many = getattr(switch, "inject_many", None)
        if original_many is not None:

            def _counting_inject_many(packets, _original=original_many):
                materialised = list(packets)
                count = _original(materialised)
                self.injected_packets += count
                self.injected_flits += sum(
                    packet.num_flits for packet in materialised
                )
                return count

            switch.inject_many = _counting_inject_many

    # ------------------------------------------------------------------
    # Failure path (identical shape to InvariantChecker._fail)
    # ------------------------------------------------------------------
    def _fail(
        self,
        switch,
        check: str,
        cycle: int,
        detail: str,
        resources: Sequence[int] = (),
    ) -> None:
        from repro.obs.snapshot import telemetry_snapshot
        from repro.obs.trace import INVARIANT

        tracer = getattr(switch, "_tracer", None)
        if tracer is not None:
            first = resources[0] if resources else -1
            second = resources[1] if len(resources) > 1 else -1
            tracer.emit(INVARIANT, CHECK_CODES.get(check, -1), first, second)
        snapshot = telemetry_snapshot(switch, max_ports=self.snapshot_ports)
        raise InvariantViolation(
            f"invariant {check!r} violated at cycle {cycle}: {detail}",
            check=check,
            cycle=cycle,
            resources=resources,
            snapshot=snapshot,
        )

    # ------------------------------------------------------------------
    # The per-cycle check (called at the end of VOQSwitch.step())
    # ------------------------------------------------------------------
    def after_step(self, switch, cycle: int, ejected) -> None:
        """Verify the scheduler contract against post-step state."""
        self.cycles_checked += 1
        self.ejected_flits += len(ejected)

        # 1. Flit conservation.
        occupancy = switch.occupancy()
        expected = self.injected_flits - self.ejected_flits
        if occupancy != expected:
            self._fail(
                switch, "flit_conservation", cycle,
                f"resident flits {occupancy} != injected "
                f"{self.injected_flits} - ejected {self.ejected_flits}",
            )

        # 2. Matching validity: connections form a matching and agree
        # with output_owner in both directions.
        connections = switch.connections
        output_owner = switch.output_owner
        seen_outputs: Set[int] = set()
        for inp, (resource, output) in connections.items():
            if resource != output:
                self._fail(
                    switch, "matching_validity", cycle,
                    f"input {inp} resource id {resource} != output "
                    f"{output} (VOQ resources are output ports)",
                    (inp, output),
                )
            if output in seen_outputs:
                self._fail(
                    switch, "matching_validity", cycle,
                    f"output {output} matched to two inputs",
                    (output,),
                )
            seen_outputs.add(output)
            if output_owner[output] != inp:
                self._fail(
                    switch, "matching_validity", cycle,
                    f"connection {inp}->{output} but output_owner"
                    f"[{output}] is {output_owner[output]}",
                    (inp, output),
                )
        for output, owner in enumerate(output_owner):
            if owner is not None and connections.get(owner, (None, None))[1] != output:
                self._fail(
                    switch, "matching_validity", cycle,
                    f"output_owner[{output}] = {owner} without a "
                    f"matching connection",
                    (owner, output),
                )

        # 3. Grant legality: connections established this cycle must not
        # involve stuck inputs or endpoints whose tail moved this cycle.
        prev = self._prev_connections
        stuck = switch.stuck_inputs
        cooling_inputs = {f.src for f in ejected if f.is_tail}
        cooling_outputs = {f.dst for f in ejected if f.is_tail}
        for inp, (resource, output) in connections.items():
            if prev.get(inp) == (resource, output):
                continue  # established in an earlier cycle
            if inp in stuck:
                self._fail(
                    switch, "stuck_input_grant", cycle,
                    f"scheduler granted output {output} to stuck "
                    f"input {inp}",
                    (inp, output),
                )
            if inp in cooling_inputs or output in cooling_outputs:
                self._fail(
                    switch, "grant_legality", cycle,
                    f"grant {inp}->{output} in the same cycle its "
                    f"endpoint transmitted a tail",
                    (inp, output),
                )
            if switch.grant_cycle.get(inp) != cycle:
                self._fail(
                    switch, "grant_legality", cycle,
                    f"new connection {inp}->{output} without a grant "
                    f"stamp this cycle",
                    (inp, output),
                )
        self._prev_connections = dict(connections)

        # 4. VOQ occupancy rows match the actual queue lengths.
        for stage in switch.stages:
            for output, count in enumerate(stage.occupancy_row):
                actual = len(stage.voqs[output])
                if count != actual:
                    self._fail(
                        switch, "voq_occupancy", cycle,
                        f"stage {stage.input_id} VOQ[{output}] counter "
                        f"{count} != length {actual}",
                        (stage.input_id, output),
                    )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, int]:
        """Conservation ledger totals (embedded in telemetry snapshots)."""
        return {
            "cycles_checked": self.cycles_checked,
            "injected_packets": self.injected_packets,
            "injected_flits": self.injected_flits,
            "ejected_flits": self.ejected_flits,
        }

    def __repr__(self) -> str:
        return (
            f"MatchingInvariantChecker(cycles_checked={self.cycles_checked}, "
            f"injected_flits={self.injected_flits}, "
            f"ejected_flits={self.ejected_flits})"
        )


def checker_for(config, snapshot_ports: int = 8):
    """Build the invariant checker matching a config's scheme family.

    VOQ schemes get a :class:`MatchingInvariantChecker`; Hi-Rise
    schemes get the structural :class:`repro.check.InvariantChecker`.
    """
    if config.uses_voq:
        return MatchingInvariantChecker(snapshot_ports=snapshot_ports)
    from repro.check.invariants import InvariantChecker

    return InvariantChecker(snapshot_ports=snapshot_ports)

"""Greedy shrinking of failing fuzz cases.

:func:`minimize_case` repeatedly proposes smaller variants of a failing
:class:`~repro.check.fuzz.CaseSpec` — dropping individual fault events,
bisecting the cycle counts, disabling drain, and shrinking the geometry
(ports per layer, layer count, channel multiplicity, class count) — and
keeps a variant whenever the caller-supplied ``still_fails`` predicate
confirms the failure reproduces on it.  The loop restarts after every
accepted shrink and stops at a fixpoint (or the attempt budget), so the
result is locally minimal: no single remaining transformation keeps the
failure alive.

The predicate sees candidates that may be *invalid* (e.g. a fault event
referencing a port shrunk out of existence is filtered proactively, but
a traffic/config combination can still reject); any exception from the
predicate counts as "does not reproduce" and the candidate is discarded.
"""

import dataclasses
from typing import Callable, Dict, Iterator, List, Tuple

from repro.check.fuzz import CaseSpec

__all__ = ["case_size", "minimize_case"]


def case_size(case: CaseSpec) -> int:
    """Scalar shrink metric: strictly decreases along accepted shrinks."""
    return (
        case.radix * (case.warmup_cycles + case.measure_cycles)
        + 50 * len(case.fault_events)
        + 10 * case.layers
        + 10 * case.channel_multiplicity
        + case.num_classes
        + (100 if case.drain else 0)
    )


def _events_valid_for(
    events: List[Dict[str, object]], radix: int, layers: int, channels: int
) -> List[Dict[str, object]]:
    """Drop fault events that reference shrunk-away geometry."""
    kept = []
    for event in events:
        channel = event.get("channel")
        if channel is not None:
            src, dst, index = channel
            if src >= layers or dst >= layers or index >= channels:
                continue
        port = event.get("port")
        if port is not None and port >= radix:
            continue
        output = event.get("output")
        if output is not None and output >= radix:
            continue
        kept.append(event)
    return kept


def _variants(case: CaseSpec) -> Iterator[Tuple[str, CaseSpec]]:
    """Candidate shrinks, most-valuable first; each strictly smaller."""
    replace = dataclasses.replace

    for index in range(len(case.fault_events)):
        events = (
            case.fault_events[:index] + case.fault_events[index + 1:]
        )
        yield (
            f"drop fault event {index} "
            f"({case.fault_events[index].get('kind')})",
            replace(case, fault_events=events),
        )
    if case.measure_cycles > 1:
        halved = max(case.measure_cycles // 2, 1)
        yield (
            f"measure_cycles {case.measure_cycles} -> {halved}",
            replace(case, measure_cycles=halved),
        )
    if case.warmup_cycles > 0:
        yield (
            f"warmup_cycles {case.warmup_cycles} -> 0",
            replace(case, warmup_cycles=0),
        )
    if case.drain:
        yield ("drop drain", replace(case, drain=False))

    ports_per_layer = case.radix // case.layers
    if ports_per_layer > 2:
        radix = case.layers * (ports_per_layer // 2)
        yield (
            f"radix {case.radix} -> {radix}",
            replace(
                case, radix=radix,
                fault_events=_events_valid_for(
                    case.fault_events, radix, case.layers,
                    case.channel_multiplicity,
                ),
            ),
        )
    if case.layers > 2:
        radix = 2 * ports_per_layer
        yield (
            f"layers {case.layers} -> 2 (radix {radix})",
            replace(
                case, layers=2, radix=radix,
                fault_events=_events_valid_for(
                    case.fault_events, radix, 2,
                    case.channel_multiplicity,
                ),
            ),
        )
    if case.channel_multiplicity > 1:
        channels = case.channel_multiplicity - 1
        yield (
            f"channel_multiplicity {case.channel_multiplicity} -> "
            f"{channels}",
            replace(
                case, channel_multiplicity=channels,
                fault_events=_events_valid_for(
                    case.fault_events, case.radix, case.layers, channels
                ),
            ),
        )
    if case.num_classes > 2:
        yield (
            f"num_classes {case.num_classes} -> 2",
            replace(case, num_classes=2),
        )


def minimize_case(
    case: CaseSpec,
    still_fails: Callable[[CaseSpec], bool],
    max_attempts: int = 200,
) -> Tuple[CaseSpec, List[str]]:
    """Shrink ``case`` while ``still_fails`` keeps confirming the failure.

    Returns the locally minimal case (``case_id`` suffixed ``-min`` when
    anything shrank) and the list of accepted transformations.
    """
    current = case
    history: List[str] = []
    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for description, candidate in _variants(current):
            attempts += 1
            try:
                reproduces = still_fails(candidate)
            except Exception:
                reproduces = False
            if reproduces:
                assert case_size(candidate) < case_size(current)
                current = candidate
                history.append(description)
                improved = True
                break
            if attempts >= max_attempts:
                break
    if history:
        current = dataclasses.replace(
            current, case_id=f"{case.case_id}-min"
        )
    return current, history

"""Correctness tooling: runtime invariants, differential fuzzing, repro.

Three cooperating parts (ARCHITECTURE §11):

* :mod:`repro.check.invariants` — an opt-in per-cycle
  :class:`InvariantChecker` hook (``invariants=`` on both kernels)
  asserting flit conservation, path coherence, grant legality, L2LC
  occupancy, CLRG counter sanity, and LRG total order; failures raise a
  structured :class:`InvariantViolation` (drain stalls surface as its
  :class:`DrainStallError` subclass).
* :mod:`repro.check.fuzz` — seeded differential fuzzing of random
  configs × traffic mixes × fault schedules, fast vs reference with
  invariants on, classified via :func:`repro.faults.verify_parity`.
* :mod:`repro.check.minimize` / :mod:`repro.check.reprofile` — greedy
  case shrinking and replayable ``repro.check/v1`` JSON repro files
  (``repro check --replay``).
"""

from repro.check.fuzz import (
    CaseOutcome,
    CaseSpec,
    FuzzFailure,
    FuzzReport,
    generate_cases,
    run_case,
    run_fuzz,
)
from repro.check.invariants import (
    CHECK_CODES,
    DrainStallError,
    InvariantChecker,
    InvariantViolation,
)
from repro.check.matching import MatchingInvariantChecker, checker_for
from repro.check.minimize import case_size, minimize_case
from repro.check.reprofile import (
    REPRO_FORMAT,
    ReplayResult,
    load_repro,
    replay_repro,
    repro_payload,
    save_repro,
)

__all__ = [
    "CHECK_CODES",
    "CaseOutcome",
    "CaseSpec",
    "DrainStallError",
    "FuzzFailure",
    "FuzzReport",
    "InvariantChecker",
    "InvariantViolation",
    "REPRO_FORMAT",
    "ReplayResult",
    "case_size",
    "generate_cases",
    "load_repro",
    "minimize_case",
    "replay_repro",
    "MatchingInvariantChecker",
    "checker_for",
    "repro_payload",
    "run_case",
    "run_fuzz",
    "save_repro",
]

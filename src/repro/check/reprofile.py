"""Replayable repro files for failing fuzz cases (``repro.check/v1``).

A repro file freezes one :class:`~repro.check.fuzz.CaseSpec` together
with the outcome observed when it was written (status, mismatch list or
violation record) and its shrink history.  :func:`replay_repro` re-runs
the case with the current kernels and reports whether the classification
still matches — so a checked-in historical case doubles as a regression
gate (recorded ``ok`` must stay ``ok``), and a freshly minimized failure
is confirmed reproducible by ``repro check --replay``.
"""

import json
from dataclasses import dataclass
from typing import IO, Dict, List, Optional, Union

from repro.check.fuzz import CaseOutcome, CaseSpec, run_case

__all__ = [
    "REPRO_FORMAT",
    "ReplayResult",
    "load_repro",
    "repro_payload",
    "save_repro",
    "replay_repro",
]

#: Schema tag written into every repro file.
REPRO_FORMAT = "repro.check/v1"


def repro_payload(
    case: CaseSpec,
    outcome: CaseOutcome,
    minimized: bool = False,
    history: List[str] = (),
    fleet_lanes: int = 0,
) -> Dict[str, object]:
    """The JSON document for one repro file.

    ``fleet_lanes`` is recorded (when nonzero) so a failure found by
    the fleet lane-parity check replays under the same lane count;
    files from fleet-less campaigns are unchanged byte for byte.
    """
    payload = {
        "format": REPRO_FORMAT,
        "case": case.to_dict(),
        "outcome": outcome.to_dict(),
        "minimized": bool(minimized),
        "history": list(history),
    }
    if fleet_lanes:
        payload["fleet_lanes"] = int(fleet_lanes)
    return payload


def save_repro(
    destination: Union[str, IO[str]],
    case: CaseSpec,
    outcome: CaseOutcome,
    minimized: bool = False,
    history: List[str] = (),
    fleet_lanes: int = 0,
) -> Dict[str, object]:
    """Write a repro file; returns the payload written."""
    payload = repro_payload(case, outcome, minimized, history, fleet_lanes)
    if hasattr(destination, "write"):
        json.dump(payload, destination, indent=2)
    else:
        with open(destination, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
    return payload


def load_repro(source: Union[str, IO[str]]) -> Dict[str, object]:
    """Load and validate a repro file; ``case`` is parsed to a CaseSpec.

    Raises:
        ValueError: On a wrong/missing format tag or malformed case.
    """
    if hasattr(source, "read"):
        payload = json.load(source)
    else:
        with open(source, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    if payload.get("format") != REPRO_FORMAT:
        raise ValueError(
            f"not a {REPRO_FORMAT} repro file: "
            f"format={payload.get('format')!r}"
        )
    if "case" not in payload or "outcome" not in payload:
        raise ValueError("repro file needs 'case' and 'outcome' entries")
    payload["case"] = CaseSpec.from_dict(payload["case"])
    return payload


@dataclass
class ReplayResult:
    """Outcome of re-running a repro file against the current kernels."""

    case: CaseSpec
    expected_status: str
    outcome: CaseOutcome
    path: Optional[str] = None

    @property
    def matches(self) -> bool:
        return self.outcome.status == self.expected_status


def replay_repro(
    source: Union[str, IO[str]],
    invariants: bool = True,
    fleet_lanes: Optional[int] = None,
) -> ReplayResult:
    """Re-run a repro file's case; compare against its recorded status.

    ``fleet_lanes=None`` (the default) replays under the lane count
    recorded in the file (0 — no fleet check — for pre-fleet files);
    pass an explicit value to override.
    """
    payload = load_repro(source)
    case: CaseSpec = payload["case"]
    expected = str(payload["outcome"].get("status", "ok"))
    if fleet_lanes is None:
        fleet_lanes = int(payload.get("fleet_lanes", 0))
    outcome = run_case(case, invariants=invariants, fleet_lanes=fleet_lanes)
    return ReplayResult(
        case=case,
        expected_status=expected,
        outcome=outcome,
        path=source if isinstance(source, str) else None,
    )

"""Deterministic differential fuzzing over config × traffic × faults.

The golden-equivalence suite pins the fast kernel to the frozen
reference on hand-picked configurations; the fuzzer explores the space
*between* those pins.  :func:`generate_cases` expands one integer seed
into a reproducible list of :class:`CaseSpec`\\ s — random small
:class:`~repro.core.config.HiRiseConfig` geometries, traffic mixes
(uniform / hotspot / bursty / adversarial / permutation), and
:meth:`~repro.faults.FaultSchedule.random` overlays — and
:func:`run_case` runs each through :func:`repro.faults.verify_parity`
with both kernels under an :class:`~repro.check.invariants.InvariantChecker`,
classifying the result as ``ok``, ``mismatch`` (kernels diverged),
``violation`` (an invariant or drain stall fired), or ``error`` (an
unclassified crash).  :func:`run_fuzz` shrinks every failure with
:func:`repro.check.minimize.minimize_case` and writes a replayable
``repro.check/v1`` JSON file per failure.

Everything here is deterministic: the same seed always yields the same
case list, and a :class:`CaseSpec` round-trips losslessly through JSON
(fault schedules are materialised into explicit event records at
generation time so the minimizer can drop individual events).
"""

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.check.invariants import InvariantViolation

__all__ = [
    "ALLOCATIONS",
    "ARBITRATIONS",
    "CaseOutcome",
    "CaseSpec",
    "FuzzFailure",
    "FuzzReport",
    "TRAFFIC_KINDS",
    "generate_cases",
    "run_case",
    "run_fuzz",
]

#: Traffic generators the fuzzer draws from (Section V patterns).
TRAFFIC_KINDS = (
    "uniform", "hotspot", "bursty", "adversarial", "permutation",
)
#: Channel-allocation policies (Section III-A).
ALLOCATIONS = ("input_binned", "output_binned", "priority")
#: Inter-layer arbitration schemes (Sections III-B and VII).
ARBITRATIONS = ("l2l_lrg", "wlrg", "clrg", "l2l_rr", "age")

#: Permutation patterns (all fuzzed radices are powers of two: layers
#: ∈ {2, 4} × ports-per-layer ∈ {2, 4, 8}).
_PERMUTATION_PATTERNS = (
    "transpose", "bit_complement", "bit_reverse", "shuffle",
)


@dataclass
class CaseSpec:
    """One fully-specified differential fuzz case (JSON round-trippable).

    Traffic parameters are stored *relative* to the geometry where
    possible (the hotspot output is always ``radix - 1``, adversarial
    demands are re-derived from the config), so the minimizer can
    shrink ``radix``/``layers`` without invalidating the traffic.
    """

    case_id: str
    radix: int
    layers: int
    channel_multiplicity: int
    allocation: str
    arbitration: str
    num_classes: int
    traffic: str
    load: float
    traffic_seed: int
    traffic_params: Dict[str, object] = field(default_factory=dict)
    warmup_cycles: int = 20
    measure_cycles: int = 120
    drain: bool = False
    fault_events: List[Dict[str, object]] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Materialisation
    # ------------------------------------------------------------------
    def build_config(self):
        """The :class:`~repro.core.config.HiRiseConfig` this case runs."""
        from repro.core.config import (
            AllocationPolicy,
            ArbitrationScheme,
            HiRiseConfig,
        )

        return HiRiseConfig(
            radix=self.radix,
            layers=self.layers,
            channel_multiplicity=self.channel_multiplicity,
            allocation=AllocationPolicy(self.allocation),
            arbitration=ArbitrationScheme(self.arbitration),
            num_classes=self.num_classes,
        )

    def build_schedule(self):
        """The case's :class:`~repro.faults.FaultSchedule`, or None."""
        if not self.fault_events:
            return None
        from repro.faults import FaultSchedule

        return FaultSchedule.from_records(self.fault_events)

    def build_traffic(self, config):
        """Fresh traffic source for one kernel run (sources hold RNGs)."""
        from repro.traffic import (
            AdversarialTraffic,
            BurstyTraffic,
            HotspotTraffic,
            PermutationTraffic,
            UniformRandomTraffic,
            binning_adversarial,
            interlayer_worstcase,
        )

        kind = self.traffic
        params = self.traffic_params
        if kind == "uniform":
            return UniformRandomTraffic(
                config.radix, self.load, seed=self.traffic_seed
            )
        if kind == "hotspot":
            return HotspotTraffic(
                config.radix, self.load,
                hotspot_output=config.radix - 1,
                seed=self.traffic_seed,
                background_load=float(params.get("background_load", 0.0)),
            )
        if kind == "bursty":
            return BurstyTraffic(
                config.radix, self.load,
                burst_length=float(params.get("burst_length", 4.0)),
                seed=self.traffic_seed,
            )
        if kind == "adversarial":
            if params.get("demands", "interlayer") == "binning":
                demands = binning_adversarial(config)
            else:
                demands = interlayer_worstcase(config)
            return AdversarialTraffic(
                config.radix, self.load, demands, seed=self.traffic_seed
            )
        if kind == "permutation":
            return PermutationTraffic(
                config.radix, self.load,
                pattern=str(params.get("pattern", "transpose")),
                seed=self.traffic_seed,
            )
        raise ValueError(f"unknown traffic kind {kind!r}")

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-ready record; inverse of :meth:`from_dict`."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "CaseSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(record) - known
        if unknown:
            raise ValueError(f"unknown CaseSpec fields: {sorted(unknown)}")
        return cls(**record)


@dataclass
class CaseOutcome:
    """Classification of one differential run."""

    status: str  # ok | mismatch | violation | error
    detail: str = ""
    mismatches: List[str] = field(default_factory=list)
    violation: Optional[Dict[str, object]] = None

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready record for embedding in repro files."""
        return dataclasses.asdict(self)


@dataclass
class FuzzFailure:
    """One failing case: the original spec, its shrunk form, outcome."""

    original: CaseSpec
    minimized: CaseSpec
    outcome: CaseOutcome
    shrink_history: List[str] = field(default_factory=list)
    repro_path: Optional[str] = None


@dataclass
class FuzzReport:
    """Summary of one :func:`run_fuzz` campaign."""

    seed: int
    cases_run: int
    ok: int
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.failures


def generate_cases(
    seed: int, count: int, max_radix: int = 16
) -> List[CaseSpec]:
    """Expand ``seed`` into ``count`` deterministic fuzz cases.

    Geometry is kept small (``radix <= max_radix``) so a campaign of
    dozens of cases runs in seconds; drain cases never carry faults (an
    unrepaired stuck input or partition legitimately never drains, which
    would misclassify healthy kernels as stalled).
    """
    import random

    if count < 0:
        raise ValueError("case count must be >= 0")
    if max_radix < 4:
        raise ValueError("max radix must be >= 4 (two ports on two layers)")
    rng = random.Random(seed)
    cases: List[CaseSpec] = []
    for index in range(count):
        layer_options = [l for l in (2, 4) if 2 * l <= max_radix]
        layers = rng.choice(layer_options)
        ppl_options = [p for p in (2, 4, 8) if layers * p <= max_radix]
        ports_per_layer = rng.choice(ppl_options)
        radix = layers * ports_per_layer
        multiplicity = rng.choice(
            [c for c in (1, 2) if c <= ports_per_layer]
        )
        allocation = rng.choice(ALLOCATIONS)
        arbitration = rng.choice(ARBITRATIONS)
        num_classes = rng.choice((2, 3, 4))
        kind = rng.choice(TRAFFIC_KINDS)
        load = round(rng.uniform(0.1, 0.9), 2)
        params: Dict[str, object] = {}
        if kind == "bursty":
            params["burst_length"] = rng.choice((2.0, 4.0, 8.0))
        elif kind == "adversarial":
            params["demands"] = rng.choice(("interlayer", "binning"))
        elif kind == "permutation":
            params["pattern"] = rng.choice(_PERMUTATION_PATTERNS)
        elif kind == "hotspot":
            params["background_load"] = rng.choice((0.0, 0.05))
        warmup = rng.choice((0, 10, 20, 40))
        measure = rng.choice((80, 120, 200))
        drain = rng.random() < 0.3
        case = CaseSpec(
            case_id=f"fuzz-{seed}-{index:03d}",
            radix=radix,
            layers=layers,
            channel_multiplicity=multiplicity,
            allocation=allocation,
            arbitration=arbitration,
            num_classes=num_classes,
            traffic=kind,
            load=load,
            traffic_seed=rng.randrange(1 << 20),
            traffic_params=params,
            warmup_cycles=warmup,
            measure_cycles=measure,
            drain=drain,
        )
        if not drain and rng.random() < 0.5:
            from repro.faults import FaultSchedule

            schedule = FaultSchedule.random(
                case.build_config(),
                seed=rng.randrange(1 << 30),
                horizon=max(warmup + measure, 1),
                faults=rng.randrange(1, 4),
                mean_downtime=20,
                permanent_fraction=0.25,
                include_inputs=True,
                include_clrg=(arbitration == "clrg"),
            )
            case.fault_events = schedule.to_records()
        cases.append(case)
    return cases


def run_case(
    case: CaseSpec, invariants: bool = True, fleet_lanes: int = 0
) -> CaseOutcome:
    """Differentially run one case; classify the result.

    Runs fast vs reference through :func:`repro.faults.verify_parity`
    (results *and* full trace streams), each kernel under its own
    invariant checker when ``invariants`` is set.

    With ``fleet_lanes > 0`` the case is additionally run through the
    batched fleet kernel (:mod:`repro.core.fleet`) with that many lanes
    sharing the case's config, and every lane's result is compared
    field-by-field against a scalar run of the same lane.  Lane
    divergences arrive as ordinary ``"fleet lane i: ..."`` mismatch
    strings, so they classify, minimize, and persist exactly like
    fast-vs-reference mismatches.
    """
    from repro.faults import verify_parity

    try:
        config = case.build_config()
        mismatches = verify_parity(
            config,
            case.build_schedule(),
            load=case.load,
            seed=case.traffic_seed,
            measure_cycles=case.measure_cycles,
            warmup_cycles=case.warmup_cycles,
            traffic_factory=case.build_traffic,
            invariants=invariants,
            drain=case.drain,
            fleet_lanes=fleet_lanes,
        )
    except InvariantViolation as violation:
        return CaseOutcome(
            status="violation",
            detail=str(violation).split("; telemetry:")[0],
            violation=violation.to_dict(),
        )
    except Exception as error:  # config/traffic/kernel crash
        return CaseOutcome(
            status="error", detail=f"{type(error).__name__}: {error}"
        )
    if mismatches:
        return CaseOutcome(
            status="mismatch",
            detail=mismatches[0],
            mismatches=list(mismatches),
        )
    return CaseOutcome(status="ok")


def run_fuzz(
    seed: int,
    cases: int,
    max_radix: int = 16,
    out_dir: Optional[str] = None,
    invariants: bool = True,
    minimize: bool = True,
    log: Optional[Callable[[str], None]] = None,
    fleet_lanes: int = 0,
) -> FuzzReport:
    """Run a seeded fuzz campaign; shrink and persist every failure.

    Failures are minimized while preserving their *classification*
    (``still_fails`` = same outcome status) and written to ``out_dir``
    as ``repro.check/v1`` JSON files named after the shrunk case.

    ``fleet_lanes > 0`` adds a fleet-vs-scalar lane-parity check to
    every case (see :func:`run_case`); the lane count is recorded in
    each repro file so ``repro check --replay`` re-runs the failure
    under the same fleet configuration.
    """
    from repro.check.minimize import minimize_case
    from repro.check.reprofile import save_repro

    report = FuzzReport(seed=seed, cases_run=0, ok=0)
    for spec in generate_cases(seed, cases, max_radix):
        outcome = run_case(spec, invariants=invariants,
                           fleet_lanes=fleet_lanes)
        report.cases_run += 1
        if log is not None:
            log(f"{spec.case_id}: {outcome.status}"
                + (f" ({outcome.detail})" if outcome.status != "ok" else ""))
        if outcome.status == "ok":
            report.ok += 1
            continue

        minimized, history = spec, []
        final_outcome = outcome
        if minimize:
            def still_fails(candidate: CaseSpec) -> bool:
                return (
                    run_case(candidate, invariants=invariants,
                             fleet_lanes=fleet_lanes).status
                    == outcome.status
                )

            minimized, history = minimize_case(spec, still_fails)
            final_outcome = run_case(minimized, invariants=invariants,
                                     fleet_lanes=fleet_lanes)
            if log is not None and history:
                log(f"{spec.case_id}: shrunk via {len(history)} steps "
                    f"to {minimized.case_id}")

        repro_path = None
        if out_dir is not None:
            import os

            os.makedirs(out_dir, exist_ok=True)
            repro_path = os.path.join(
                out_dir, f"{minimized.case_id}.json"
            )
            save_repro(
                repro_path, minimized, final_outcome,
                minimized=bool(history), history=history,
                fleet_lanes=fleet_lanes,
            )
            if log is not None:
                log(f"{spec.case_id}: repro written to {repro_path}")
        report.failures.append(FuzzFailure(
            original=spec,
            minimized=minimized,
            outcome=final_outcome,
            shrink_history=history,
            repro_path=repro_path,
        ))
    return report

"""Synthetic traffic patterns (Section V of the paper).

All generators implement the ``TrafficSource`` protocol of
:mod:`repro.network.engine`: ``packets_for_cycle(cycle)`` yields the packets
generated during that cycle.  Injection rates are expressed in
packets/input/cycle; the harness converts to the paper's packets/input/ns
using the clock frequency of the switch under test.

Patterns:

* :class:`UniformRandomTraffic` — each input injects Bernoulli(load) with a
  uniformly random destination;
* :class:`HotspotTraffic` — all (or a subset of) inputs target one output;
* :class:`BurstyTraffic` — on/off injection with geometric burst lengths;
* :class:`AdversarialTraffic` — fixed input->output demands, e.g. the
  Section III-B example ({3,7,11,15} on L1 and {20} on L2 -> output 63);
* :class:`PermutationTraffic` — classic bit-permutation patterns
  (transpose, bit-complement, bit-reverse, shuffle);
* :func:`interlayer_worstcase` — the Section VI-B pathological pattern
  where inputs sharing one L2LC request distinct outputs on another layer;
* :class:`TraceTraffic` — replay of explicit (cycle, src, dst) triples.
"""

from repro.traffic.base import SyntheticTraffic
from repro.traffic.uniform import UniformRandomTraffic
from repro.traffic.hotspot import HotspotTraffic
from repro.traffic.bursty import BurstyTraffic
from repro.traffic.adversarial import (
    AdversarialTraffic,
    binning_adversarial,
    interlayer_worstcase,
    paper_adversarial_demands,
)
from repro.traffic.permutation import PermutationTraffic
from repro.traffic.trace import TraceTraffic

__all__ = [
    "SyntheticTraffic",
    "UniformRandomTraffic",
    "HotspotTraffic",
    "BurstyTraffic",
    "AdversarialTraffic",
    "PermutationTraffic",
    "TraceTraffic",
    "interlayer_worstcase",
    "binning_adversarial",
    "paper_adversarial_demands",
]

"""Uniform random traffic — the paper's headline synthetic pattern."""

from typing import List, Optional

from repro.traffic.base import SyntheticTraffic


class UniformRandomTraffic(SyntheticTraffic):
    """Each injected packet picks a destination uniformly at random.

    Args:
        exclude_self: Skip ``dst == src`` (a tile does not cross the switch
            to reach itself); enabled by default.
    """

    def __init__(
        self,
        num_ports: int,
        load: float,
        packet_flits: int = 4,
        seed: int = 1,
        active_inputs: Optional[List[int]] = None,
        exclude_self: bool = True,
    ) -> None:
        super().__init__(num_ports, load, packet_flits, seed, active_inputs)
        self.exclude_self = exclude_self

    def destination(self, src: int) -> int:
        return self.uniform_destination(src, exclude_self=self.exclude_self)

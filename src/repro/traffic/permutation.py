"""Classic bit-permutation traffic patterns.

These deterministic patterns (Dally & Towles, *Principles and Practices of
Interconnection Networks*) complement the paper's synthetic set for corner
case studies: every input has one fixed destination derived from its port
number, producing structured load on specific L2LCs.
"""

from typing import Callable, Dict, List, Optional

from repro.traffic.base import SyntheticTraffic


def _bits(num_ports: int) -> int:
    bits = (num_ports - 1).bit_length()
    if 1 << bits != num_ports:
        raise ValueError("bit permutations need a power-of-two port count")
    return bits


def transpose(src: int, num_ports: int) -> int:
    """Swap the upper and lower halves of the address bits."""
    bits = _bits(num_ports)
    half = bits // 2
    low = src & ((1 << half) - 1)
    high = src >> half
    return (low << (bits - half)) | high


def bit_complement(src: int, num_ports: int) -> int:
    """Invert every address bit."""
    return (num_ports - 1) ^ src


def bit_reverse(src: int, num_ports: int) -> int:
    """Reverse the address bits."""
    bits = _bits(num_ports)
    out = 0
    for position in range(bits):
        if src & (1 << position):
            out |= 1 << (bits - 1 - position)
    return out


def shuffle(src: int, num_ports: int) -> int:
    """Rotate the address bits left by one (perfect shuffle)."""
    bits = _bits(num_ports)
    return ((src << 1) | (src >> (bits - 1))) & (num_ports - 1)


PATTERNS: Dict[str, Callable[[int, int], int]] = {
    "transpose": transpose,
    "bit_complement": bit_complement,
    "bit_reverse": bit_reverse,
    "shuffle": shuffle,
}


class PermutationTraffic(SyntheticTraffic):
    """Deterministic destination from a named bit permutation.

    Args:
        pattern: One of ``transpose``, ``bit_complement``, ``bit_reverse``,
            ``shuffle``.
    """

    def __init__(
        self,
        num_ports: int,
        load: float,
        pattern: str = "transpose",
        packet_flits: int = 4,
        seed: int = 1,
        active_inputs: Optional[List[int]] = None,
    ) -> None:
        super().__init__(num_ports, load, packet_flits, seed, active_inputs)
        if pattern not in PATTERNS:
            raise ValueError(
                f"unknown pattern {pattern!r}; choose from {sorted(PATTERNS)}"
            )
        self.pattern = pattern
        self._fn = PATTERNS[pattern]
        _bits(num_ports)  # validate early

    def destination(self, src: int) -> Optional[int]:
        dst = self._fn(src, self.num_ports)
        return None if dst == src else dst

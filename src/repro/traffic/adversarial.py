"""Adversarial and pathological corner-case traffic patterns.

``AdversarialTraffic`` replays fixed input->output demands, covering the
paper's Section III-B example (four inputs from one layer plus a lone
input from another layer all contending for one output) and any custom
corner case.  ``interlayer_worstcase`` builds the Section VI-B pathological
demand where inputs sharing an L2LC request distinct remote outputs, which
bounds the 3D switch to ~1/c-th of the flat switch's bandwidth regardless
of arbitration scheme.
"""

from typing import Dict

from repro.core.config import HiRiseConfig
from repro.traffic.base import SyntheticTraffic


def paper_adversarial_demands(
    ports_per_layer: int = 16, output: int = 63
) -> Dict[int, int]:
    """The Section III-B example demands.

    Inputs {3, 7, 11, 15} on layer 1 (all binned to the same L2LC under
    4-way input binning for a 16-port layer... under 1-channel binning they
    trivially share the single channel) and input {20} on layer 2, all
    requesting ``output`` on the last layer.
    """
    inputs = [3, 7, 11, 15, ports_per_layer + 4]
    return {src: output for src in inputs}


class AdversarialTraffic(SyntheticTraffic):
    """Fixed demands: each active input always targets its mapped output.

    Args:
        demands: Mapping from input port to its (only) destination.
        load: Injection probability per active input per cycle.
    """

    def __init__(
        self,
        num_ports: int,
        load: float,
        demands: Dict[int, int],
        packet_flits: int = 4,
        seed: int = 1,
    ) -> None:
        if not demands:
            raise ValueError("demands must not be empty")
        for src, dst in demands.items():
            if not 0 <= src < num_ports or not 0 <= dst < num_ports:
                raise ValueError(f"demand {src}->{dst} out of range")
        super().__init__(
            num_ports, load, packet_flits, seed,
            active_inputs=sorted(demands.keys()),
        )
        self.demands = dict(demands)

    def destination(self, src: int) -> int:
        return self.demands[src]


def binning_adversarial(config: HiRiseConfig) -> Dict[int, int]:
    """Demands that strand all but one channel under input binning.

    On every layer, only the inputs binned to channel 0 (``local % c ==
    0``) are active, each targeting a distinct output on the next layer.
    Under input binning they serialise on that single channel while the
    other ``c - 1`` channels idle — the "under utilization of the critical
    vertical L2LCs" scenario of Section III-A; priority-based allocation
    spreads them over all free channels and recovers up to ``c``x the
    throughput.
    """
    demands: Dict[int, int] = {}
    ports = config.ports_per_layer
    c = config.channel_multiplicity
    for layer in range(config.layers):
        dst_layer = (layer + 1) % config.layers
        actives = [local for local in range(ports) if local % c == 0]
        for index, local in enumerate(actives):
            src = config.global_port(layer, local)
            demands[src] = config.global_port(dst_layer, index % ports)
    return demands


def interlayer_worstcase(config: HiRiseConfig) -> Dict[int, int]:
    """Demands for the Section VI-B pathological corner case.

    Every input targets the *next* layer (no within-layer traffic), and the
    inputs binned to the same L2LC request *different* outputs there, so
    under input binning the channel must serialise all of them: throughput
    collapses to ``c`` packets per cycle per layer-pair, about 1/(N/(L*c))
    of each input's fair share — for the paper's 1-channel configuration,
    1/4 of the flat 2D switch.
    """
    demands: Dict[int, int] = {}
    ports = config.ports_per_layer
    for layer in range(config.layers):
        dst_layer = (layer + 1) % config.layers
        for local in range(ports):
            src = config.global_port(layer, local)
            # Inputs sharing a channel (same local % c) get distinct
            # destination outputs on the destination layer.
            dst_local = (local % config.channel_multiplicity) * (
                ports // config.channel_multiplicity
            ) + local // config.channel_multiplicity
            demands[src] = config.global_port(dst_layer, dst_local % ports)
    return demands

"""Hotspot traffic: all inputs converge on one output.

This pattern exposes the fairness problem of the baseline layer-to-layer
LRG (Fig 11a): with every input requesting the same final output, the
output's sub-block sees one local intermediate slot carrying N/L
requestors against L2LC slots carrying N/(L*c) requestors each, so plain
slot-level LRG starves the hotspot layer's own inputs.
"""

from typing import List, Optional

from repro.traffic.base import SyntheticTraffic


class HotspotTraffic(SyntheticTraffic):
    """All active inputs send to ``hotspot_output``.

    Args:
        hotspot_output: The single congested destination (paper: output 63).
        background_load: Optional extra Bernoulli load per input spread
            uniformly over the other outputs (0 disables, the paper's
            Fig 11a experiment is pure hotspot).
    """

    def __init__(
        self,
        num_ports: int,
        load: float,
        hotspot_output: int = 63,
        packet_flits: int = 4,
        seed: int = 1,
        active_inputs: Optional[List[int]] = None,
        background_load: float = 0.0,
    ) -> None:
        super().__init__(num_ports, load, packet_flits, seed, active_inputs)
        if not 0 <= hotspot_output < num_ports:
            raise ValueError(f"hotspot output {hotspot_output} out of range")
        if not 0.0 <= background_load <= 1.0:
            raise ValueError("background load must be in [0, 1]")
        self.hotspot_output = hotspot_output
        self.background_load = background_load

    def destination(self, src: int) -> Optional[int]:
        # Every input targets the hotspot, including the hotspot's own tile
        # (the paper's Fig 11a has all inputs 0..63 requesting output 63).
        return self.hotspot_output

    def packets_for_cycle(self, cycle):
        yield from super().packets_for_cycle(cycle)
        if self.background_load > 0.0:
            for src in self.active_inputs:
                if self.rng.random() < self.background_load:
                    dst = self.uniform_destination(src)
                    if dst != self.hotspot_output:
                        yield self.factory.create(src, dst, created_cycle=cycle)

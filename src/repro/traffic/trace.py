"""Trace playback: replay explicit (cycle, src, dst) injection triples.

Used by unit tests to script exact arbitration scenarios (the paper's
Figs 4 and 5 walk-throughs) and by the many-core simulator's adapters.
Traces round-trip through a simple CSV format (``cycle,src,dst`` with a
header) so externally captured traffic can be replayed and simulated
workloads can be archived.
"""

import csv
from collections import defaultdict
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Tuple, Union

from repro.network.packet import Packet, PacketFactory


class TraceTraffic:
    """Replays a fixed list of injections.

    Args:
        events: Iterable of ``(cycle, src, dst)`` triples.
        packet_flits: Flits per replayed packet.
    """

    def __init__(
        self,
        events: Iterable[Tuple[int, int, int]],
        packet_flits: int = 4,
    ) -> None:
        self.factory = PacketFactory(packet_flits)
        self._by_cycle: Dict[int, List[Tuple[int, int]]] = defaultdict(list)
        count = 0
        for cycle, src, dst in events:
            if cycle < 0:
                raise ValueError("trace cycles must be non-negative")
            self._by_cycle[cycle].append((src, dst))
            count += 1
        self.total_events = count

    def packets_for_cycle(self, cycle: int) -> Iterator[Packet]:
        """Packets replayed at ``cycle`` (the TrafficSource protocol)."""
        for src, dst in self._by_cycle.get(cycle, ()):
            yield self.factory.create(src, dst, created_cycle=cycle)

    def events(self) -> List[Tuple[int, int, int]]:
        """All (cycle, src, dst) triples, in cycle order."""
        return [
            (cycle, src, dst)
            for cycle in sorted(self._by_cycle)
            for src, dst in self._by_cycle[cycle]
        ]

    def to_csv(self, path: Union[str, Path]) -> Path:
        """Write the trace as ``cycle,src,dst`` CSV (with header)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["cycle", "src", "dst"])
            writer.writerows(self.events())
        return path

    @classmethod
    def from_csv(
        cls, path: Union[str, Path], packet_flits: int = 4
    ) -> "TraceTraffic":
        """Load a trace written by :meth:`to_csv`.

        Raises:
            ValueError: On a malformed header or non-integer fields.
        """
        path = Path(path)
        with path.open() as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            if header != ["cycle", "src", "dst"]:
                raise ValueError(
                    f"{path}: expected header 'cycle,src,dst', got {header}"
                )
            try:
                events = [
                    (int(cycle), int(src), int(dst))
                    for cycle, src, dst in reader
                ]
            except (TypeError, ValueError) as error:
                raise ValueError(f"{path}: malformed trace row") from error
        return cls(events, packet_flits=packet_flits)

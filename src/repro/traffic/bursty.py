"""Bursty traffic: a two-state (on/off) Markov-modulated injection process.

During an *on* burst an input injects every cycle; bursts and idle gaps
have geometrically distributed lengths chosen so the long-run injection
rate equals ``load``.  Destinations are uniform random per packet, or held
fixed for the duration of a burst (``per_burst_destination``) which models
streaming transfers and stresses the class counters' burst-forgiveness
(the halving rule exists so "bursty traffic [does not] penalize an input
for a long time after the burst", Section III-B.4).
"""

from typing import Dict, List, Optional

from repro.traffic.base import SyntheticTraffic


class BurstyTraffic(SyntheticTraffic):
    """On/off bursty injection with mean burst length ``burst_length``.

    Args:
        burst_length: Mean length of an *on* burst in packets (>= 1).
        per_burst_destination: Hold one destination for a whole burst.
    """

    def __init__(
        self,
        num_ports: int,
        load: float,
        burst_length: float = 8.0,
        packet_flits: int = 4,
        seed: int = 1,
        active_inputs: Optional[List[int]] = None,
        per_burst_destination: bool = True,
    ) -> None:
        super().__init__(num_ports, load, packet_flits, seed, active_inputs)
        if burst_length < 1.0:
            raise ValueError("mean burst length must be >= 1 packet")
        if load >= 1.0 and burst_length > 1.0:
            raise ValueError("load 1.0 leaves no room for off periods")
        self.burst_length = burst_length
        self.per_burst_destination = per_burst_destination
        self._on: Dict[int, bool] = {src: False for src in self.active_inputs}
        self._burst_dst: Dict[int, int] = {}
        # Transition probabilities: P(on -> off) = 1/burst_length; solve
        # P(off -> on) so the stationary on-fraction equals the load.
        self._p_end = 1.0 / burst_length
        if load > 0.0:
            off_fraction = 1.0 - load
            mean_off = off_fraction * burst_length / load
            self._p_start = 1.0 / mean_off if mean_off > 0 else 1.0
        else:
            self._p_start = 0.0

    def should_inject(self, src: int, cycle: int) -> bool:
        if self._on[src]:
            if self.rng.random() < self._p_end:
                self._on[src] = False
                self._burst_dst.pop(src, None)
        if not self._on[src]:
            if self.rng.random() < self._p_start:
                self._on[src] = True
                if self.per_burst_destination:
                    self._burst_dst[src] = self.uniform_destination(src)
        return self._on[src]

    def destination(self, src: int) -> int:
        if self.per_burst_destination and src in self._burst_dst:
            return self._burst_dst[src]
        return self.uniform_destination(src)

"""Base class for synthetic traffic generators."""

from abc import ABC, abstractmethod
from typing import Iterator, List, Optional

import numpy as np

from repro.network.packet import Packet, PacketFactory


class SyntheticTraffic(ABC):
    """Bernoulli per-input injection with a pattern-specific destination.

    Each cycle, every *active* input generates a packet with probability
    ``load`` (packets/input/cycle); the destination comes from the
    subclass's :meth:`destination` hook.  All randomness flows through an
    explicitly seeded :class:`numpy.random.Generator` so runs are
    reproducible.

    Args:
        num_ports: Switch radix.
        load: Injection probability per input per cycle, in [0, 1].
        packet_flits: Packet length (paper default: 4 flits).
        seed: RNG seed.
        active_inputs: Inputs that inject (default: all).
    """

    def __init__(
        self,
        num_ports: int,
        load: float,
        packet_flits: int = 4,
        seed: int = 1,
        active_inputs: Optional[List[int]] = None,
    ) -> None:
        if num_ports < 2:
            raise ValueError("need at least two ports")
        if not 0.0 <= load <= 1.0:
            raise ValueError("load must be in [0, 1] packets/input/cycle")
        self.num_ports = num_ports
        self.load = load
        self.factory = PacketFactory(packet_flits)
        self.rng = np.random.default_rng(seed)
        if active_inputs is None:
            self.active_inputs = list(range(num_ports))
        else:
            for port in active_inputs:
                if not 0 <= port < num_ports:
                    raise ValueError(f"active input {port} out of range")
            self.active_inputs = list(active_inputs)

    @abstractmethod
    def destination(self, src: int) -> Optional[int]:
        """Destination for a packet from ``src`` (None suppresses it)."""

    def should_inject(self, src: int, cycle: int) -> bool:
        """Injection decision for ``src`` this cycle (Bernoulli by default)."""
        return bool(self.rng.random() < self.load)

    def packets_for_cycle(self, cycle: int) -> Iterator[Packet]:
        """Packets generated during ``cycle`` (the TrafficSource protocol)."""
        for src in self.active_inputs:
            if not self.should_inject(src, cycle):
                continue
            dst = self.destination(src)
            if dst is None:
                continue
            if not 0 <= dst < self.num_ports:
                raise ValueError(f"destination {dst} out of range")
            yield self.factory.create(src, dst, created_cycle=cycle)

    def uniform_destination(self, src: int, exclude_self: bool = True) -> int:
        """A uniformly random destination, excluding ``src`` by default."""
        if not exclude_self:
            return int(self.rng.integers(self.num_ports))
        dst = int(self.rng.integers(self.num_ports - 1))
        return dst if dst < src else dst + 1

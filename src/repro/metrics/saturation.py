"""Saturation throughput and latency-vs-load sweeps.

The paper reports *saturation throughput* (Tables I/IV/V) and latency-load
curves (Figs 10 and 11b).  ``accepted_throughput`` measures delivered
packets/cycle at one offered load; ``saturation_throughput`` overdrives
the switch and reports the plateau, which is the standard definition; and
``latency_vs_load`` produces the (load, average latency) series of Fig 10.
"""

from typing import Callable, List, Sequence, Tuple

from repro.network.engine import Simulation, SimulationResult, SwitchModel

SwitchFactory = Callable[[], SwitchModel]
TrafficFactory = Callable[[float], object]
"""Builds a traffic source for a given load (packets/input/cycle)."""


def accepted_throughput(
    switch_factory: SwitchFactory,
    traffic_factory: TrafficFactory,
    load: float,
    warmup_cycles: int = 500,
    measure_cycles: int = 2000,
) -> SimulationResult:
    """Run one simulation point and return its result."""
    switch = switch_factory()
    traffic = traffic_factory(load)
    sim = Simulation(switch, traffic, warmup_cycles=warmup_cycles)
    return sim.run(measure_cycles)


def saturation_throughput(
    switch_factory: SwitchFactory,
    traffic_factory: TrafficFactory,
    overdrive_load: float = 1.0,
    warmup_cycles: int = 1000,
    measure_cycles: int = 4000,
) -> float:
    """Delivered packets/cycle with every input overdriven.

    Saturation throughput is the accepted-rate plateau when offered load
    exceeds what the switch can carry; overdriving at ``overdrive_load``
    (default: a packet per input per cycle) measures the plateau directly.
    """
    result = accepted_throughput(
        switch_factory,
        traffic_factory,
        overdrive_load,
        warmup_cycles=warmup_cycles,
        measure_cycles=measure_cycles,
    )
    return result.throughput_packets_per_cycle


def latency_vs_load(
    switch_factory: SwitchFactory,
    traffic_factory: TrafficFactory,
    loads: Sequence[float],
    warmup_cycles: int = 500,
    measure_cycles: int = 2000,
) -> List[Tuple[float, float, float]]:
    """Sweep offered load; return (load, avg latency cycles, accepted rate).

    Past saturation the average latency of *delivered* packets keeps
    growing with simulated time (queues build without bound), which shows
    up as the characteristic hockey-stick in Fig 10.
    """
    series: List[Tuple[float, float, float]] = []
    for load in loads:
        result = accepted_throughput(
            switch_factory,
            traffic_factory,
            load,
            warmup_cycles=warmup_cycles,
            measure_cycles=measure_cycles,
        )
        series.append(
            (
                load,
                result.avg_latency_cycles,
                result.throughput_packets_per_cycle,
            )
        )
    return series

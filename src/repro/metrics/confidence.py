"""Confidence intervals for steady-state simulation measurements.

Single long runs of a cycle simulator produce autocorrelated samples, so
naive standard errors are optimistic.  Two standard remedies are provided:

* **batch means** — split one long sample stream into contiguous batches,
  treat batch averages as (approximately) independent observations, and
  build a t-interval over them;
* **independent replications** — run the experiment under different seeds
  and build the t-interval over replication results (``replicate``).
"""

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence

from scipy import stats as scipy_stats


@dataclass(frozen=True)
class ConfidenceInterval:
    """A symmetric t-based confidence interval."""

    mean: float
    half_width: float
    confidence: float
    observations: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def contains(self, value: float) -> bool:
        """Whether ``value`` falls inside the interval."""
        return self.low <= value <= self.high

    @property
    def relative_half_width(self) -> float:
        """Half-width as a fraction of the mean (inf for a zero mean)."""
        if self.mean == 0:
            return float("inf")
        return abs(self.half_width / self.mean)


def t_interval(
    observations: Sequence[float], confidence: float = 0.95
) -> ConfidenceInterval:
    """Student-t confidence interval over independent observations.

    Raises:
        ValueError: With fewer than two observations or a confidence
            outside (0, 1).
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    n = len(observations)
    if n < 2:
        raise ValueError("need at least two observations")
    mean = sum(observations) / n
    variance = sum((x - mean) ** 2 for x in observations) / (n - 1)
    critical = float(scipy_stats.t.ppf((1 + confidence) / 2, df=n - 1))
    half_width = critical * math.sqrt(variance / n)
    return ConfidenceInterval(
        mean=mean, half_width=half_width,
        confidence=confidence, observations=n,
    )


def batch_means(
    samples: Sequence[float],
    num_batches: int = 10,
    confidence: float = 0.95,
) -> ConfidenceInterval:
    """Batch-means confidence interval over one long sample stream.

    The stream is split into ``num_batches`` contiguous, equally sized
    batches (trailing remainder dropped); batch averages feed
    :func:`t_interval`.

    Raises:
        ValueError: If the stream cannot fill the requested batches.
    """
    if num_batches < 2:
        raise ValueError("need at least two batches")
    batch_size = len(samples) // num_batches
    if batch_size < 1:
        raise ValueError(
            f"{len(samples)} samples cannot fill {num_batches} batches"
        )
    batches: List[float] = []
    for index in range(num_batches):
        chunk = samples[index * batch_size:(index + 1) * batch_size]
        batches.append(sum(chunk) / len(chunk))
    return t_interval(batches, confidence)


def replicate(
    experiment: Callable[[int], float],
    num_replications: int = 5,
    confidence: float = 0.95,
    base_seed: int = 0,
    workers: int = 1,
) -> ConfidenceInterval:
    """Confidence interval from independent replications.

    Args:
        experiment: Maps a seed to one scalar measurement (e.g. a
            saturation-throughput run).  Must be picklable (a
            module-level function) for ``workers > 1`` to actually
            parallelise.
        num_replications: Independent runs, seeded ``base_seed + i``.
        workers: Processes to spread replications over.  Results are
            identical to the serial path for any value; see
            :mod:`repro.harness.parallel`.
    """
    if workers != 1:
        from repro.harness.parallel import _execute_tasks
        tasks = [
            (_SeedOnly(experiment), {}, base_seed + index)
            for index in range(num_replications)
        ]
        return t_interval(_execute_tasks(tasks, workers), confidence)
    results = [
        experiment(base_seed + index) for index in range(num_replications)
    ]
    return t_interval(results, confidence)


class _SeedOnly:
    """Adapts a seed-only experiment to the keyword task convention.

    A module-level class (rather than a closure) so instances pickle into
    worker processes whenever the wrapped experiment itself pickles.
    """

    def __init__(self, experiment: Callable[[int], float]) -> None:
        self.experiment = experiment

    def __call__(self, seed: int) -> float:
        return float(self.experiment(seed))

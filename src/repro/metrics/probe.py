"""Switch observability: per-resource utilization probes.

``ProbedSwitch`` wraps any :class:`SwitchModel` and samples its state each
cycle: delivered flits per port, busy fraction of every final output and —
for the Hi-Rise switch — of every layer-to-layer channel and intermediate
output.  This is the measurement layer behind the allocation-policy
ablation (which channel allocation keeps the scarce vertical channels
busiest) and is generally useful for diagnosing bottlenecks.
"""

from collections import Counter
from typing import Dict, List, Optional, Tuple

from repro.network.engine import SwitchModel
from repro.network.flit import Flit
from repro.network.packet import Packet


class ProbedSwitch(SwitchModel):
    """A transparent utilization-sampling wrapper around a switch model."""

    def __init__(self, switch: SwitchModel) -> None:
        self.switch = switch
        self.num_ports = switch.num_ports
        self.cycles_observed = 0
        self.flits_out_by_port: Counter = Counter()
        self.flits_in_by_port: Counter = Counter()
        self._output_busy: Counter = Counter()
        self._resource_busy: Counter = Counter()

    # ------------------------------------------------------------------
    # SwitchModel interface (delegating)
    # ------------------------------------------------------------------
    def inject(self, packet: Packet) -> None:
        self.flits_in_by_port[packet.src] += packet.num_flits
        self.switch.inject(packet)

    def step(self, cycle: int) -> List[Flit]:
        ejected = self.switch.step(cycle)
        self.cycles_observed += 1
        for flit in ejected:
            self.flits_out_by_port[flit.dst] += 1
        output_owner = getattr(self.switch, "output_owner", None)
        if output_owner is not None:
            for output, owner in enumerate(output_owner):
                if owner is not None:
                    self._output_busy[output] += 1
        busy_resources = getattr(self.switch, "busy_resources", None)
        if busy_resources is not None:
            # Fast-path kernels expose tuple keys of owned resources
            # directly (their resource_owner is a flat id-indexed array).
            for resource in busy_resources():
                self._resource_busy[resource] += 1
        else:
            resource_owner = getattr(self.switch, "resource_owner", None)
            if resource_owner is not None:
                for resource in resource_owner:
                    self._resource_busy[resource] += 1
        return ejected

    def occupancy(self) -> int:
        return self.switch.occupancy()

    # ------------------------------------------------------------------
    # Measurements
    # ------------------------------------------------------------------
    def output_utilization(self, output: int) -> float:
        """Fraction of observed cycles the output held a connection."""
        if self.cycles_observed == 0:
            return 0.0
        return self._output_busy[output] / self.cycles_observed

    def resource_utilization(self, resource: Tuple) -> float:
        """Busy fraction of a Hi-Rise resource key (L2LC or intermediate)."""
        if self.cycles_observed == 0:
            return 0.0
        return self._resource_busy[resource] / self.cycles_observed

    def channel_utilizations(self) -> Dict[Tuple, float]:
        """Busy fraction of every layer-to-layer channel observed busy.

        Keys are the Hi-Rise resource tuples
        ``("ch", src_layer, dst_layer, channel)``.  Channels that never
        carried traffic do not appear; use the switch configuration to
        enumerate the full set.
        """
        if self.cycles_observed == 0:
            return {}
        return {
            resource: busy / self.cycles_observed
            for resource, busy in self._resource_busy.items()
            if resource[0] == "ch"
        }

    def mean_channel_utilization(self) -> float:
        """Average busy fraction over every L2LC of the wrapped Hi-Rise.

        Returns 0.0 when the wrapped switch has no channels (e.g. a flat
        2D switch).
        """
        config = getattr(self.switch, "config", None)
        if config is None or self.cycles_observed == 0:
            return 0.0
        total_channels = config.vertical_bus_count
        if total_channels == 0:
            return 0.0
        busy = sum(
            count
            for resource, count in self._resource_busy.items()
            if resource[0] == "ch"
        )
        return busy / (total_channels * self.cycles_observed)

    def delivered_flit_rate(self, port: Optional[int] = None) -> float:
        """Delivered flits/cycle, aggregate or for one output port."""
        if self.cycles_observed == 0:
            return 0.0
        if port is None:
            return sum(self.flits_out_by_port.values()) / self.cycles_observed
        return self.flits_out_by_port[port] / self.cycles_observed

    def to_stats(self, registry, prefix: str = "switch") -> None:
        """Export sampled utilizations onto a :class:`~repro.obs.StatsRegistry`.

        Hierarchical names mirror the physical structure:
        ``switch.layer{l}.int{j}.busy_frac`` for intermediate outputs,
        ``switch.layer{s}.l2lc{k}.busy_frac`` for layer-to-layer channels
        (``k`` numbers the source layer's outgoing channels densely over
        destination layers and channel indices), plus per-output busy and
        delivered-flit vectors and aggregate flit counters.
        """
        cycles = self.cycles_observed
        registry.scalar(
            f"{prefix}.cycles_observed", "cycles the probe sampled"
        ).set(cycles)
        registry.scalar(
            f"{prefix}.flits_in", "flits injected at input ports"
        ).set(sum(self.flits_in_by_port.values()))
        registry.scalar(
            f"{prefix}.flits_out", "flits delivered at output ports"
        ).set(sum(self.flits_out_by_port.values()))
        num_ports = self.num_ports
        registry.vector(
            f"{prefix}.output_busy_frac", num_ports,
            "fraction of cycles each final output held a connection",
        ).load(
            (self._output_busy[p] / cycles if cycles else 0.0)
            for p in range(num_ports)
        )
        registry.vector(
            f"{prefix}.flits_out_by_port", num_ports,
            "delivered flits by output port",
        ).load(self.flits_out_by_port[p] for p in range(num_ports))
        config = getattr(self.switch, "config", None)
        cmult = getattr(config, "channel_multiplicity", None)
        for resource in sorted(self._resource_busy):
            busy_frac = (
                self._resource_busy[resource] / cycles if cycles else 0.0
            )
            if resource[0] == "int":
                _, layer, local_out = resource
                name = f"{prefix}.layer{layer}.int{local_out}.busy_frac"
                desc = "intermediate-output busy fraction"
            elif resource[0] == "ch" and cmult is not None:
                _, src, dst, channel = resource
                slot = (dst if dst < src else dst - 1) * cmult + channel
                name = f"{prefix}.layer{src}.l2lc{slot}.busy_frac"
                desc = f"L2LC busy fraction (to layer {dst}, channel {channel})"
            else:  # non-Hi-Rise resource key: flatten it verbatim
                name = f"{prefix}.{'.'.join(str(p) for p in resource)}.busy_frac"
                desc = "resource busy fraction"
            registry.scalar(name, desc).set(busy_frac)

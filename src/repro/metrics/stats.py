"""Latency statistics over a simulation run."""

import math
from dataclasses import dataclass
from typing import Sequence

from repro.network.engine import SimulationResult


@dataclass(frozen=True)
class LatencyStats:
    """Summary statistics of a packet-latency sample (in cycles)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "LatencyStats":
        """Build the summary from raw latency samples.

        Raises:
            ValueError: If the sample is empty.
        """
        if not samples:
            raise ValueError("cannot summarise an empty latency sample")
        ordered = sorted(samples)
        return cls(
            count=len(ordered),
            mean=sum(ordered) / len(ordered),
            p50=_percentile(ordered, 0.50),
            p95=_percentile(ordered, 0.95),
            p99=_percentile(ordered, 0.99),
            maximum=float(ordered[-1]),
        )


def _percentile(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already sorted sample."""
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    index = max(0, math.ceil(q * len(ordered)) - 1)
    return float(ordered[index])


def summarize(result: SimulationResult) -> LatencyStats:
    """Latency summary of a :class:`SimulationResult`."""
    return LatencyStats.from_samples(result.packet_latencies)

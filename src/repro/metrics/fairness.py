"""Fairness indices over per-input service measurements.

The paper argues fairness qualitatively from per-input latency (Fig 11a)
and per-input throughput (Fig 11c); these indices condense the same data
into single numbers the tests can assert on.
"""

from typing import Dict, Optional, Sequence


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 is perfectly fair, 1/n maximally unfair.

    Raises:
        ValueError: If the sample is empty or contains negatives.
    """
    if not values:
        raise ValueError("need at least one value")
    if any(v < 0 for v in values):
        raise ValueError("values must be non-negative")
    total = sum(values)
    if total == 0:
        return 1.0  # nobody served: vacuously fair
    square_sum = sum(v * v for v in values)
    return (total * total) / (len(values) * square_sum)


def max_min_ratio(values: Sequence[float]) -> float:
    """Ratio of best- to worst-served value (1.0 = perfectly even).

    Raises:
        ValueError: If the sample is empty, has negatives, or the minimum
            is zero while the maximum is not (infinite disparity).
    """
    if not values:
        raise ValueError("need at least one value")
    if any(v < 0 for v in values):
        raise ValueError("values must be non-negative")
    top, bottom = max(values), min(values)
    if bottom == 0:
        if top == 0:
            return 1.0
        return float("inf")
    return top / bottom


def fairness_summary(
    values: Sequence[float],
) -> Dict[str, Optional[float]]:
    """Both indices over one sample, JSON-safe.

    Returns ``{"jain": ..., "max_min": ...}`` with the max/min ratio
    mapped to ``None`` when it is infinite (someone served nothing), so
    the dict serialises under strict JSON.  Used by the audit pipeline
    (:mod:`repro.obs.analyze`) for whole-trace and per-epoch fairness.

    Raises:
        ValueError: If the sample is empty or contains negatives.
    """
    ratio = max_min_ratio(values)
    return {
        "jain": jain_index(values),
        "max_min": None if ratio == float("inf") else ratio,
    }

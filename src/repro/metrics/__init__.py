"""Statistics: latency distributions, fairness indices, saturation search."""

from repro.metrics.stats import LatencyStats, summarize
from repro.metrics.fairness import fairness_summary, jain_index, max_min_ratio
from repro.metrics.probe import ProbedSwitch
from repro.metrics.confidence import (
    ConfidenceInterval,
    batch_means,
    replicate,
    t_interval,
)
from repro.metrics.saturation import (
    accepted_throughput,
    latency_vs_load,
    saturation_throughput,
)

__all__ = [
    "ProbedSwitch",
    "ConfidenceInterval",
    "batch_means",
    "replicate",
    "t_interval",
    "LatencyStats",
    "summarize",
    "fairness_summary",
    "jain_index",
    "max_min_ratio",
    "accepted_throughput",
    "latency_vs_load",
    "saturation_throughput",
]

"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``cost``     — implementation cost of a design point (Tables I/IV/V
  columns) from the calibrated 32 nm model;
* ``simulate`` — run a traffic pattern through a cycle-accurate switch and
  report latency/throughput;
* ``table``    — regenerate a paper table (1, 4, 5 or 6);
* ``figure``   — regenerate a paper figure's data series (9a, 9b, 9c, 10,
  11a, 11b, 11c, 12), optionally exporting CSV;
* ``trace``    — run a traced simulation and export the cycle-level event
  trace (JSONL and/or Chrome ``trace_event`` timeline);
* ``stats``    — run a probed simulation and dump the gem5-style
  statistics registry (text or JSON).

Every command prints paper-vs-measured where the paper publishes a value.
"""

import argparse
import sys
from typing import List, Optional

from repro.core import HiRiseConfig, HiRiseSwitch
from repro.network.engine import Simulation
from repro.physical import cost_of
from repro.switches import FoldedSwitch3D, SwizzleSwitch2D
from repro.traffic import HotspotTraffic, UniformRandomTraffic


def _build_design(args):
    if args.design == "2d":
        return "2d"
    if args.design == "folded":
        return "folded"
    return HiRiseConfig(
        radix=args.radix,
        layers=args.layers,
        channel_multiplicity=args.channels,
        arbitration=args.arbitration,
    )


def _build_switch(args):
    if args.design == "2d":
        return SwizzleSwitch2D(args.radix)
    if args.design == "folded":
        return FoldedSwitch3D(args.radix, args.layers)
    return HiRiseSwitch(_build_design(args))


def _add_design_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--design", choices=["hirise", "2d", "folded"],
                        default="hirise")
    parser.add_argument("--radix", type=int, default=64)
    parser.add_argument("--layers", type=int, default=4)
    parser.add_argument("--channels", type=int, default=4)
    parser.add_argument(
        "--arbitration",
        choices=["clrg", "l2l_lrg", "wlrg", "l2l_rr", "age"],
        default="clrg",
    )


def cmd_cost(args) -> int:
    design = _build_design(args)
    cost = cost_of(design, radix=args.radix, layers=args.layers)
    print(f"{cost.name}")
    print(f"  area      : {cost.area_mm2:.3f} mm^2")
    print(f"  frequency : {cost.frequency_ghz:.2f} GHz")
    print(f"  energy    : {cost.energy_pj:.1f} pJ / 128-bit transaction")
    print(f"  TSVs      : {cost.tsv_count}")
    return 0


def _build_traffic(args):
    if args.traffic == "uniform":
        return UniformRandomTraffic(args.radix, args.load, seed=args.seed)
    return HotspotTraffic(
        args.radix, args.load, hotspot_output=args.radix - 1,
        seed=args.seed,
    )


def cmd_simulate(args) -> int:
    switch = _build_switch(args)
    traffic = _build_traffic(args)
    sim = Simulation(switch, traffic, warmup_cycles=args.warmup)
    result = sim.run(args.cycles, drain=args.drain)
    print(f"simulated {args.cycles} cycles at load "
          f"{args.load} packets/input/cycle ({args.traffic})")
    print(f"  delivered  : {result.packets_ejected} packets")
    print(f"  latency    : {result.avg_latency_cycles:.1f} cycles (mean)")
    print(f"  throughput : {result.throughput_packets_per_cycle:.3f} "
          f"packets/cycle")
    return 0


def cmd_table(args) -> int:
    from repro.harness import render_table, table1, table4, table5, table6

    scale = 0.4 if args.fast else 1.0
    if args.which == "6":
        rows = table6(network_cycles_baseline=int(8000 * scale))
        print(render_table(rows, "Table VI: application speedup"))
    else:
        builder = {"1": table1, "4": table4, "5": table5}[args.which]
        rows = builder(
            warmup_cycles=int(500 * scale), measure_cycles=int(2500 * scale)
        )
        print(render_table(rows, f"Table {args.which}"))
    if args.csv:
        from repro.harness.export import export_rows_csv

        path = export_rows_csv(rows, args.csv)
        print(f"\nwrote {path}")
    return 0


def cmd_figure(args) -> int:
    from repro.harness import (
        fig9a_frequency_vs_radix,
        fig9b_frequency_vs_layers,
        fig9c_energy_vs_radix,
        fig10_latency_vs_load,
        fig11a_hotspot_latency,
        fig11b_arbitration_throughput,
        fig11c_adversarial_throughput,
        fig12_tsv_pitch,
        render_series,
    )

    scale = 0.4 if args.fast else 1.0
    sim_kwargs = dict(
        warmup_cycles=int(500 * scale), measure_cycles=int(2500 * scale)
    )
    heavy_kwargs = dict(
        warmup_cycles=int(2000 * scale), measure_cycles=int(20000 * scale)
    )
    if args.which == "9a":
        series, columns = fig9a_frequency_vs_radix(), ["radix", "GHz"]
    elif args.which == "9b":
        series, columns = fig9b_frequency_vs_layers(), ["layers", "GHz"]
    elif args.which == "9c":
        series, columns = fig9c_energy_vs_radix(), ["radix", "pJ"]
    elif args.which == "10":
        series = fig10_latency_vs_load(**sim_kwargs)
        columns = ["pkts/in/ns", "latency ns", "accepted pkts/ns"]
    elif args.which == "11a":
        latencies = fig11a_hotspot_latency(**heavy_kwargs)
        series = {
            name: list(enumerate(values))
            for name, values in latencies.items()
        }
        columns = ["input", "latency cycles"]
    elif args.which == "11b":
        series = fig11b_arbitration_throughput(**sim_kwargs)
        columns = ["pkts/in/ns", "pkts/ns"]
    elif args.which == "11c":
        throughputs = fig11c_adversarial_throughput(**heavy_kwargs)
        series = {
            name: sorted(values.items())
            for name, values in throughputs.items()
        }
        columns = ["input", "pkts/ns"]
    else:
        series = {"Hi-Rise 4-ch 4-layer": fig12_tsv_pitch()}
        columns = ["pitch um", "GHz", "mm2"]
    print(render_series(series, f"Fig {args.which}", columns))
    if args.csv:
        from repro.harness.export import export_series_csv

        path = export_series_csv(series, args.csv, columns)
        print(f"\nwrote {path}")
    return 0


def cmd_trace(args) -> int:
    from repro.obs import (
        SwitchTracer, validate_chrome_path, validate_jsonl_path,
    )

    if args.design != "hirise":
        print("trace: cycle-level tracing needs the hirise design",
              file=sys.stderr)
        return 2
    tracer = (
        SwitchTracer(capacity=args.capacity)
        if args.capacity is not None else SwitchTracer()
    )
    config = _build_design(args)
    if args.kernel == "reference":
        from repro.core.reference import ReferenceHiRiseSwitch

        switch = ReferenceHiRiseSwitch(config, tracer=tracer)
    else:
        switch = HiRiseSwitch(config, tracer=tracer)
    sim = Simulation(switch, _build_traffic(args), warmup_cycles=args.warmup)
    result = sim.run(args.cycles, drain=args.drain)
    dropped = f" ({tracer.dropped} dropped)" if tracer.dropped else ""
    print(f"traced {args.cycles} cycles ({args.traffic}, load {args.load}): "
          f"{len(tracer.events)} events{dropped}, "
          f"{result.packets_ejected} packets delivered")
    counts = tracer.counts_by_kind()
    for name in sorted(counts):
        print(f"  {name:<12} {counts[name]}")
    halvings = tracer.halving_events()
    if halvings:
        print(f"  CLRG halvings: {len(halvings)} "
              f"(first at cycle {halvings[0][0]})")
    if args.jsonl:
        records = tracer.write_jsonl(args.jsonl)
        if args.validate:
            validate_jsonl_path(args.jsonl)
        print(f"wrote {records} records to {args.jsonl}")
    if args.chrome:
        events = tracer.write_chrome(args.chrome)
        if args.validate:
            validate_chrome_path(args.chrome)
        print(f"wrote {events} trace events to {args.chrome}")
    return 0


def cmd_stats(args) -> int:
    import json

    from repro.metrics.probe import ProbedSwitch
    from repro.obs import StatsRegistry

    switch = ProbedSwitch(_build_switch(args))
    sim = Simulation(switch, _build_traffic(args), warmup_cycles=args.warmup)
    result = sim.run(args.cycles, drain=args.drain)
    registry = StatsRegistry()
    result.to_stats(registry, num_ports=args.radix)
    switch.to_stats(registry)
    if args.json:
        print(json.dumps(registry.to_dict(), indent=2, default=str))
    else:
        print(registry.dump())
    return 0


def _add_run_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--traffic", choices=["uniform", "hotspot"],
                        default="uniform")
    parser.add_argument("--load", type=float, default=0.08)
    parser.add_argument("--cycles", type=int, default=4000)
    parser.add_argument("--warmup", type=int, default=500)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--drain", action="store_true",
                        help="cycle until the switch is empty afterwards")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hi-Rise (MICRO 2014) reproduction toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    cost = commands.add_parser("cost", help="implementation cost of a design")
    _add_design_arguments(cost)
    cost.set_defaults(handler=cmd_cost)

    simulate = commands.add_parser("simulate", help="cycle-accurate run")
    _add_design_arguments(simulate)
    _add_run_arguments(simulate)
    simulate.set_defaults(handler=cmd_simulate)

    trace = commands.add_parser(
        "trace", help="traced run exporting cycle-level events"
    )
    _add_design_arguments(trace)
    _add_run_arguments(trace)
    trace.add_argument("--kernel", choices=["fast", "reference"],
                       default="fast")
    trace.add_argument("--capacity", type=int, default=None,
                       help="event-buffer capacity (default 2^20)")
    trace.add_argument("--jsonl", help="write the JSONL trace here")
    trace.add_argument("--chrome", help="write the Chrome trace here")
    trace.add_argument("--validate", action="store_true",
                       help="validate written traces against the schema")
    trace.set_defaults(handler=cmd_trace)

    stats = commands.add_parser(
        "stats", help="probed run dumping the statistics registry"
    )
    _add_design_arguments(stats)
    _add_run_arguments(stats)
    stats.add_argument("--json", action="store_true",
                       help="dump as JSON instead of aligned text")
    stats.set_defaults(handler=cmd_stats)

    table = commands.add_parser("table", help="regenerate a paper table")
    table.add_argument("which", choices=["1", "4", "5", "6"])
    table.add_argument("--fast", action="store_true",
                       help="reduced simulation length")
    table.add_argument("--csv", help="also export rows to this CSV path")
    table.set_defaults(handler=cmd_table)

    figure = commands.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument(
        "which",
        choices=["9a", "9b", "9c", "10", "11a", "11b", "11c", "12"],
    )
    figure.add_argument("--fast", action="store_true")
    figure.add_argument("--csv", help="also export series to this CSV path")
    figure.set_defaults(handler=cmd_figure)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())

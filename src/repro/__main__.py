"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``cost``     — implementation cost of a design point (Tables I/IV/V
  columns) from the calibrated 32 nm model;
* ``simulate`` — run a traffic pattern through a cycle-accurate switch and
  report latency/throughput;
* ``table``    — regenerate a paper table (1, 4, 5 or 6);
* ``figure``   — regenerate a paper figure's data series (9a, 9b, 9c, 10,
  11a, 11b, 11c, 12), optionally exporting CSV;
* ``trace``    — run a traced simulation (binary columnar capture by
  default) and export the cycle-level event trace (binary
  ``repro.trace_bin/v1``, JSONL and/or Chrome ``trace_event``
  timeline); ``--inspect`` filters/summarises an existing JSONL trace,
  ``--convert`` exports views of an existing binary trace;
* ``audit``    — stream a trace (JSONL or binary, sniffed by magic)
  through the fairness/starvation audit analyzer and emit JSON +
  markdown reports, optionally diffing against a baseline summary
  (non-zero exit on regression);
* ``stats``    — run a probed simulation and dump the gem5-style
  statistics registry (text, JSON, or Prometheus text exposition);
* ``perf``     — micro-benchmark the simulator itself, append results
  to an append-only cross-run ledger (``repro.perf/v1`` JSONL), show
  history, print a per-phase wall-time breakdown, and gate against a
  baseline ledger with direction-aware regression checks (non-zero
  exit on regression);
* ``faults``   — run a fault schedule (loaded from JSON or freshly
  generated) through a degraded-mode simulation, report per-phase
  throughput/latency/reachability, and optionally verify that both
  kernels stay bit-identical under the schedule.

Every command prints paper-vs-measured where the paper publishes a value.
"""

import argparse
import os
import sys
from typing import List, Optional

from repro.core import HiRiseConfig, HiRiseSwitch
from repro.network.engine import Simulation
from repro.physical import cost_of
from repro.switches import FoldedSwitch3D, SwizzleSwitch2D
from repro.traffic import HotspotTraffic, UniformRandomTraffic


def _build_design(args):
    if args.design == "2d":
        return "2d"
    if args.design == "folded":
        return "folded"
    return HiRiseConfig(
        radix=args.radix,
        layers=args.layers,
        channel_multiplicity=args.channels,
        arbitration=args.arbitration,
        islip_iterations=getattr(args, "islip_iterations", 1),
    )


def _build_switch(args):
    from repro.switches import make_switch

    if args.design == "2d":
        return SwizzleSwitch2D(args.radix)
    if args.design == "folded":
        return FoldedSwitch3D(args.radix, args.layers)
    return make_switch(_build_design(args))


def _add_design_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--design", choices=["hirise", "2d", "folded"],
                        default="hirise")
    parser.add_argument("--radix", type=int, default=64)
    parser.add_argument("--layers", type=int, default=4)
    parser.add_argument("--channels", type=int, default=4)
    parser.add_argument(
        "--arbitration",
        choices=["clrg", "l2l_lrg", "wlrg", "l2l_rr", "age",
                 "islip", "mwm"],
        default="clrg",
    )
    parser.add_argument(
        "--islip-iterations", type=int, default=1,
        help="request/grant/accept rounds per cycle (islip only)",
    )


def cmd_cost(args) -> int:
    design = _build_design(args)
    cost = cost_of(design, radix=args.radix, layers=args.layers)
    print(f"{cost.name}")
    print(f"  area      : {cost.area_mm2:.3f} mm^2")
    print(f"  frequency : {cost.frequency_ghz:.2f} GHz")
    print(f"  energy    : {cost.energy_pj:.1f} pJ / 128-bit transaction")
    print(f"  TSVs      : {cost.tsv_count}")
    return 0


def _build_traffic(args):
    if args.traffic == "uniform":
        return UniformRandomTraffic(args.radix, args.load, seed=args.seed)
    return HotspotTraffic(
        args.radix, args.load, hotspot_output=args.radix - 1,
        seed=args.seed,
    )


def cmd_simulate(args) -> int:
    switch = _build_switch(args)
    traffic = _build_traffic(args)
    sim = Simulation(switch, traffic, warmup_cycles=args.warmup)
    result = sim.run(args.cycles, drain=args.drain)
    print(f"simulated {args.cycles} cycles at load "
          f"{args.load} packets/input/cycle ({args.traffic})")
    print(f"  delivered  : {result.packets_ejected} packets")
    print(f"  latency    : {result.avg_latency_cycles:.1f} cycles (mean)")
    print(f"  throughput : {result.throughput_packets_per_cycle:.3f} "
          f"packets/cycle")
    return 0


def cmd_compare_schedulers(args) -> int:
    import json

    from repro.harness.schedulers import (
        SCHEDULER_SPECS, compare_schedulers, render_markdown,
        validate_comparison,
    )

    for name in args.schedulers or ():
        if name not in SCHEDULER_SPECS:
            print(f"compare-schedulers: unknown scheduler {name!r} "
                  f"(one of {', '.join(SCHEDULER_SPECS)})",
                  file=sys.stderr)
            return 2
    try:
        comparison = compare_schedulers(
            radix=args.radix,
            layers=args.layers,
            channels=args.channels,
            load=args.load,
            packet_flits=args.packet_flits,
            seed=args.seed,
            warmup_cycles=args.warmup,
            measure_cycles=args.cycles,
            schedulers=args.schedulers or None,
            traffic=args.traffic or None,
            invariants=not args.no_invariants,
            saturation=not args.no_saturation,
        )
    except ValueError as error:
        print(f"compare-schedulers: {error}", file=sys.stderr)
        return 2
    validate_comparison(comparison)
    markdown = render_markdown(comparison)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(comparison, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote comparison JSON to {args.json}")
    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as handle:
            handle.write(markdown)
        print(f"wrote comparison markdown to {args.markdown}")
    print(markdown)
    return 0


def cmd_table(args) -> int:
    from repro.harness import render_table, table1, table4, table5, table6

    scale = 0.4 if args.fast else 1.0
    if args.which == "6":
        rows = table6(network_cycles_baseline=int(8000 * scale))
        print(render_table(rows, "Table VI: application speedup"))
    else:
        builder = {"1": table1, "4": table4, "5": table5}[args.which]
        rows = builder(
            warmup_cycles=int(500 * scale), measure_cycles=int(2500 * scale)
        )
        print(render_table(rows, f"Table {args.which}"))
    if args.csv:
        from repro.harness.export import export_rows_csv

        path = export_rows_csv(rows, args.csv)
        print(f"\nwrote {path}")
    return 0


def cmd_figure(args) -> int:
    from repro.harness import (
        fig9a_frequency_vs_radix,
        fig9b_frequency_vs_layers,
        fig9c_energy_vs_radix,
        fig10_latency_vs_load,
        fig11a_hotspot_latency,
        fig11b_arbitration_throughput,
        fig11c_adversarial_throughput,
        fig12_tsv_pitch,
        render_series,
    )

    scale = 0.4 if args.fast else 1.0
    sim_kwargs = dict(
        warmup_cycles=int(500 * scale), measure_cycles=int(2500 * scale)
    )
    heavy_kwargs = dict(
        warmup_cycles=int(2000 * scale), measure_cycles=int(20000 * scale)
    )
    if args.which == "9a":
        series, columns = fig9a_frequency_vs_radix(), ["radix", "GHz"]
    elif args.which == "9b":
        series, columns = fig9b_frequency_vs_layers(), ["layers", "GHz"]
    elif args.which == "9c":
        series, columns = fig9c_energy_vs_radix(), ["radix", "pJ"]
    elif args.which == "10":
        series = fig10_latency_vs_load(**sim_kwargs)
        columns = ["pkts/in/ns", "latency ns", "accepted pkts/ns"]
    elif args.which == "11a":
        latencies = fig11a_hotspot_latency(**heavy_kwargs)
        series = {
            name: list(enumerate(values))
            for name, values in latencies.items()
        }
        columns = ["input", "latency cycles"]
    elif args.which == "11b":
        series = fig11b_arbitration_throughput(**sim_kwargs)
        columns = ["pkts/in/ns", "pkts/ns"]
    elif args.which == "11c":
        throughputs = fig11c_adversarial_throughput(**heavy_kwargs)
        series = {
            name: sorted(values.items())
            for name, values in throughputs.items()
        }
        columns = ["input", "pkts/ns"]
    else:
        series = {"Hi-Rise 4-ch 4-layer": fig12_tsv_pitch()}
        columns = ["pitch um", "GHz", "mm2"]
    print(render_series(series, f"Fig {args.which}", columns))
    if args.csv:
        from repro.harness.export import export_series_csv

        path = export_series_csv(series, args.csv, columns)
        print(f"\nwrote {path}")
    return 0


def _print_trace_summary(summary, rate=None, stride=None,
                         dropped=None) -> None:
    from repro.obs import resource_label

    meta = summary["meta"]
    print(f"{summary['events']} events")
    if rate is not None:
        print(f"  rate: {rate:,.0f} events/sec")
    if stride is not None or dropped is not None:
        print(f"  decimation: stride {stride if stride is not None else 1}, "
              f"{dropped or 0} events dropped")
    for name in sorted(summary["counts_by_kind"]):
        print(f"  {name:<12} {summary['counts_by_kind'][name]}")
    radix = meta.get("radix", 0)
    layers = meta.get("layers", 0)
    cmult = meta.get("channel_multiplicity", 0)
    resources = summary["resources"]
    if resources:
        print("per-resource totals (grants / busy cycles):")
        for rid in sorted(resources):
            entry = resources[rid]
            label = resource_label(rid, radix, layers, cmult)
            print(f"  {label:<14} {entry['grants']:>8} {entry['busy_cycles']:>8}")
    ports = summary["ports"]
    if ports:
        print("per-port totals (packets injected / flits ejected):")
        for port in sorted(ports):
            entry = ports[port]
            print(f"  port {port:<3} {entry['injected']:>8} {entry['ejected']:>8}")


def _inspect_trace(args) -> int:
    import json

    from repro.obs import filter_records, iter_jsonl, summarize_records

    try:
        records = filter_records(
            iter_jsonl(args.inspect),
            kinds=args.kind or None,
            ports=args.port or None,
        )
        if args.summary:
            import time

            start = time.perf_counter()
            summary = summarize_records(records)
            elapsed = time.perf_counter() - start
            meta = summary["meta"]
            _print_trace_summary(
                summary,
                rate=summary["events"] / elapsed if elapsed > 0 else None,
                stride=meta.get("stride"),
                dropped=meta.get("dropped"),
            )
        elif args.jsonl:
            count = -1  # don't count the meta record
            with open(args.jsonl, "w", encoding="utf-8") as handle:
                for count, record in enumerate(records):
                    handle.write(json.dumps(record) + "\n")
            print(f"wrote {count + 1} records to {args.jsonl}")
        else:
            for record in records:
                print(json.dumps(record))
    except (OSError, ValueError) as error:
        print(f"trace: {error}", file=sys.stderr)
        return 2
    return 0


def _convert_trace(args) -> int:
    """Export views (--jsonl/--chrome/--summary) of a binary trace."""
    import json
    import time

    from repro.obs import (
        filter_records, read_tracebin, summarize_records,
        validate_chrome_path, validate_jsonl_path,
    )

    try:
        columns = read_tracebin(args.convert)
    except (OSError, ValueError) as error:
        print(f"trace: {error}", file=sys.stderr)
        return 2
    if args.lane is not None:
        if columns.lane is None:
            print("trace: scalar trace has no lane column",
                  file=sys.stderr)
            return 2
        columns = columns.for_lane(args.lane)
    elif columns.lane is not None:
        print(f"trace: fleet trace with lanes {columns.lanes()}; "
              f"pick one with --lane", file=sys.stderr)
        return 2
    if columns.truncated:
        print("trace: warning: torn trace file, recovered "
              f"{len(columns)} events", file=sys.stderr)
    print(f"loaded {len(columns)} events from {args.convert} "
          f"(stride {columns.stride}, {columns.dropped} dropped)")
    try:
        if args.summary:
            records = filter_records(
                columns.records(), kinds=args.kind or None,
                ports=args.port or None,
            )
            start = time.perf_counter()
            summary = summarize_records(records)
            elapsed = time.perf_counter() - start
            _print_trace_summary(
                summary,
                rate=summary["events"] / elapsed if elapsed > 0 else None,
                stride=columns.stride, dropped=columns.dropped,
            )
        filtered = args.kind or args.port
        if args.jsonl:
            if filtered:
                records = filter_records(
                    columns.records(), kinds=args.kind or None,
                    ports=args.port or None,
                )
                count = -1
                with open(args.jsonl, "w", encoding="utf-8") as handle:
                    for count, record in enumerate(records):
                        handle.write(json.dumps(record) + "\n")
                written = count + 1
            else:
                written = columns.write_jsonl(args.jsonl)
            if args.validate:
                validate_jsonl_path(args.jsonl)
            print(f"wrote {written} records to {args.jsonl}")
        if args.chrome:
            events = columns.write_chrome(args.chrome)
            if args.validate:
                validate_chrome_path(args.chrome)
            print(f"wrote {events} trace events to {args.chrome}")
    except (OSError, ValueError) as error:
        print(f"trace: {error}", file=sys.stderr)
        return 2
    return 0


def cmd_trace(args) -> int:
    import time

    from repro.obs import (
        SwitchTracer, filter_records, summarize_records,
        validate_chrome_path, validate_jsonl_path,
    )

    if args.inspect:
        return _inspect_trace(args)
    if args.convert:
        return _convert_trace(args)
    if args.design != "hirise":
        print("trace: cycle-level tracing needs the hirise design",
              file=sys.stderr)
        return 2
    tracer = None
    if args.tracer == "binary":
        try:
            from repro.obs import BinaryTracer

            tracer = (
                BinaryTracer(capacity=args.capacity)
                if args.capacity is not None else BinaryTracer()
            )
        except RuntimeError:
            tracer = None  # no numpy: fall back to the row capture
    if tracer is None:
        if args.binary:
            print("trace: --binary needs the binary tracer "
                  "(numpy and --tracer binary)", file=sys.stderr)
            return 2
        tracer = (
            SwitchTracer(capacity=args.capacity)
            if args.capacity is not None else SwitchTracer()
        )
    config = _build_design(args)
    if args.kernel == "reference":
        from repro.core.reference import ReferenceHiRiseSwitch

        switch = ReferenceHiRiseSwitch(config, tracer=tracer)
    else:
        switch = HiRiseSwitch(config, tracer=tracer)
    sim = Simulation(switch, _build_traffic(args), warmup_cycles=args.warmup)
    start = time.perf_counter()
    result = sim.run(args.cycles, drain=args.drain)
    elapsed = time.perf_counter() - start
    dropped = f" ({tracer.dropped} dropped)" if tracer.dropped else ""
    print(f"traced {args.cycles} cycles ({args.traffic}, load {args.load}): "
          f"{len(tracer.events)} events{dropped}, "
          f"{result.packets_ejected} packets delivered")
    counts = tracer.counts_by_kind()
    for name in sorted(counts):
        print(f"  {name:<12} {counts[name]}")
    halvings = tracer.halving_events()
    if halvings:
        print(f"  CLRG halvings: {len(halvings)} "
              f"(first at cycle {halvings[0][0]})")
    filtered = args.kind or args.port
    if args.summary:
        records = filter_records(
            tracer.records(), kinds=args.kind or None,
            ports=args.port or None,
        )
        _print_trace_summary(
            summarize_records(records),
            rate=len(tracer.events) / elapsed if elapsed > 0 else None,
            stride=getattr(tracer, "stride", 1),
            dropped=tracer.dropped,
        )
    if args.binary:
        written = tracer.save(args.binary)
        print(f"wrote {written} events to {args.binary} "
              f"(repro.trace_bin/v1)")
    if args.jsonl:
        if filtered:
            import json

            records = filter_records(
                tracer.records(), kinds=args.kind or None,
                ports=args.port or None,
            )
            count = -1
            with open(args.jsonl, "w", encoding="utf-8") as handle:
                for count, record in enumerate(records):
                    handle.write(json.dumps(record) + "\n")
            records_written = count + 1
        else:
            records_written = tracer.write_jsonl(args.jsonl)
        if args.validate:
            validate_jsonl_path(args.jsonl)
        print(f"wrote {records_written} records to {args.jsonl}")
    if args.chrome:
        events = tracer.write_chrome(args.chrome)
        if args.validate:
            validate_chrome_path(args.chrome)
        print(f"wrote {events} trace events to {args.chrome}")
    return 0


def cmd_audit(args) -> int:
    import json

    from repro.harness.report import render_audit_markdown
    from repro.obs import (
        StatsRegistry, analyze_columns, analyze_jsonl, compare_audits,
        read_tracebin, sniff_tracebin, validate_audit_summary,
    )

    options = dict(
        window=args.window,
        fairness_threshold=args.fairness_threshold,
        max_min_threshold=args.max_min_threshold,
        starvation_gap=args.starvation_gap,
    )
    try:
        if sniff_tracebin(args.trace):
            columns = read_tracebin(args.trace)
            if args.lane is not None:
                columns = columns.for_lane(args.lane)
            report = analyze_columns(columns, **options)
        elif args.lane is not None:
            print("audit: --lane needs a binary fleet trace",
                  file=sys.stderr)
            return 2
        else:
            report = analyze_jsonl(args.trace, **options)
    except (OSError, ValueError) as error:
        print(f"audit: {error}", file=sys.stderr)
        return 2
    summary = validate_audit_summary(report.summary())

    regressions = None
    if args.against:
        try:
            with open(args.against, "r", encoding="utf-8") as handle:
                baseline = validate_audit_summary(json.load(handle))
        except (OSError, ValueError) as error:
            print(f"audit: baseline: {error}", file=sys.stderr)
            return 2
        regressions = compare_audits(
            summary, baseline, rel_tol=args.rel_tol, abs_tol=args.abs_tol
        )

    fairness = summary["fairness"]
    starved = summary["starvation"]
    print(f"audited {summary['trace']['events']} events over "
          f"{summary['trace']['cycles']} cycles ({args.trace})")
    print(f"  throughput    : "
          f"{summary['traffic']['throughput_flits_per_cycle']:.4f} "
          f"flits/cycle")
    jain = fairness["jain"]
    jain_text = f"{jain:.4f}" if jain is not None else "n/a"
    maxmin = fairness["max_min"]
    maxmin_text = f"{maxmin:.3f}" if maxmin is not None else "inf"
    print(f"  fairness      : Jain {jain_text}, max/min {maxmin_text}, "
          f"{fairness['unfair_epochs']}/{fairness['epochs']} unfair epochs "
          f"(window {fairness['window']})")
    print(f"  starvation    : max gap {starved['max_gap_cycles']} cycles"
          + (f" (input {starved['max_gap_input']})"
             if starved["max_gap_input"] is not None else ""))
    print(f"  CLRG halvings : {summary['clrg']['halvings']}")
    print(f"  anomalies     : {summary['anomalies']['count']}")
    for item in summary["anomalies"]["items"][:10]:
        print(f"    [{item['kind']}] cycle {item['cycle']}")

    if args.stats or args.prometheus:
        registry = StatsRegistry()
        report.to_stats(registry)
        if args.stats:
            print(registry.dump())
        if args.prometheus:
            sys.stdout.write(registry.to_prometheus())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2)
            handle.write("\n")
        print(f"wrote audit summary to {args.json}")
    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as handle:
            handle.write(render_audit_markdown(summary, regressions))
        print(f"wrote markdown report to {args.markdown}")
    if regressions is not None:
        if regressions:
            print(f"{len(regressions)} regression(s) vs {args.against}:",
                  file=sys.stderr)
            for regression in regressions:
                print(f"  {regression}", file=sys.stderr)
            return 1
        print(f"no regressions vs {args.against}")
    return 0


def cmd_faults(args) -> int:
    import json

    from repro.faults import (
        FaultSchedule, measure_degradation, verify_parity,
    )
    from repro.harness.report import render_degradation_markdown

    if args.design != "hirise":
        print("faults: fault injection needs the hirise design",
              file=sys.stderr)
        return 2
    config = _build_design(args)
    if args.generate is not None:
        schedule = FaultSchedule.random(
            config,
            seed=args.fault_seed,
            horizon=args.warmup + args.cycles,
            faults=args.generate,
            include_inputs=args.include_inputs,
            include_clrg=args.include_clrg,
        )
        print(f"generated {len(schedule)} fault events "
              f"(seed {args.fault_seed})")
    elif args.schedule:
        try:
            schedule = FaultSchedule.load(args.schedule)
        except (OSError, ValueError) as error:
            print(f"faults: {error}", file=sys.stderr)
            return 2
        print(f"loaded {len(schedule)} fault events from {args.schedule}")
    else:
        print("faults: give a schedule file or --generate N",
              file=sys.stderr)
        return 2
    if args.save:
        schedule.dump(args.save)
        print(f"wrote schedule to {args.save}")

    if args.parity:
        mismatches = verify_parity(
            config, schedule, load=args.load, seed=args.seed,
            measure_cycles=args.cycles, warmup_cycles=args.warmup,
        )
        if mismatches:
            print(f"faults: kernels diverged under the schedule:",
                  file=sys.stderr)
            for mismatch in mismatches:
                print(f"  {mismatch}", file=sys.stderr)
            return 1
        print("parity: fast and reference kernels bit-identical "
              "(results and trace streams)")

    report = measure_degradation(
        config, schedule, load=args.load, seed=args.seed,
        measure_cycles=args.cycles, warmup_cycles=args.warmup,
        kernel=args.kernel,
    )
    print(f"measured {report.total_cycles} cycles (uniform, load "
          f"{args.load}, {args.kernel} kernel): "
          f"{report.total_packets} packets delivered, "
          f"{report.overall_throughput:.4f} packets/cycle overall")
    print(f"  {'cycles':>13}  {'failed':>6}  {'stuck':>5}  "
          f"{'reach':>6}  {'pkts/cyc':>8}  {'latency':>8}")
    for phase in report.phases:
        print(f"  {phase.start_cycle:>5}-{phase.end_cycle:<7} "
              f"{phase.failed_channels:>6}  {phase.stuck_inputs:>5}  "
              f"{phase.reachable_fraction:>6.3f}  {phase.throughput:>8.4f}  "
              f"{phase.avg_latency:>8.1f}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2)
            handle.write("\n")
        print(f"wrote degradation report to {args.json}")
    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as handle:
            handle.write(render_degradation_markdown(report.to_dict()))
        print(f"wrote markdown report to {args.markdown}")
    return 0


def cmd_check(args) -> int:
    from repro.check import replay_repro, run_fuzz

    if args.replay:
        failures = 0
        for path in args.replay:
            try:
                result = replay_repro(
                    path, invariants=not args.no_invariants,
                    fleet_lanes=args.fleet if args.fleet else None,
                )
            except (OSError, ValueError) as error:
                print(f"check: {error}", file=sys.stderr)
                return 2
            verdict = "reproduced" if result.matches else "DIVERGED"
            print(f"{path}: recorded {result.expected_status!r}, "
                  f"replayed {result.outcome.status!r} -> {verdict}")
            if result.outcome.detail and not result.matches:
                print(f"  {result.outcome.detail}", file=sys.stderr)
            if not result.matches:
                failures += 1
        return 1 if failures else 0

    if not args.fuzz:
        print("check: give --fuzz or --replay FILE", file=sys.stderr)
        return 2
    report = run_fuzz(
        seed=args.seed,
        cases=args.cases,
        max_radix=args.max_radix,
        out_dir=args.out_dir,
        invariants=not args.no_invariants,
        minimize=not args.no_minimize,
        log=print if args.verbose else None,
        fleet_lanes=args.fleet,
    )
    print(f"fuzz seed {report.seed}: {report.cases_run} cases, "
          f"{report.ok} ok, {len(report.failures)} failing")
    for failure in report.failures:
        print(f"  {failure.original.case_id}: {failure.outcome.status} "
              f"({failure.outcome.detail})", file=sys.stderr)
        if failure.shrink_history:
            print(f"    shrunk in {len(failure.shrink_history)} steps to "
                  f"{failure.minimized.case_id}", file=sys.stderr)
        if failure.repro_path:
            print(f"    repro: {failure.repro_path}", file=sys.stderr)
    return 1 if report.failures else 0


def cmd_stats(args) -> int:
    import json

    from repro.metrics.probe import ProbedSwitch
    from repro.obs import StatsRegistry

    switch = ProbedSwitch(_build_switch(args))
    sim = Simulation(switch, _build_traffic(args), warmup_cycles=args.warmup)
    result = sim.run(args.cycles, drain=args.drain)
    registry = StatsRegistry()
    result.to_stats(registry, num_ports=args.radix)
    switch.to_stats(registry)
    if args.json:
        print(json.dumps(registry.to_dict(), indent=2, default=str))
    elif args.prometheus:
        sys.stdout.write(registry.to_prometheus())
    else:
        print(registry.dump())
    return 0


def cmd_perf(args) -> int:
    from repro.obs.perf import (
        PerfCounters, append_ledger_entry, compare_perf, config_fingerprint,
        filter_entries, make_ledger_entry, read_ledger, run_micro_benchmark,
    )

    if args.design != "hirise":
        print("perf: the micro benchmark needs the hirise design",
              file=sys.stderr)
        return 2
    config = _build_design(args)
    fingerprint = config_fingerprint(config)
    workload = args.workload or (
        f"uniform_{config.radix}x{config.layers}_c"
        f"{config.channel_multiplicity}_l{args.load:g}_{args.cycles}c"
    )

    if not args.record and not args.ledger:
        print("perf: give --record (run the benchmark) and/or "
              "--ledger FILE (read history)", file=sys.stderr)
        return 2

    # Read histories BEFORE recording, so `--record --against <the same
    # ledger>` compares the new run against the previous entry.
    try:
        history = (
            filter_entries(read_ledger(args.ledger), fingerprint, workload)
            if args.ledger else []
        )
        baseline_entries = (
            filter_entries(read_ledger(args.against), fingerprint, workload)
            if args.against else []
        )
    except ValueError as error:
        print(f"perf: {error}", file=sys.stderr)
        return 2

    if args.record:
        metrics, details = run_micro_benchmark(
            config, cycles=args.cycles, trials=args.trials,
            load=args.load, traffic_seed=args.seed,
        )
        current = make_ledger_entry(config, workload, metrics)
        print(f"measured {workload} (fingerprint {fingerprint}, "
              f"best of {details['trials']} trials)")
        print(f"  cycles/sec : {metrics['cycles_per_sec']:.0f}")
        print(f"  normalized : {metrics['normalized']:.6g} "
              f"(vs {metrics['calibration_ops_per_sec']:.3g} "
              f"calibration ops/s)")
        if args.ledger:
            append_ledger_entry(args.ledger, current)
            print(f"recorded entry #{len(history) + 1} to {args.ledger}")
    else:
        if not history:
            print(f"perf: no entries matching fingerprint {fingerprint} / "
                  f"workload {workload!r} in {args.ledger}", file=sys.stderr)
            return 2
        current = history[-1]
        if args.against and os.path.realpath(args.against) == \
                os.path.realpath(args.ledger):
            # Current came from this very file: judge its predecessor.
            baseline_entries = baseline_entries[:-1]

    if args.history:
        shown = history[-args.history:]
        print(f"history ({len(shown)} of {len(history)} matching entries):")
        for entry in shown:
            metrics = entry.get("metrics", {})
            cps = metrics.get("cycles_per_sec")
            norm = metrics.get("normalized")
            cps_text = f"{cps:.0f}" if isinstance(cps, float) else "n/a"
            norm_text = f"{norm:.6g}" if isinstance(norm, float) else "n/a"
            print(f"  {entry.get('recorded', '?'):25s} "
                  f"{cps_text:>12s} cycles/s  normalized {norm_text}")

    if args.phases:
        perf = PerfCounters(stride=args.stride)
        run_micro_benchmark(
            config, cycles=args.cycles, trials=1,
            load=args.load, traffic_seed=args.seed, perf=perf,
        )
        fractions = perf.phase_fractions()
        print(f"phase breakdown ({perf.cycles_sampled}/{perf.cycles_total} "
              f"cycles sampled at stride {perf.stride}):")
        for phase, frac in fractions.items():
            ops = perf.ops.get(phase, 0)
            ops_text = f"  ({ops} ops)" if ops else ""
            print(f"  {phase:12s} {frac:7.1%}{ops_text}")

    if args.against:
        if not baseline_entries:
            print(f"perf: no baseline entries matching fingerprint "
                  f"{fingerprint} / workload {workload!r} in {args.against}",
                  file=sys.stderr)
            return 2
        baseline = baseline_entries[-1]
        try:
            regressions = compare_perf(
                current, baseline, rel_tol=args.rel_tol
            )
        except ValueError as error:
            print(f"perf: {error}", file=sys.stderr)
            return 2
        if regressions:
            print(f"{len(regressions)} perf regression(s) vs "
                  f"{args.against} ({baseline.get('recorded', '?')}):",
                  file=sys.stderr)
            for regression in regressions:
                print(f"  {regression}", file=sys.stderr)
            return 1
        print(f"no perf regressions vs {args.against} "
              f"({baseline.get('recorded', '?')}, "
              f"rel tol {args.rel_tol:.0%})")
    return 0


def cmd_serve(args) -> int:
    from repro.service import SweepService

    service = SweepService(
        args.state,
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_limit=args.queue_limit,
        max_batch=args.max_batch,
        breaker_threshold=args.breaker_threshold,
        task_timeout=args.task_timeout,
        max_retries=args.max_retries,
        jitter_seed=args.jitter_seed,
    )
    service.start()
    host, port = service.address
    # The parseable "serving on" line is the startup handshake scripts
    # wait for; keep its shape stable.
    print(f"serving on {host}:{port} (state {args.state})", flush=True)
    try:
        service.wait()
    except KeyboardInterrupt:
        service.stop()
    return 0


def _service_client(args):
    from repro.service import ServiceClient

    return ServiceClient(args.host, args.port, timeout=args.timeout)


def cmd_submit(args) -> int:
    import json

    from repro.service import ServiceError

    if args.spec == "-":
        raw = sys.stdin.read()
    else:
        raw = args.spec
    try:
        spec = json.loads(raw)
    except json.JSONDecodeError as error:
        print(f"submit: spec is not valid JSON: {error}", file=sys.stderr)
        return 2
    client = _service_client(args)
    try:
        accepted = client.submit_with_backpressure(
            spec, priority=args.priority
        )
        print(json.dumps(accepted, indent=2, sort_keys=True))
        if args.wait > 0:
            outcome = client.result(
                job_id=accepted["job_id"], wait_s=args.wait
            )
            payload = outcome.get("payload")
            if payload is None:
                job = outcome.get("job", {})
                print(f"submit: job {job.get('job_id')} "
                      f"{job.get('state')}: {job.get('error')}",
                      file=sys.stderr)
                return 1
            print(json.dumps(payload, indent=2, sort_keys=True))
    except ServiceError as error:
        print(f"submit: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"submit: cannot reach the daemon at "
              f"{args.host}:{args.port}: {error}", file=sys.stderr)
        return 2
    return 0


def cmd_jobs(args) -> int:
    import json

    from repro.service import ServiceError

    client = _service_client(args)
    try:
        if args.shutdown:
            client.shutdown()
            print("shutdown requested")
            return 0
        if args.prometheus:
            sys.stdout.write(str(client.metrics()["prometheus"]))
            return 0
        if args.metrics:
            print(json.dumps(client.metrics()["counters"],
                             indent=2, sort_keys=True))
            return 0
        jobs = client.jobs()
        if not jobs:
            print("no jobs")
            return 0
        for job in jobs:
            line = (f"{job['job_id']:10s} {str(job['kind'] or '?'):9s} "
                    f"{job['state']:10s}")
            if job.get("source"):
                line += f" [{job['source']}]"
            if job.get("error"):
                line += f" error: {job['error']}"
            print(f"{line}  {job['fingerprint']}")
    except ServiceError as error:
        print(f"jobs: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"jobs: cannot reach the daemon at "
              f"{args.host}:{args.port}: {error}", file=sys.stderr)
        return 2
    return 0


def _add_client_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7451)
    parser.add_argument("--timeout", type=float, default=30.0,
                        help="per-request socket timeout in seconds")


def _add_run_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--traffic", choices=["uniform", "hotspot"],
                        default="uniform")
    parser.add_argument("--load", type=float, default=0.08)
    parser.add_argument("--cycles", type=int, default=4000)
    parser.add_argument("--warmup", type=int, default=500)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--drain", action="store_true",
                        help="cycle until the switch is empty afterwards")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hi-Rise (MICRO 2014) reproduction toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    cost = commands.add_parser("cost", help="implementation cost of a design")
    _add_design_arguments(cost)
    cost.set_defaults(handler=cmd_cost)

    simulate = commands.add_parser("simulate", help="cycle-accurate run")
    _add_design_arguments(simulate)
    _add_run_arguments(simulate)
    simulate.set_defaults(handler=cmd_simulate)

    compare = commands.add_parser(
        "compare-schedulers",
        help="CLRG vs LRG vs iSLIP(k) vs MWM comparison matrix",
    )
    compare.add_argument("--radix", type=int, default=16)
    compare.add_argument("--layers", type=int, default=2)
    compare.add_argument("--channels", type=int, default=2)
    compare.add_argument("--load", type=float, default=0.3)
    compare.add_argument("--packet-flits", type=int, default=4)
    compare.add_argument("--seed", type=int, default=1)
    compare.add_argument("--warmup", type=int, default=300)
    compare.add_argument("--cycles", type=int, default=2000)
    compare.add_argument(
        "--scheduler", dest="schedulers", action="append", default=[],
        metavar="NAME",
        help="include only this scheduler (repeatable; default: all)",
    )
    compare.add_argument(
        "--traffic", action="append", default=[], metavar="PATTERN",
        help="include only this traffic pattern (repeatable; default: "
             "uniform, hotspot, transpose)",
    )
    compare.add_argument("--json", metavar="PATH",
                         help="write the repro.schedulers/v1 JSON here")
    compare.add_argument("--markdown", metavar="PATH",
                         help="write the markdown report here")
    compare.add_argument("--no-invariants", action="store_true",
                         help="skip the per-cycle matching checker")
    compare.add_argument("--no-saturation", action="store_true",
                         help="skip the overdriven saturation sweep")
    compare.set_defaults(handler=cmd_compare_schedulers)

    trace = commands.add_parser(
        "trace", help="traced run exporting cycle-level events"
    )
    _add_design_arguments(trace)
    _add_run_arguments(trace)
    trace.add_argument("--kernel", choices=["fast", "reference"],
                       default="fast")
    trace.add_argument("--capacity", type=int, default=None,
                       help="event-buffer capacity (default 2^20)")
    trace.add_argument("--tracer", choices=["binary", "jsonl"],
                       default="binary",
                       help="capture buffer: binary columnar (default; "
                            "falls back to jsonl without numpy) or the "
                            "legacy row capture")
    trace.add_argument("--binary", metavar="TRACEBIN",
                       help="write the repro.trace_bin/v1 columnar "
                            "trace here")
    trace.add_argument("--jsonl", help="write the JSONL trace here")
    trace.add_argument("--chrome", help="write the Chrome trace here")
    trace.add_argument("--validate", action="store_true",
                       help="validate written traces against the schema")
    trace.add_argument("--inspect", metavar="JSONL",
                       help="filter/summarise an existing JSONL trace "
                            "instead of running a simulation")
    trace.add_argument("--convert", metavar="TRACEBIN",
                       help="export views (--jsonl/--chrome/--summary) of "
                            "an existing binary trace instead of running "
                            "a simulation")
    trace.add_argument("--lane", type=int, default=None,
                       help="with --convert on a fleet trace: select "
                            "this lane's stream")
    trace.add_argument("--kind", action="append", default=[],
                       help="keep only this event kind (repeatable)")
    trace.add_argument("--port", action="append", type=int, default=[],
                       help="keep only events touching this port "
                            "(repeatable; matches src/dst/input/output)")
    trace.add_argument("--summary", action="store_true",
                       help="print event counts by kind and per-resource/"
                            "per-port totals")
    trace.set_defaults(handler=cmd_trace)

    audit = commands.add_parser(
        "audit", help="fairness/starvation audit of a JSONL trace"
    )
    audit.add_argument("trace",
                       help="trace file to audit (JSONL or "
                            "repro.trace_bin/v1, sniffed by magic)")
    audit.add_argument("--lane", type=int, default=None,
                       help="audit this lane of a binary fleet trace")
    audit.add_argument("--window", type=int, default=256,
                       help="fairness-epoch length in cycles")
    audit.add_argument("--fairness-threshold", type=float, default=0.85,
                       help="epoch Jain index below this is unfair")
    audit.add_argument("--max-min-threshold", type=float, default=2.0,
                       help="epoch max/min service ratio above this is unfair")
    audit.add_argument("--starvation-gap", type=int, default=None,
                       help="grant gap (cycles) flagged as starvation "
                            "(default 4x window)")
    audit.add_argument("--json", help="write the audit summary JSON here")
    audit.add_argument("--markdown", help="write the markdown report here")
    audit.add_argument("--stats", action="store_true",
                       help="also dump the audit stats registry")
    audit.add_argument("--prometheus", action="store_true",
                       help="also emit the audit stats registry in "
                            "Prometheus text exposition format")
    audit.add_argument("--against", metavar="BASELINE",
                       help="compare against a baseline audit summary JSON; "
                            "exit 1 on regression")
    audit.add_argument("--rel-tol", type=float, default=0.05,
                       help="relative tolerance for baseline comparison")
    audit.add_argument("--abs-tol", type=float, default=0.0,
                       help="absolute tolerance for baseline comparison")
    audit.set_defaults(handler=cmd_audit)

    faults = commands.add_parser(
        "faults", help="degraded-mode run under a fault schedule"
    )
    faults.add_argument("schedule", nargs="?", default=None,
                        help="fault schedule JSON (omit with --generate)")
    _add_design_arguments(faults)
    _add_run_arguments(faults)
    faults.add_argument("--kernel", choices=["fast", "reference"],
                        default="fast")
    faults.add_argument("--generate", type=int, metavar="N", default=None,
                        help="generate a random N-fault schedule instead "
                             "of loading one")
    faults.add_argument("--fault-seed", type=int, default=0,
                        help="seed for --generate")
    faults.add_argument("--include-inputs", action="store_true",
                        help="let --generate produce stuck-input faults")
    faults.add_argument("--include-clrg", action="store_true",
                        help="let --generate produce CLRG corruptions")
    faults.add_argument("--save", help="write the schedule JSON here")
    faults.add_argument("--parity", action="store_true",
                        help="verify fast/reference kernels stay "
                             "bit-identical under the schedule; exit 1 "
                             "on divergence")
    faults.add_argument("--json", help="write the degradation report "
                                       "JSON here")
    faults.add_argument("--markdown", help="write the markdown report here")
    faults.set_defaults(handler=cmd_faults)

    check = commands.add_parser(
        "check",
        help="differential fuzzing with runtime invariants "
             "(repro.check); replay repro files",
    )
    check.add_argument("--fuzz", action="store_true",
                       help="run a seeded fuzz campaign (fast vs "
                            "reference, invariants on)")
    check.add_argument("--seed", type=int, default=0,
                       help="fuzz campaign seed (same seed, same cases)")
    check.add_argument("--cases", type=int, default=20,
                       help="number of generated cases")
    check.add_argument("--max-radix", type=int, default=16,
                       help="largest generated switch radix")
    check.add_argument("--out-dir", default=None,
                       help="write repro JSON files for failures here")
    check.add_argument("--replay", nargs="+", metavar="FILE", default=None,
                       help="re-run repro.check/v1 files; exit 1 if any "
                            "no longer reproduces its recorded outcome")
    check.add_argument("--fleet", type=int, nargs="?", const=3, default=0,
                       metavar="LANES",
                       help="also run every case through the batched "
                            "fleet kernel with LANES lanes (default 3) "
                            "and compare each lane bit-for-bit against "
                            "a scalar run; replay honours the lane "
                            "count recorded in the repro file")
    check.add_argument("--no-minimize", action="store_true",
                       help="skip shrinking failing cases")
    check.add_argument("--no-invariants", action="store_true",
                       help="differential-only runs (no per-cycle checks)")
    check.add_argument("--verbose", action="store_true",
                       help="log every case as it runs")
    check.set_defaults(handler=cmd_check)

    stats = commands.add_parser(
        "stats", help="probed run dumping the statistics registry"
    )
    _add_design_arguments(stats)
    _add_run_arguments(stats)
    stats.add_argument("--json", action="store_true",
                       help="dump as JSON instead of aligned text")
    stats.add_argument("--prometheus", action="store_true",
                       help="dump in Prometheus text exposition format")
    stats.set_defaults(handler=cmd_stats)

    perf = commands.add_parser(
        "perf",
        help="micro-benchmark the simulator itself and keep a "
             "cross-run perf ledger",
    )
    _add_design_arguments(perf)
    perf.add_argument("--record", action="store_true",
                      help="run the micro benchmark now (otherwise the "
                           "latest matching --ledger entry is used)")
    perf.add_argument("--ledger", metavar="JSONL", default=None,
                      help="append-only repro.perf/v1 history; --record "
                           "appends to it, --history/--against read it")
    perf.add_argument("--history", type=int, nargs="?", const=10,
                      default=None, metavar="N",
                      help="show the last N matching ledger entries "
                           "(default 10)")
    perf.add_argument("--against", metavar="LEDGER",
                      help="compare against the latest matching entry of "
                           "this ledger; exit 1 on regression (with the "
                           "same file, compares consecutive entries)")
    perf.add_argument("--rel-tol", type=float, default=0.2,
                      help="relative tolerance for --against (default "
                           "0.2; wall-clock is noisy)")
    perf.add_argument("--cycles", type=int, default=2000,
                      help="benchmark length in cycles")
    perf.add_argument("--trials", type=int, default=2,
                      help="trials to run (best is kept)")
    perf.add_argument("--load", type=float, default=1.0,
                      help="offered load (default saturation)")
    perf.add_argument("--seed", type=int, default=7,
                      help="traffic seed")
    perf.add_argument("--workload", default=None,
                      help="override the workload label entries are "
                           "keyed by")
    perf.add_argument("--phases", action="store_true",
                      help="also run a profiled trial and print the "
                           "per-phase wall-time breakdown")
    perf.add_argument("--stride", type=int, default=16,
                      help="sampling stride for --phases")
    perf.set_defaults(handler=cmd_perf)

    serve = commands.add_parser(
        "serve",
        help="run the crash-safe sweep/audit/fuzz job daemon",
    )
    serve.add_argument("--state", required=True,
                       help="durable state directory (journal, result "
                            "cache); reuse it to recover after a crash")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="listen port (0 picks an ephemeral port, "
                            "printed on startup)")
    serve.add_argument("--workers", type=int, default=2,
                       help="executor pool width")
    serve.add_argument("--queue-limit", type=int, default=32,
                       help="admission bound; a full queue sheds load "
                            "with a structured overloaded response")
    serve.add_argument("--max-batch", type=int, default=8,
                       help="jobs dispatched to the executor per batch")
    serve.add_argument("--breaker-threshold", type=int, default=3,
                       help="consecutive worker crashes that quarantine "
                            "a job fingerprint")
    serve.add_argument("--task-timeout", type=float, default=None,
                       help="per-attempt wall-clock timeout in seconds")
    serve.add_argument("--max-retries", type=int, default=3,
                       help="retry budget per job attempt")
    serve.add_argument("--jitter-seed", type=int, default=0,
                       help="seed of the deterministic backoff jitter")
    serve.set_defaults(handler=cmd_serve)

    submit = commands.add_parser(
        "submit", help="submit a job to a running daemon"
    )
    _add_client_arguments(submit)
    submit.add_argument("spec",
                        help="job spec as a JSON object, or - for stdin "
                             '(e.g. \'{"kind": "simulate", "load": 0.3}\')')
    submit.add_argument("--priority", type=int, default=0,
                        help="higher dispatches first")
    submit.add_argument("--wait", type=float, default=120.0,
                        help="seconds to wait for the result "
                             "(0 = submit and return immediately)")
    submit.set_defaults(handler=cmd_submit)

    jobs = commands.add_parser(
        "jobs", help="inspect or control a running daemon"
    )
    _add_client_arguments(jobs)
    jobs.add_argument("--metrics", action="store_true",
                      help="print the service counters as JSON")
    jobs.add_argument("--prometheus", action="store_true",
                      help="print the Prometheus scrape text")
    jobs.add_argument("--shutdown", action="store_true",
                      help="ask the daemon to stop")
    jobs.set_defaults(handler=cmd_jobs)

    table = commands.add_parser("table", help="regenerate a paper table")
    table.add_argument("which", choices=["1", "4", "5", "6"])
    table.add_argument("--fast", action="store_true",
                       help="reduced simulation length")
    table.add_argument("--csv", help="also export rows to this CSV path")
    table.set_defaults(handler=cmd_table)

    figure = commands.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument(
        "which",
        choices=["9a", "9b", "9c", "10", "11a", "11b", "11c", "12"],
    )
    figure.add_argument("--fast", action="store_true")
    figure.add_argument("--csv", help="also export series to this CSV path")
    figure.set_defaults(handler=cmd_figure)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())

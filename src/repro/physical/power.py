"""Power estimation: combining cycle activity with the energy model.

The paper reports energy per transaction (Tables I/IV/V) and discusses
power comparisons against mesh and flattened-butterfly fabrics (Section
VI-E: Hi-Rise improves on the 2D Swizzle-Switch power by ~38%).  This
module converts a simulation's delivered traffic into average switch
power: dynamic power is transactions/second times energy/transaction,
plus a leakage floor proportional to silicon area.

The leakage density default is a typical 32 nm HP-process figure (tens of
mW/mm^2); it is a documented estimate — the paper publishes no leakage
split — and only matters at very low load.
"""

from dataclasses import dataclass
from typing import Optional, Union

from repro.core.config import HiRiseConfig
from repro.network.engine import SimulationResult
from repro.physical.costmodel import cost_of
from repro.physical.technology import Technology

LEAKAGE_MW_PER_MM2 = 30.0
"""Leakage power density estimate for 32 nm (mW per mm^2 of switch area)."""


@dataclass(frozen=True)
class PowerEstimate:
    """Average power of a switch during a measured simulation window."""

    dynamic_w: float
    leakage_w: float
    transactions_per_second: float

    @property
    def total_w(self) -> float:
        return self.dynamic_w + self.leakage_w

    def energy_per_bit_pj(self, flit_bits: int = 128) -> float:
        """Average transport energy per delivered payload bit."""
        if self.transactions_per_second == 0:
            return float("inf")
        joules_per_transaction = self.dynamic_w / self.transactions_per_second
        return joules_per_transaction / flit_bits * 1e12


def average_power(
    result: SimulationResult,
    design: Union[str, HiRiseConfig],
    radix: int = 64,
    layers: int = 4,
    technology: Optional[Technology] = None,
    leakage_mw_per_mm2: float = LEAKAGE_MW_PER_MM2,
) -> PowerEstimate:
    """Average switch power over a simulation's measured window.

    A *transaction* is one flit traversal (the paper's energy numbers are
    per 128-bit transaction, i.e. per flit at the modelled width).

    Args:
        result: Measured window of a cycle simulation of ``design``.
        design: ``"2d"``, ``"folded"`` or a :class:`HiRiseConfig` — must be
            the design that produced ``result``.

    Raises:
        ValueError: If the result has no measured cycles.
    """
    if result.cycles == 0:
        raise ValueError("result has no measured cycles")
    cost = cost_of(design, radix=radix, layers=layers, technology=technology)
    flits_per_cycle = result.flits_ejected / result.cycles
    transactions_per_second = flits_per_cycle * cost.frequency_ghz * 1e9
    dynamic_w = transactions_per_second * cost.energy_pj * 1e-12
    leakage_w = cost.area_mm2 * leakage_mw_per_mm2 * 1e-3
    return PowerEstimate(
        dynamic_w=dynamic_w,
        leakage_w=leakage_w,
        transactions_per_second=transactions_per_second,
    )

"""Energy per 128-bit transaction.

A transaction charges the input and output bus bundles of every stage it
traverses (plus the embedded arbitration phase, which reuses the same
wires — the cost is folded into the per-span constant by calibration), a
fixed per-stage term for sense amps/latches/drivers, the TSV feed-through
capacitance per vertical crossing, and a small CLRG adder for the class
counters and priority-select muxes (Table V: 44 vs 42 pJ).
"""

from typing import Optional

from repro.core.config import ArbitrationScheme
from repro.physical.calibration import EnergyConstants, calibrated_energy
from repro.physical.geometry import SwitchGeometry
from repro.physical.technology import Technology


def energy_per_transaction_pj(
    geometry: SwitchGeometry,
    technology: Optional[Technology] = None,
    constants: Optional[EnergyConstants] = None,
) -> float:
    """Energy of one flit-wide transaction through the switch, in pJ.

    Scales with the square of the supply voltage and (for the TSV term)
    linearly with TSV pitch relative to the paper's conditions.
    """
    tech = technology or Technology()
    k = constants or calibrated_energy()
    energy = (
        k.per_stage_pj * geometry.num_stages
        + k.per_span_pj * geometry.span_linear
        + k.per_span_sq_pj * geometry.span_quadratic
        + k.per_tsv_crossing_pj * geometry.tsv_crossings * tech.tsv.pitch_scale
    )
    if geometry.arbitration is ArbitrationScheme.CLRG:
        energy += k.clrg_extra_pj
    # Energy is CV^2-dominated; the calibration point is 1.0 V.
    voltage_scale = tech.voltage_v * tech.voltage_v
    # Bus energy scales with flit width; the calibration point is 128 bits.
    width_scale = tech.flit_bits / 128.0
    return energy * voltage_scale * width_scale

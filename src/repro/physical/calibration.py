"""Calibration of the analytical cost models against the paper's anchors.

The delay, energy and area models are linear in a small set of physical
constants (per-stage overhead, per-span wire cost, quadratic long-wire
cost, per-crossing TSV cost, per-cross-point area, per-TSV keep-out area).
The paper publishes five fully characterised design points — the 2D
64-radix switch, the 4-layer folded switch, and the 1/2/4-channel 4-layer
Hi-Rise (Tables I and IV) — which over-determine each model; the constants
are obtained by non-negative least squares over those anchors, mirroring
how the paper calibrated its SPICE models against Swizzle-Switch silicon.

Residuals at the anchors are ~1-3% and are asserted in the test suite.
"""

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List

import numpy as np
from scipy.optimize import nnls

from repro.core.config import HiRiseConfig
from repro.physical.geometry import (
    SwitchGeometry,
    flat2d_geometry,
    folded3d_geometry,
    hirise_geometry,
)

# ----------------------------------------------------------------------
# Published anchors (Tables I, IV and V; 64-radix, 4 layers, 128-bit)
# ----------------------------------------------------------------------
PAPER_FREQUENCY_GHZ: Dict[str, float] = {
    "2d": 1.69,
    "folded": 1.58,
    "hirise_c4": 2.24,   # L-2-L LRG variant (Table IV)
    "hirise_c2": 2.46,
    "hirise_c1": 2.64,
    "hirise_c4_clrg": 2.2,  # Table V
}

PAPER_ENERGY_PJ: Dict[str, float] = {
    "2d": 71.0,
    "folded": 73.0,
    "hirise_c4": 42.0,
    "hirise_c2": 39.0,
    "hirise_c1": 37.0,
    "hirise_c4_clrg": 44.0,
}

PAPER_AREA_MM2: Dict[str, float] = {
    "2d": 0.672,
    "folded": 0.705,
    "hirise_c4": 0.451,
    "hirise_c2": 0.315,
    "hirise_c1": 0.247,
}

PAPER_TSV_COUNT: Dict[str, int] = {
    "2d": 0,
    "folded": 8192,
    "hirise_c4": 6144,
    "hirise_c2": 3072,
    "hirise_c1": 1536,
}


def _anchor_geometries() -> Dict[str, SwitchGeometry]:
    hirise = lambda c: hirise_geometry(
        HiRiseConfig(radix=64, layers=4, channel_multiplicity=c,
                     arbitration="l2l_lrg")
    )
    return {
        "2d": flat2d_geometry(64),
        "folded": folded3d_geometry(64, 4),
        "hirise_c4": hirise(4),
        "hirise_c2": hirise(2),
        "hirise_c1": hirise(1),
    }


# ----------------------------------------------------------------------
# Fitted constant bundles
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DelayConstants:
    """Cycle-time model constants (nanoseconds at 0.8 um TSV pitch)."""

    per_stage_ns: float        # sense amp + precharge + driver per stage
    per_span_ns: float         # wire RC per cross-point span (repeated)
    per_span_sq_ns: float      # super-linear long-wire RC
    per_tsv_crossing_ns: float # TSV loading per vertical crossing
    clrg_extra_ns: float       # class-counter mux adder (Table V)


@dataclass(frozen=True)
class EnergyConstants:
    """Energy-per-transaction model constants (picojoules, 128-bit)."""

    per_stage_pj: float
    per_span_pj: float
    per_span_sq_pj: float
    per_tsv_crossing_pj: float
    clrg_extra_pj: float


@dataclass(frozen=True)
class AreaConstants:
    """Area model constants (mm^2 at 0.8 um TSV pitch, 128-bit buses)."""

    per_crosspoint_mm2: float
    per_tsv_mm2: float


def _delay_design_row(geometry: SwitchGeometry) -> List[float]:
    return [
        float(geometry.num_stages),
        float(geometry.span_linear),
        float(geometry.span_quadratic),
        float(geometry.tsv_crossings),
    ]


@lru_cache(maxsize=1)
def calibrated_delay() -> DelayConstants:
    """Fit the cycle-time constants to the five published frequencies."""
    geometries = _anchor_geometries()
    matrix = np.array([_delay_design_row(g) for g in geometries.values()])
    target = np.array(
        [1.0 / PAPER_FREQUENCY_GHZ[name] for name in geometries]
    )
    solution, _residual = nnls(matrix, target)
    clrg_extra = (
        1.0 / PAPER_FREQUENCY_GHZ["hirise_c4_clrg"]
        - 1.0 / PAPER_FREQUENCY_GHZ["hirise_c4"]
    )
    return DelayConstants(*solution, clrg_extra_ns=clrg_extra)


@lru_cache(maxsize=1)
def calibrated_energy() -> EnergyConstants:
    """Fit the energy constants to the five published energy points."""
    geometries = _anchor_geometries()
    matrix = np.array([_delay_design_row(g) for g in geometries.values()])
    target = np.array([PAPER_ENERGY_PJ[name] for name in geometries])
    solution, _residual = nnls(matrix, target)
    clrg_extra = (
        PAPER_ENERGY_PJ["hirise_c4_clrg"] - PAPER_ENERGY_PJ["hirise_c4"]
    )
    return EnergyConstants(*solution, clrg_extra_pj=clrg_extra)


@lru_cache(maxsize=1)
def calibrated_area() -> AreaConstants:
    """Fit the area constants to the five published area points."""
    geometries = _anchor_geometries()
    matrix = np.array(
        [
            [float(g.crosspoints), float(g.tsv_count(128))]
            for g in geometries.values()
        ]
    )
    target = np.array([PAPER_AREA_MM2[name] for name in geometries])
    solution, _residual = nnls(matrix, target)
    return AreaConstants(*solution)

"""Cycle time and operating frequency of a switch implementation.

The cycle time is the serial sum of stage delays on the critical path
(the Hi-Rise two-phase clock evaluates the local switch in phase 1 and the
inter-layer switch in phase 2 of the same cycle), a TSV loading term per
vertical crossing, plus small adders for the CLRG cross-point muxes and,
under priority-based channel allocation, the serialised channel mux
(Section III-A notes priority allocation "incurs higher delay because
arbitration across L2LCs is now serialized"; the paper publishes no number
for it, so the penalty is modelled as one extra per-stage overhead per
additional channel — documented as an estimate in DESIGN.md).
"""

from typing import Optional

from repro.core.config import ArbitrationScheme
from repro.physical.calibration import DelayConstants, calibrated_delay
from repro.physical.geometry import SwitchGeometry
from repro.physical.technology import Technology


def cycle_time_ns(
    geometry: SwitchGeometry,
    technology: Optional[Technology] = None,
    constants: Optional[DelayConstants] = None,
) -> float:
    """Clock period of the given switch geometry in nanoseconds."""
    tech = technology or Technology()
    k = constants or calibrated_delay()
    period = (
        k.per_stage_ns * geometry.num_stages
        + k.per_span_ns * geometry.span_linear
        + k.per_span_sq_ns * geometry.span_quadratic
        + k.per_tsv_crossing_ns * geometry.tsv_crossings * tech.tsv.pitch_scale
    )
    if geometry.arbitration is ArbitrationScheme.CLRG:
        period += k.clrg_extra_ns
    if geometry.priority_mux_channels > 1:
        period += k.per_stage_ns * (geometry.priority_mux_channels - 1)
    return period


def frequency_ghz(
    geometry: SwitchGeometry,
    technology: Optional[Technology] = None,
    constants: Optional[DelayConstants] = None,
) -> float:
    """Operating frequency in GHz."""
    return 1.0 / cycle_time_ns(geometry, technology, constants)

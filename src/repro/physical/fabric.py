"""Fabric-level energy/latency comparison: single switch vs multi-hop NoCs.

Section VI-E positions Hi-Rise against whole-fabric alternatives: "[the 2D
Swizzle-Switch's] power is 33% better than mesh and 28% better than
flattened butterfly.  Hi-Rise further improves over the 2D Swizzle-Switch
power by about 38%, giving us about 58% power savings over flattened
butterfly."

A multi-hop fabric pays per transaction: one router traversal per hop plus
the inter-router link wires.  Router costs come from the same calibrated
32 nm model as everything else (a mesh router is a small flat
Swizzle-Switch); link wires use an estimated global-wire energy/delay per
mm (documented constants — the paper publishes no wire numbers), with hop
counts and link lengths from standard uniform-random averages on a k x k
layout.  The comparison targets the paper's *relative* claims, so the
benchmark asserts savings bands, not absolute watts.
"""

import math
from dataclasses import dataclass
from typing import Optional

from repro.physical.energy import energy_per_transaction_pj
from repro.physical.geometry import flat2d_geometry
from repro.physical.technology import Technology
from repro.physical.timing import cycle_time_ns

# Global-wire estimates for 32 nm repeated wires (documented estimates;
# see module docstring).
LINK_ENERGY_PJ_PER_BIT_MM = 0.08
LINK_DELAY_NS_PER_MM = 0.10

# Canonical buffered VC routers pipeline route/VA/SA/ST over several
# stages; the Swizzle-Switch's single-cycle traversal is one of its
# headline advantages.  Documented estimate for the comparison fabrics.
ROUTER_PIPELINE_CYCLES = 2


@dataclass(frozen=True)
class FabricCost:
    """Average per-transaction cost of moving one flit across a fabric."""

    name: str
    energy_pj: float
    latency_ns: float
    avg_hops: float


def _link_energy_pj(length_mm: float, flit_bits: int) -> float:
    return LINK_ENERGY_PJ_PER_BIT_MM * flit_bits * length_mm


def mesh_fabric_cost(
    terminals: int = 64,
    concentration: int = 1,
    node_pitch_mm: float = 1.0,
    technology: Optional[Technology] = None,
) -> FabricCost:
    """Average cost of a conventional 2D mesh of low-radix routers.

    Uniform random traffic on a k x k router grid averages 2k/3 hops; each
    hop is one (concentration + 4)-port router traversal plus one
    ``node_pitch_mm`` link, and the path touches hops+1 routers.
    ``concentration`` terminals share each router (1 = the classic mesh).
    """
    tech = technology or Technology()
    if terminals % concentration != 0:
        raise ValueError("terminals must divide by the concentration")
    routers = terminals // concentration
    k = math.isqrt(routers)
    if k * k != routers:
        raise ValueError("mesh comparison expects a square router grid")
    avg_hops = 2.0 * k / 3.0
    router = flat2d_geometry(concentration + 4)
    router_energy = energy_per_transaction_pj(router, tech)
    router_delay = cycle_time_ns(router, tech) * ROUTER_PIPELINE_CYCLES
    pitch = node_pitch_mm * concentration ** 0.5
    energy = (avg_hops + 1) * router_energy + avg_hops * _link_energy_pj(
        pitch, tech.flit_bits
    )
    latency = (avg_hops + 1) * router_delay + avg_hops * (
        LINK_DELAY_NS_PER_MM * pitch
    )
    return FabricCost(
        f"2D mesh ({k}x{k}, c={concentration})", energy, latency, avg_hops
    )


def flattened_butterfly_cost(
    terminals: int = 64,
    concentration: int = 4,
    node_pitch_mm: float = 1.0,
    technology: Optional[Technology] = None,
) -> FabricCost:
    """Average cost of a concentrated flattened-butterfly fabric.

    With concentration ``c`` on a k x k router grid, every router pair in a
    row/column is directly linked: at most 2 hops (average ~1.75 for
    uniform traffic counting same-router pairs), over long express links
    that average ~k/3 node pitches each.
    """
    tech = technology or Technology()
    routers = terminals // concentration
    k = math.isqrt(routers)
    if k * k != routers:
        raise ValueError("flattened butterfly expects a square router grid")
    radix = concentration + 2 * (k - 1)
    router = flat2d_geometry(radix)
    router_energy = energy_per_transaction_pj(router, tech)
    router_delay = cycle_time_ns(router, tech) * ROUTER_PIPELINE_CYCLES
    # Same router: 0 hops (prob 1/routers); same row or column: 1 hop;
    # otherwise 2 hops.
    p_same = 1.0 / routers
    p_one = 2.0 * (k - 1) / routers
    p_two = 1.0 - p_same - p_one
    avg_hops = p_one * 1 + p_two * 2
    avg_link_mm = (k / 3.0) * concentration ** 0.5 * node_pitch_mm
    energy = (avg_hops + 1) * router_energy + avg_hops * _link_energy_pj(
        avg_link_mm, tech.flit_bits
    )
    latency = (avg_hops + 1) * router_delay + avg_hops * (
        LINK_DELAY_NS_PER_MM * avg_link_mm
    )
    return FabricCost(
        f"flattened butterfly ({k}x{k}, c={concentration})",
        energy, latency, avg_hops,
    )


def single_switch_cost(
    energy_pj: float,
    frequency_ghz: float,
    zero_load_cycles: float = 4.0,
) -> FabricCost:
    """Wrap a single-switch design point as a fabric cost (zero hops)."""
    return FabricCost(
        "single switch",
        energy_pj,
        zero_load_cycles / frequency_ghz,
        avg_hops=0.0,
    )

"""Silicon area of a switch implementation.

The matrix switches are wire-limited: area is the cross-point grid (each
cross-point spans a flit-wide bundle in both directions, two stacked metal
layers at double pitch) plus the keep-out area punched by TSVs.  The
keep-out per TSV scales with the square of the TSV pitch (Fig 12).
"""

from typing import Optional

from repro.physical.calibration import AreaConstants, calibrated_area
from repro.physical.geometry import SwitchGeometry
from repro.physical.technology import Technology


def area_mm2(
    geometry: SwitchGeometry,
    technology: Optional[Technology] = None,
    constants: Optional[AreaConstants] = None,
) -> float:
    """Total silicon area over all layers, in mm^2."""
    tech = technology or Technology()
    k = constants or calibrated_area()
    width_scale = (tech.flit_bits / 128.0) ** 2
    pitch_scale_sq = tech.tsv.pitch_scale ** 2
    return (
        k.per_crosspoint_mm2 * geometry.crosspoints * width_scale
        + k.per_tsv_mm2 * geometry.tsv_count(tech.flit_bits) * pitch_scale_sq
    )


def footprint_mm2(
    geometry: SwitchGeometry,
    technology: Optional[Technology] = None,
    constants: Optional[AreaConstants] = None,
) -> float:
    """Per-layer footprint: total area divided by the stacked layers.

    This is the compactness benefit of 3D stacking the paper highlights —
    the folded and Hi-Rise switches occupy 1/L of the 2D floorplan shadow.
    """
    return area_mm2(geometry, technology, constants) / geometry.layers

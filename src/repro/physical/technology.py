"""Technology parameters: 32 nm SOI process and TSV technology.

Defaults follow Table II of the paper (typical process corner, 27 C, 1 V;
Tezzaron-class TSVs with 0.8 um minimum pitch, 0.2 fF feed-through
capacitance, 1.5 ohm resistance).
"""

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class TSVParams:
    """Through-silicon via technology parameters (paper Table II)."""

    pitch_um: float = 0.8
    feedthrough_cap_ff: float = 0.2
    resistance_ohm: float = 1.5

    def __post_init__(self) -> None:
        if self.pitch_um <= 0:
            raise ValueError("TSV pitch must be positive")
        if self.feedthrough_cap_ff < 0 or self.resistance_ohm < 0:
            raise ValueError("TSV parasitics must be non-negative")

    @property
    def pitch_scale(self) -> float:
        """Pitch relative to the paper's 0.8 um reference technology.

        TSV capacitance (hence delay and energy contribution) scales
        roughly linearly with pitch; keep-out silicon area scales with the
        square of the pitch.
        """
        return self.pitch_um / 0.8

    def with_pitch(self, pitch_um: float) -> "TSVParams":
        """A copy with a different pitch (for Fig 12 sweeps)."""
        return replace(self, pitch_um=pitch_um)


@dataclass(frozen=True)
class Technology:
    """Process and design conditions used in the paper's evaluation."""

    node_nm: int = 32
    voltage_v: float = 1.0
    temperature_c: float = 27.0
    flit_bits: int = 128
    tsv: TSVParams = field(default_factory=TSVParams)

    def __post_init__(self) -> None:
        if self.flit_bits < 1:
            raise ValueError("flit width must be at least one bit")
        if self.voltage_v <= 0:
            raise ValueError("supply voltage must be positive")

    def with_tsv_pitch(self, pitch_um: float) -> "Technology":
        """A copy with a different TSV pitch (for Fig 12 sweeps)."""
        return replace(self, tsv=self.tsv.with_pitch(pitch_um))

"""Physical cost models: area, cycle time, energy, and TSVs in 32 nm.

The paper evaluates implementation cost with SPICE netlists in a
commercial 32 nm SOI process, verified against Swizzle-Switch silicon.
Offline, this subpackage substitutes an *analytical* model built from the
same structural quantities the netlists capture — wire spans across the
cross-point grid, per-stage overheads (sense amps, drivers, latches), and
TSV parasitics — with its free constants least-squares calibrated against
the paper's published design points (Tables I, IV and V).  The calibration
residuals are asserted in the test suite and recorded in EXPERIMENTS.md.

Main entry point: :func:`repro.physical.costmodel.cost_of`, which returns
the area/frequency/energy/TSV tuple for the flat 2D switch, the folded 3D
switch, or any Hi-Rise configuration.
"""

from repro.physical.technology import Technology, TSVParams
from repro.physical.geometry import (
    SwitchGeometry,
    flat2d_geometry,
    folded3d_geometry,
    hirise_geometry,
)
from repro.physical.calibration import (
    AreaConstants,
    DelayConstants,
    EnergyConstants,
    calibrated_area,
    calibrated_delay,
    calibrated_energy,
)
from repro.physical.timing import cycle_time_ns, frequency_ghz
from repro.physical.energy import energy_per_transaction_pj
from repro.physical.area import area_mm2
from repro.physical.costmodel import SwitchCost, cost_of, throughput_tbps
from repro.physical.power import PowerEstimate, average_power

__all__ = [
    "Technology",
    "TSVParams",
    "SwitchGeometry",
    "flat2d_geometry",
    "folded3d_geometry",
    "hirise_geometry",
    "AreaConstants",
    "DelayConstants",
    "EnergyConstants",
    "calibrated_area",
    "calibrated_delay",
    "calibrated_energy",
    "cycle_time_ns",
    "frequency_ghz",
    "energy_per_transaction_pj",
    "area_mm2",
    "SwitchCost",
    "cost_of",
    "throughput_tbps",
    "PowerEstimate",
    "average_power",
]

"""Top-level implementation-cost model: one call per design point.

``cost_of`` maps a design ("2d", "folded", or a :class:`HiRiseConfig`) to
its area, operating frequency, energy per transaction and TSV count — the
columns of Tables I, IV and V.  ``throughput_tbps`` converts a simulated
saturation rate (flits/cycle) into the paper's Tbps units using the
design's modelled frequency.
"""

from dataclasses import dataclass
from typing import Optional, Union

from repro.core.config import HiRiseConfig
from repro.physical.area import area_mm2
from repro.physical.energy import energy_per_transaction_pj
from repro.physical.geometry import (
    SwitchGeometry,
    flat2d_geometry,
    folded3d_geometry,
    hirise_geometry,
)
from repro.physical.technology import Technology
from repro.physical.timing import frequency_ghz


@dataclass(frozen=True)
class SwitchCost:
    """Implementation cost of one design point (a table row)."""

    name: str
    area_mm2: float
    frequency_ghz: float
    energy_pj: float
    tsv_count: int

    def throughput_tbps(self, flits_per_cycle: float, flit_bits: int = 128) -> float:
        """Aggregate throughput in Tbps for a given delivered flit rate."""
        return flits_per_cycle * flit_bits * self.frequency_ghz / 1000.0


def geometry_of(
    design: Union[str, HiRiseConfig],
    radix: int = 64,
    layers: int = 4,
) -> SwitchGeometry:
    """Geometry for a named baseline or a Hi-Rise configuration.

    Args:
        design: ``"2d"``, ``"folded"``, or a :class:`HiRiseConfig`.
        radix: Radix for the named baselines.
        layers: Layer count for the folded baseline.
    """
    if isinstance(design, HiRiseConfig):
        return hirise_geometry(design)
    if design == "2d":
        return flat2d_geometry(radix)
    if design == "folded":
        return folded3d_geometry(radix, layers)
    raise ValueError(f"unknown design {design!r}; use '2d', 'folded' or a HiRiseConfig")


def cost_of(
    design: Union[str, HiRiseConfig],
    radix: int = 64,
    layers: int = 4,
    technology: Optional[Technology] = None,
) -> SwitchCost:
    """Area/frequency/energy/TSV cost of a design point."""
    tech = technology or Technology()
    geometry = geometry_of(design, radix=radix, layers=layers)
    return SwitchCost(
        name=geometry.name,
        area_mm2=area_mm2(geometry, tech),
        frequency_ghz=frequency_ghz(geometry, tech),
        energy_pj=energy_per_transaction_pj(geometry, tech),
        tsv_count=geometry.tsv_count(tech.flit_bits),
    )


def throughput_tbps(
    flits_per_cycle: float,
    design: Union[str, HiRiseConfig],
    radix: int = 64,
    layers: int = 4,
    technology: Optional[Technology] = None,
) -> float:
    """Convenience wrapper: simulated flit rate -> Tbps for a design."""
    cost = cost_of(design, radix=radix, layers=layers, technology=technology)
    tech = technology or Technology()
    return cost.throughput_tbps(flits_per_cycle, tech.flit_bits)

"""Structural geometry of switch implementations.

Every physical estimate (area, cycle time, energy) is a function of the
same structural quantities: the cross-point grid spans of each pipeline
stage, the number of vertical (TSV) crossings on the critical path, and
the total count of vertical bus wires.  This module derives those
quantities for the three designs the paper compares.

Spans are measured in *cross-point units*: a stage with R input rows and C
output columns has an input bus crossing C cross-points and an output bus
crossing R cross-points, each of physical length proportional to the
flit-width wire bundle (two stacked metal layers at double pitch — the
constant of proportionality is absorbed by calibration).
"""

from dataclasses import dataclass
from typing import Tuple

from repro.core.config import AllocationPolicy, ArbitrationScheme, HiRiseConfig


@dataclass(frozen=True)
class SwitchGeometry:
    """Structural quantities feeding the area/timing/energy models.

    Attributes:
        name: Human-readable design name.
        stages: Serial pipeline stages as (rows, cols) cross-point grids on
            the critical path (the 2D switch has one, Hi-Rise has two).
        crosspoints: Total cross-points across the whole design (all
            layers, all sub-blocks) — drives silicon area.
        tsv_crossings: Vertical layer crossings on the critical path.
        vertical_buses: Count of flit-wide vertical buses (TSV columns =
            vertical_buses x flit bits).
        layers: Stacked silicon layers (1 for the flat switch).
        arbitration: Arbitration scheme (CLRG pays small delay/energy
            adders at the inter-layer cross-points).
        priority_mux_channels: Non-zero when the Hi-Rise switch uses
            priority-based channel allocation: arbitration over that many
            channels is serialised into the local stage.
    """

    name: str
    stages: Tuple[Tuple[int, int], ...]
    crosspoints: int
    tsv_crossings: int
    vertical_buses: int
    layers: int = 1
    arbitration: ArbitrationScheme = ArbitrationScheme.L2L_LRG
    priority_mux_channels: int = 0

    @property
    def span_linear(self) -> int:
        """Sum of (rows + cols) over critical-path stages."""
        return sum(rows + cols for rows, cols in self.stages)

    @property
    def span_quadratic(self) -> int:
        """Sum of (rows^2 + cols^2) over critical-path stages.

        Captures the super-linear RC growth of long unrepeated buses that
        makes the flat switch's delay and energy curves steepen at high
        radix (Fig 9a/9c).
        """
        return sum(rows * rows + cols * cols for rows, cols in self.stages)

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    def tsv_count(self, flit_bits: int) -> int:
        """Total TSV columns: one per bit of every vertical bus.

        Matches the paper's counting: the folded 64-radix, 128-bit switch
        needs 64 x 128 = 8192; the 4-channel 4-layer Hi-Rise needs
        4 x 3 x 4 x 128 = 6144.
        """
        return self.vertical_buses * flit_bits


def flat2d_geometry(radix: int) -> SwitchGeometry:
    """The flat 2D Swizzle-Switch: one radix x radix matrix."""
    if radix < 2:
        raise ValueError("radix must be >= 2")
    return SwitchGeometry(
        name=f"2D {radix}x{radix}",
        stages=((radix, radix),),
        crosspoints=radix * radix,
        tsv_crossings=0,
        vertical_buses=0,
        layers=1,
    )


def folded3d_geometry(radix: int, layers: int = 4) -> SwitchGeometry:
    """The folded 3D baseline: a radix x radix matrix split over layers.

    Folding does not shrink the electrical span — every output bus still
    crosses all ``radix`` inputs' cross-points (now spread over layers and
    joined by TSVs) and every input bus crosses all ``radix`` outputs —
    which is exactly why Table I shows the folded switch *slower* than 2D.
    """
    if layers < 2:
        raise ValueError("folding needs at least two layers")
    if radix % layers != 0:
        raise ValueError("radix must divide evenly across layers")
    return SwitchGeometry(
        name=f"3D Folded [{radix // layers}x{radix}]x{layers}",
        stages=((radix, radix),),
        crosspoints=radix * radix,
        tsv_crossings=layers - 1,
        vertical_buses=radix,
        layers=layers,
    )


def hirise_sweep_geometry(
    radix: int,
    layers: int,
    channel_multiplicity: int,
    arbitration: ArbitrationScheme = ArbitrationScheme.L2L_LRG,
) -> SwitchGeometry:
    """Hi-Rise geometry for design sweeps, without divisibility limits.

    Fig 9(b) sweeps the layer count continuously (2-7) at radices that do
    not always divide evenly; this variant sizes the per-layer switches
    with ceil(radix / layers) ports, the worst-case layer that sets the
    critical path and dominates area.
    """
    if layers < 2:
        raise ValueError("need at least two layers")
    if radix < layers:
        raise ValueError("radix must be at least the layer count")
    if channel_multiplicity < 1:
        raise ValueError("channel multiplicity must be >= 1")
    ports = -(-radix // layers)  # ceil
    channels = channel_multiplicity * (layers - 1)
    crosspoints_per_layer = ports * (ports + channels) + ports * (channels + 1)
    return SwitchGeometry(
        name=f"3D {channel_multiplicity}-Channel r{radix} L{layers}",
        stages=((ports, ports + channels), (channels + 1, 1)),
        crosspoints=crosspoints_per_layer * layers,
        tsv_crossings=layers - 1,
        vertical_buses=channels * layers,
        layers=layers,
        arbitration=arbitration,
    )


def hirise_geometry(config: HiRiseConfig) -> SwitchGeometry:
    """Hi-Rise: local switch stage + inter-layer sub-block stage."""
    ports = config.ports_per_layer
    channels = config.channels_per_layer
    local_stage = (ports, ports + channels)
    inter_stage = (channels + 1, 1)
    crosspoints_per_layer = (
        ports * (ports + channels)        # local switch grid
        + ports * (channels + 1)          # sub-blocks (one column each)
    )
    priority_channels = (
        config.channel_multiplicity
        if config.allocation is AllocationPolicy.PRIORITY
        else 0
    )
    return SwitchGeometry(
        name=f"3D {config.channel_multiplicity}-Channel",
        stages=(local_stage, inter_stage),
        crosspoints=crosspoints_per_layer * config.layers,
        tsv_crossings=config.layers - 1,
        vertical_buses=config.vertical_bus_count,
        layers=config.layers,
        arbitration=config.arbitration,
        priority_mux_channels=priority_channels,
    )

"""Arbiter interface shared by all arbitration schemes."""

from abc import ABC, abstractmethod
from typing import Iterable, Optional


class Arbiter(ABC):
    """Selects one winner among requesting slots.

    Arbitration and the priority update are deliberately split: in the
    Hi-Rise switch a local-switch winner only updates its priority when it
    also wins the final output at the inter-layer switch (the update is
    back-propagated), so the caller decides when :meth:`update` runs.
    """

    def __init__(self, num_slots: int) -> None:
        if num_slots < 1:
            raise ValueError("an arbiter needs at least one slot")
        self.num_slots = num_slots

    @abstractmethod
    def arbitrate(self, requests: Iterable[int]) -> Optional[int]:
        """Return the winning slot among ``requests`` (None if empty).

        Does not change arbiter state; call :meth:`update` to commit.
        """

    @abstractmethod
    def update(self, winner: int) -> None:
        """Commit a grant: the winner becomes the most recently granted."""

    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < self.num_slots:
            raise ValueError(f"slot {slot} out of range [0, {self.num_slots})")

"""Bipartite-matching helpers shared by the VOQ scheduler family.

An input-queued switch schedule is a matching on the bipartite graph
whose left vertices are inputs, right vertices are outputs, and edges
are the non-empty VOQs (input ``i`` holds traffic for output ``j``).
iSLIP computes a maximal matching iteratively; the MWM oracle computes
a maximum-weight matching.  These helpers give both schedulers — and
the property tests and runtime invariants that pin them — one shared
vocabulary for validity, weight, and maximality.

A matching is represented as ``Dict[int, int]`` mapping input -> output.
A request/weight matrix is any ``Sequence[Sequence[int]]`` of shape
``(num_inputs, num_outputs)``; entry ``[i][j] > 0`` means input ``i``
requests output ``j`` with that weight (VOQ occupancy in flits).
"""

from typing import Dict, Sequence

Matching = Dict[int, int]
WeightMatrix = Sequence[Sequence[int]]

__all__ = [
    "Matching",
    "WeightMatrix",
    "is_valid_matching",
    "matching_weight",
    "is_maximal_matching",
]


def is_valid_matching(matching: Matching, weights: WeightMatrix) -> bool:
    """True when no input or output is matched twice and every matched
    edge corresponds to an actual request (positive weight)."""
    outputs_seen = set()
    for inp, out in matching.items():
        if not 0 <= inp < len(weights):
            return False
        if not 0 <= out < len(weights[inp]):
            return False
        if weights[inp][out] <= 0:
            return False
        if out in outputs_seen:
            return False
        outputs_seen.add(out)
    return True


def matching_weight(matching: Matching, weights: WeightMatrix) -> int:
    """Total weight (sum of VOQ occupancies) carried by the matching."""
    return sum(weights[inp][out] for inp, out in matching.items())


def is_maximal_matching(matching: Matching, weights: WeightMatrix) -> bool:
    """True when no request edge can be added without a conflict.

    Maximal (no augmenting single edge), not maximum: every unmatched
    input with a positive-weight request must only request outputs that
    are already matched.
    """
    matched_outputs = set(matching.values())
    for inp, row in enumerate(weights):
        if inp in matching:
            continue
        for out, weight in enumerate(row):
            if weight > 0 and out not in matched_outputs:
                return False
    return True

"""Class counters for CLRG arbitration.

Each inter-layer sub-block cross-point holds a short thermometer counter per
primary input, tracking how often that input won this sub-block's final
output.  The counter value is the input's *priority class*: class 0 (count
0) is the highest priority.  To keep the hardware small and to forget
bursts quickly, the counter is short (the paper finds 3 classes —
thermometer codes {00, 01, 11} — sufficient for a 64-radix switch), and
whenever any counter saturates, *all* counters in the sub-block are halved,
preserving the relative class ordering.
"""

from typing import List


class ClassCounterBank:
    """Saturating win counters for one inter-layer sub-block.

    Args:
        num_inputs: Number of primary inputs tracked (the switch radix).
        num_classes: Number of priority classes.  Counter values range over
            ``0 .. num_classes - 1``; the paper's default is 3.
    """

    def __init__(self, num_inputs: int, num_classes: int = 3) -> None:
        if num_inputs < 1:
            raise ValueError("need at least one input")
        if num_classes < 2:
            raise ValueError("need at least two classes for CLRG to bite")
        self.num_inputs = num_inputs
        self.num_classes = num_classes
        self._counts: List[int] = [0] * num_inputs
        self._halvings = 0
        # Optional observer called with the running halving count after
        # each bank halving (attached by traced switches; None otherwise).
        self.on_halve = None

    @property
    def max_count(self) -> int:
        """The saturation value of each counter."""
        return self.num_classes - 1

    @property
    def halvings(self) -> int:
        """How many times the bank halved (for diagnostics and tests)."""
        return self._halvings

    def class_of(self, input_id: int) -> int:
        """Priority class of an input; 0 is the highest priority class."""
        self._check(input_id)
        return self._counts[input_id]

    def counts(self) -> List[int]:
        """A copy of all counter values."""
        return list(self._counts)

    def record_win(self, input_id: int) -> None:
        """Increment the winner's counter, halving the bank on saturation.

        If the winner's counter already sits at the saturation value, the
        whole bank is divided by two first (integer division), then the
        increment is applied.  Relative class ordering is preserved by the
        halving, exactly as Section III-B.4 requires.
        """
        self._check(input_id)
        if self._counts[input_id] >= self.max_count:
            self._counts = [count // 2 for count in self._counts]
            self._halvings += 1
            if self.on_halve is not None:
                self.on_halve(self._halvings)
        self._counts[input_id] += 1

    def _check(self, input_id: int) -> None:
        if not 0 <= input_id < self.num_inputs:
            raise ValueError(
                f"input {input_id} out of range [0, {self.num_inputs})"
            )

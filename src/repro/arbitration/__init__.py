"""Arbitration schemes for matrix crossbars and the Hi-Rise switch.

The 2D Swizzle-Switch embeds a self-updating Least Recently Granted (LRG)
arbiter at each output (``lrg``).  The hierarchical Hi-Rise datapath
decomposes arbitration into a local phase and an inter-layer phase, which is
unfair under plain LRG composition (Section III-B.2 of the paper).  This
subpackage provides the three inter-layer arbitration schemes the paper
studies:

* baseline layer-to-layer LRG (plain :class:`LRGArbiter` at both phases with
  conditional local update, composed inside :mod:`repro.core.hirise`);
* :class:`WLRGArbiter` — weighted LRG, fair but infeasible in hardware;
* :class:`CLRGArbiter` — the paper's contribution: class-based LRG using
  per-primary-input win counters (:class:`ClassCounterBank`) with LRG
  tie-breaking inside a class.

Two related-work comparison arbiters round out the set for ablation
studies: :class:`RoundRobinArbiter` (iSLIP-style pointer rotation) and
:class:`AgeArbiter` (oldest-first, the hardware-infeasible fairness
ideal of Section VII).

The VOQ scheduler family (:mod:`repro.arbitration.islip`,
:mod:`repro.arbitration.mwm`, :mod:`repro.arbitration.matching`) models
the iterative schedulers the paper positions itself against: full
iSLIP with grant/accept pointer state and an MWM oracle as the quality
upper bound, both consumed by :class:`repro.switches.VOQSwitch`.
"""

from repro.arbitration.base import Arbiter
from repro.arbitration.lrg import LRGArbiter
from repro.arbitration.classes import ClassCounterBank
from repro.arbitration.clrg import CLRGArbiter
from repro.arbitration.wlrg import WLRGArbiter
from repro.arbitration.round_robin import RoundRobinArbiter
from repro.arbitration.age import AgeArbiter
from repro.arbitration.qos import QoSCLRGArbiter, WeightedClassCounterBank
from repro.arbitration.islip import ISLIPArbiter
from repro.arbitration.mwm import MWMOracle
from repro.arbitration.matching import (
    is_maximal_matching,
    is_valid_matching,
    matching_weight,
)

__all__ = [
    "Arbiter",
    "LRGArbiter",
    "ClassCounterBank",
    "CLRGArbiter",
    "WLRGArbiter",
    "RoundRobinArbiter",
    "AgeArbiter",
    "QoSCLRGArbiter",
    "WeightedClassCounterBank",
    "ISLIPArbiter",
    "MWMOracle",
    "is_maximal_matching",
    "is_valid_matching",
    "matching_weight",
]

"""Class-based Least Recently Granted (CLRG) sub-block arbiter.

This is the paper's contribution.  One CLRG arbiter guards one final output
(one inter-layer sub-block).  Its requestor *slots* are the incoming
layer-to-layer channels plus the local intermediate output — for a 4-layer,
4-channel radix-64 switch that is 13 slots.  Each slot's request is made on
behalf of a *primary input* (the input that won the slot at its local
switch); the class counters are indexed by primary input, so fairness is
enforced at input granularity even though tie-breaking LRG state exists
only at channel granularity.

Arbitration in one (hardware) cycle:

1. among the requesting slots, find the best (lowest) class of their
   primary inputs — lower count means less recent output usage;
2. within that best class, pick the slot with the highest LRG priority;
3. on commit: the winning primary input's counter increments (possibly
   halving the bank), and the LRG is updated with the winning slot *even
   when the class comparison alone decided the grant* (Section III-B.4:
   "Even though LRG is not used for this arbitration cycle, it is still
   updated").
"""

from typing import Iterable, Optional, Sequence, Tuple

from repro.arbitration.base import Arbiter
from repro.arbitration.classes import ClassCounterBank
from repro.arbitration.lrg import LRGArbiter


class CLRGArbiter(Arbiter):
    """CLRG arbiter for one inter-layer sub-block.

    Args:
        num_slots: Number of requesting channels (incoming L2LCs plus the
            local intermediate output).
        num_inputs: Number of primary inputs in the whole switch (counter
            bank width; 64 for the paper's headline configuration).
        num_classes: Number of priority classes (default 3, per the paper).
        initial_order: Optional initial LRG priority order over slots.
    """

    def __init__(
        self,
        num_slots: int,
        num_inputs: int,
        num_classes: int = 3,
        initial_order: Optional[Sequence[int]] = None,
    ) -> None:
        super().__init__(num_slots)
        self.counters = ClassCounterBank(num_inputs, num_classes)
        self.lrg = LRGArbiter(num_slots, initial_order)

    def arbitrate_requests(
        self, requests: Iterable[Tuple[int, int]]
    ) -> Optional[Tuple[int, int]]:
        """Pick a winner among ``(slot, primary_input)`` requests.

        Returns the winning ``(slot, primary_input)`` pair or None when no
        slot requests.  Pure selection; call :meth:`commit` to update state.
        """
        best: Optional[Tuple[int, int]] = None
        best_class = best_rank = 0
        class_of = self.counters.class_of
        rank = self.lrg._rank
        num_slots = self.num_slots
        for slot, primary_input in requests:
            if not 0 <= slot < num_slots:
                self._check_slot(slot)
            slot_class = class_of(primary_input)
            slot_rank = rank[slot]
            if (best is None or slot_class < best_class
                    or (slot_class == best_class and slot_rank < best_rank)):
                best_class = slot_class
                best_rank = slot_rank
                best = (slot, primary_input)
        return best

    def commit(self, slot: int, primary_input: int) -> None:
        """Commit a grant: bump the input's class counter, update LRG."""
        self.counters.record_win(primary_input)
        self.lrg.update(slot)

    # ------------------------------------------------------------------
    # Arbiter interface (slot-only view, used by generic property tests)
    # ------------------------------------------------------------------
    def arbitrate(self, requests: Iterable[int]) -> Optional[int]:
        """Slot-only arbitration treating each slot as its own input.

        This degenerate view (primary input == slot) exists so the generic
        :class:`Arbiter` contract and its property tests apply; the switch
        models use :meth:`arbitrate_requests`.
        """
        winner = self.arbitrate_requests((slot, slot) for slot in requests)
        return None if winner is None else winner[0]

    def update(self, winner: int) -> None:
        self.commit(winner, winner)

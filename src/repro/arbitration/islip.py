"""iSLIP: iterative round-robin matching for VOQ input-queued switches.

McKeown's iSLIP (the Tiny Tera scheduler) computes a maximal matching
in rounds of request / grant / accept:

1. **Request** — every unmatched input sends a request to every output
   with a non-empty VOQ.
2. **Grant** — every unmatched output grants the requesting input at or
   after its *grant pointer* (round-robin).
3. **Accept** — every input that received grants accepts the granting
   output at or after its *accept pointer*; the pair is matched.

The pointer update rule is what makes iSLIP stable: pointers advance to
one past the matched partner **only when the grant is accepted in the
first iteration**.  Later-iteration matches leave pointers untouched.
Because an accepted output's pointer moves past the input it just
served, under loaded uniform traffic the pointers *desynchronize* —
after a handful of cycles no two outputs point at the same input, every
round-1 grant is accepted, and throughput reaches 100% (the property
battery in ``tests/arbitration/test_properties.py`` pins this).

With one iteration and at most one non-empty VOQ per input, iSLIP
degenerates to independent round-robin arbitration per output — the
differential parity test pins that equivalence against
:class:`repro.arbitration.RoundRobinArbiter`.
"""

from typing import Callable, Dict, List, Optional, Tuple

from repro.arbitration.matching import Matching, WeightMatrix

__all__ = ["ISLIPArbiter", "RoundObserver"]

#: Callback invoked once per (iteration, stage) with the per-port
#: pairings decided in that stage: ``observer(iteration, stage, pairs)``
#: where stage is "grant" (output -> input granted) or "accept"
#: (input -> output accepted) and pairs is a list of (port, partner).
RoundObserver = Callable[[int, str, List[Tuple[int, int]]], None]


class ISLIPArbiter:
    """iSLIP scheduler over an ``num_ports`` x ``num_ports`` VOQ fabric.

    Unlike the single-resource :class:`repro.arbitration.Arbiter`
    subclasses, an iSLIP arbiter owns the whole matching problem: one
    grant pointer per output and one accept pointer per input, advanced
    together under the iteration-1 accept rule.
    """

    def __init__(self, num_ports: int, iterations: int = 1) -> None:
        if num_ports < 1:
            raise ValueError("iSLIP needs at least one port")
        if iterations < 1:
            raise ValueError("iSLIP needs at least one iteration")
        self.num_ports = num_ports
        self.iterations = iterations
        #: Per-output round-robin pointer used in the grant stage.
        self.grant_pointers = [0] * num_ports
        #: Per-input round-robin pointer used in the accept stage.
        self.accept_pointers = [0] * num_ports

    def _first_at_or_after(self, pointer: int, candidates: set) -> int:
        for offset in range(self.num_ports):
            slot = (pointer + offset) % self.num_ports
            if slot in candidates:
                return slot
        raise AssertionError("unreachable: candidates is non-empty")

    def match(
        self,
        weights: WeightMatrix,
        observer: Optional[RoundObserver] = None,
    ) -> Matching:
        """Compute a matching over the request matrix ``weights``.

        ``weights[i][j] > 0`` means input ``i`` requests output ``j``
        (the magnitude is ignored — iSLIP sees only request presence).
        Returns input -> output; commits pointer updates for matches
        made in iteration 1.
        """
        n = self.num_ports
        if len(weights) != n or any(len(row) != n for row in weights):
            raise ValueError(f"weights must be {n}x{n}")

        matching: Matching = {}
        matched_outputs = set()
        for iteration in range(self.iterations):
            # Request: unmatched inputs request all outputs with
            # backlogged VOQs that are still unmatched.
            requests: Dict[int, set] = {}
            for out in range(n):
                if out in matched_outputs:
                    continue
                requesting = {
                    inp
                    for inp in range(n)
                    if inp not in matching and weights[inp][out] > 0
                }
                if requesting:
                    requests[out] = requesting
            if not requests:
                break

            # Grant: each output picks the requesting input at or after
            # its grant pointer (the pointer does not move yet).
            grants: Dict[int, List[int]] = {}
            grant_pairs: List[Tuple[int, int]] = []
            for out, requesting in requests.items():
                inp = self._first_at_or_after(
                    self.grant_pointers[out], requesting
                )
                grants.setdefault(inp, []).append(out)
                grant_pairs.append((out, inp))
            if observer is not None:
                observer(iteration, "grant", grant_pairs)

            # Accept: each granted input picks the granting output at or
            # after its accept pointer; iteration-1 accepts commit both
            # pointers (the desynchronization rule).
            accept_pairs: List[Tuple[int, int]] = []
            made_progress = False
            for inp, granting in grants.items():
                out = self._first_at_or_after(
                    self.accept_pointers[inp], set(granting)
                )
                matching[inp] = out
                matched_outputs.add(out)
                accept_pairs.append((inp, out))
                made_progress = True
                if iteration == 0:
                    self.grant_pointers[out] = (inp + 1) % n
                    self.accept_pointers[inp] = (out + 1) % n
            if observer is not None:
                observer(iteration, "accept", accept_pairs)
            if not made_progress:
                break
        return matching

"""Round-robin arbiter (iSLIP-style pointer arbitration).

Included as a comparison point: Section VII notes that "a single iteration
of iSLIP is similar to the baseline L-2-L LRG" — its pointer update on a
final-stage win composes exactly like the baseline and inherits the same
unfairness, which the ablation benchmarks demonstrate.
"""

from typing import Iterable, Optional

from repro.arbitration.base import Arbiter


class RoundRobinArbiter(Arbiter):
    """A rotating-pointer arbiter over ``num_slots`` requestors.

    The requesting slot at or after the pointer wins; committing a grant
    advances the pointer past the winner (the iSLIP update rule).
    """

    def __init__(self, num_slots: int, start: int = 0) -> None:
        super().__init__(num_slots)
        self._check_slot(start)
        self._pointer = start

    @property
    def pointer(self) -> int:
        """Slot currently holding the highest priority."""
        return self._pointer

    def arbitrate(self, requests: Iterable[int]) -> Optional[int]:
        requesting = set()
        for slot in requests:
            self._check_slot(slot)
            requesting.add(slot)
        if not requesting:
            return None
        for offset in range(self.num_slots):
            slot = (self._pointer + offset) % self.num_slots
            if slot in requesting:
                return slot
        raise AssertionError("unreachable: a requestor must win")

    def update(self, winner: int) -> None:
        self._check_slot(winner)
        self._pointer = (winner + 1) % self.num_slots

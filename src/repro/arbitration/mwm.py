"""Maximum-weight matching oracle for VOQ scheduling quality bounds.

MWM scheduling (match the inputs to outputs maximizing total weight
served — head-of-line age in :class:`repro.switches.VOQSwitch`, i.e.
the oldest-cell-first discipline) is the classical quality upper bound
for input-queued switches: it achieves 100% throughput for any
admissible traffic but is far too slow for hardware — which is exactly
why iSLIP, and in this repo's framing the paper's single-cycle CLRG,
exist.  The oracle lets ``repro compare-schedulers`` place every
practical scheduler between two anchors: round-robin composition at
the bottom and MWM at the top.

The solver is a scipy-free Hungarian algorithm (Jonker-Volgenant style
shortest augmenting paths with dual potentials, O(n^3)).  Weights are
negated into a min-cost assignment on a zero-padded square matrix, and
zero-weight pairs are dropped from the returned matching so only real
requests are ever matched.
"""

from typing import List

from repro.arbitration.matching import Matching, WeightMatrix

__all__ = ["MWMOracle", "solve_assignment"]

_INF = float("inf")


def solve_assignment(cost: List[List[float]]) -> List[int]:
    """Minimum-cost assignment on a square matrix.

    Returns ``assign`` with ``assign[row] = column``.  Classic Hungarian
    with row/column potentials and one shortest-augmenting-path search
    per row; exact on integer inputs (comparisons only, no scaling).
    """
    n = len(cost)
    if n == 0:
        return []
    # 1-based potentials/links; way[j] remembers the previous column on
    # the alternating path that reached column j.
    u = [0.0] * (n + 1)
    v = [0.0] * (n + 1)
    match_col = [0] * (n + 1)  # match_col[j] = row matched to column j
    way = [0] * (n + 1)
    for row in range(1, n + 1):
        match_col[0] = row
        j0 = 0
        minv = [_INF] * (n + 1)
        used = [False] * (n + 1)
        while True:
            used[j0] = True
            i0 = match_col[j0]
            delta = _INF
            j1 = 0
            for j in range(1, n + 1):
                if used[j]:
                    continue
                cur = cost[i0 - 1][j - 1] - u[i0] - v[j]
                if cur < minv[j]:
                    minv[j] = cur
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            for j in range(n + 1):
                if used[j]:
                    u[match_col[j]] += delta
                    v[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if match_col[j0] == 0:
                break
        while j0:
            j1 = way[j0]
            match_col[j0] = match_col[j1]
            j0 = j1
    assign = [0] * n
    for j in range(1, n + 1):
        if match_col[j]:
            assign[match_col[j] - 1] = j - 1
    return assign


class MWMOracle:
    """Stateless maximum-weight matcher over VOQ occupancy matrices.

    Mirrors the :class:`repro.arbitration.ISLIPArbiter` interface
    (``match(weights) -> Dict[input, output]``) so the VOQ switch can
    swap schedulers without caring which family it holds.  Ties between
    equal-weight matchings rotate: each call relabels inputs and outputs
    by an advancing offset before the row-major solve, so the port that
    wins a tie cycles round-robin instead of pinning to index 0 (a fixed
    tie-break starves high-index ports under light symmetric load, where
    nearly every request has weight 1).  The rotation is a permutation,
    so the matching weight is still maximal, and there is no RNG —
    seeded runs stay reproducible.
    """

    def __init__(self, num_ports: int) -> None:
        if num_ports < 1:
            raise ValueError("MWM needs at least one port")
        self.num_ports = num_ports
        self._offset = 0

    def match(self, weights: WeightMatrix, observer=None) -> Matching:
        """Maximum-weight matching over ``weights`` (input -> output).

        ``observer`` is accepted for interface parity with iSLIP and
        ignored — MWM is single-shot, there are no rounds to trace.
        """
        n = self.num_ports
        if len(weights) != n or any(len(row) != n for row in weights):
            raise ValueError(f"weights must be {n}x{n}")
        offset = self._offset
        self._offset = (offset + 1) % n
        if all(weights[i][j] <= 0 for i in range(n) for j in range(n)):
            return {}
        # Negate for min-cost; clamp negatives (absent requests) to 0
        # so they never look attractive.  Rows and columns are rotated
        # by the tie-break offset; the permutation is undone below.
        cost = [
            [
                -float(max(weights[(i + offset) % n][(j + offset) % n], 0))
                for j in range(n)
            ]
            for i in range(n)
        ]
        assign = solve_assignment(cost)
        matching = {}
        for row, col in enumerate(assign):
            inp = (row + offset) % n
            out = (col + offset) % n
            if weights[inp][out] > 0:
                matching[inp] = out
        return matching

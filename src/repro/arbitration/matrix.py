"""Bit-accurate priority-matrix LRG arbiter.

The Swizzle-Switch stores LRG state as *priority bits* distributed over
the cross-points (Fig 6): cross-point (i, j) holds one bit P[i][j]
meaning "input i outranks input j".  Arbitration pulls down the priority
lines of every lower-priority requestor — a requestor wins when no other
requestor outranks it — and the self-updating rule on a grant clears the
winner's row and sets its column (the winner now outranks nobody and is
outranked by everybody: least priority).

This mirrors the hardware bit-for-bit; :class:`MatrixArbiter` behaves
identically to the list-based :class:`~repro.arbitration.lrg.LRGArbiter`
(proven by an equivalence property test), at O(n^2) state like the real
cross-point array.  The list form stays the default for speed; this form
exists for hardware-fidelity checks and for counting the priority bits the
physical model charges area for.
"""

from typing import Iterable, List, Optional, Sequence

from repro.arbitration.base import Arbiter


class MatrixArbiter(Arbiter):
    """LRG arbitration over an explicit antisymmetric priority-bit matrix.

    Invariant (checked by :meth:`validate`): for every pair ``i != j``
    exactly one of P[i][j], P[j][i] is set — the matrix encodes a total
    order, which is what keeps single-cycle arbitration glitch-free.
    """

    def __init__(
        self,
        num_slots: int,
        initial_order: Optional[Sequence[int]] = None,
    ) -> None:
        super().__init__(num_slots)
        if initial_order is None:
            order = list(range(num_slots))
        else:
            order = list(initial_order)
            if sorted(order) != list(range(num_slots)):
                raise ValueError(
                    f"initial_order must be a permutation of 0..{num_slots - 1}"
                )
        rank = {slot: position for position, slot in enumerate(order)}
        # P[i][j] is True when i outranks j (i wins a tie against j).
        self.bits: List[List[bool]] = [
            [
                i != j and rank[i] < rank[j]
                for j in range(num_slots)
            ]
            for i in range(num_slots)
        ]

    # ------------------------------------------------------------------
    # Arbiter interface
    # ------------------------------------------------------------------
    def arbitrate(self, requests: Iterable[int]) -> Optional[int]:
        """The requestor that no other requestor outranks."""
        requesting = set()
        for slot in requests:
            self._check_slot(slot)
            requesting.add(slot)
        if not requesting:
            return None
        for candidate in requesting:
            if not any(
                self.bits[other][candidate]
                for other in requesting
                if other != candidate
            ):
                return candidate
        raise AssertionError("a total order always has a maximum")

    def update(self, winner: int) -> None:
        """Self-updating rule: clear the winner's row, set its column."""
        self._check_slot(winner)
        for other in range(self.num_slots):
            if other == winner:
                continue
            self.bits[winner][other] = False
            self.bits[other][winner] = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def priority_order(self) -> List[int]:
        """Recover the total order (highest priority first)."""
        # An input's rank is the count of inputs outranking it.
        outranked_by = [
            sum(1 for other in range(self.num_slots) if self.bits[other][slot])
            for slot in range(self.num_slots)
        ]
        return sorted(range(self.num_slots), key=lambda s: outranked_by[s])

    def priority_bit_count(self) -> int:
        """Stored priority bits: n(n-1)/2 independent bits in hardware.

        The full matrix holds n^2 bits but antisymmetry means only the
        upper triangle is independent — the figure the cross-point area
        accounting uses.
        """
        return self.num_slots * (self.num_slots - 1) // 2

    def validate(self) -> None:
        """Check the antisymmetric total-order invariant.

        Raises:
            AssertionError: If any pair violates exactly-one-direction.
        """
        for i in range(self.num_slots):
            assert not self.bits[i][i], f"self-priority bit set at {i}"
            for j in range(i + 1, self.num_slots):
                assert self.bits[i][j] != self.bits[j][i], (
                    f"pair ({i},{j}) violates antisymmetry"
                )

"""Weighted LRG (WLRG) arbitration.

WLRG resolves the layer-to-layer unfairness by *holding* the LRG priority
of a winning channel for multiple consecutive grants, in proportion to the
number of requestors the channel currently represents (its *weight*).  A
channel multiplexing four primary inputs then receives four back-to-back
grants before being demoted, matching the bandwidth a flat 2D LRG switch
would give those inputs.

The paper rejects WLRG for hardware: counting parallel requestors in a
single cycle lengthens the arbitration phase, and shipping the weights from
the local switch to the inter-layer switch bloats the L2LC.  It is still
modelled here because Figs 11(a) and 11(c) evaluate its *behaviour* as a
fairness yardstick.
"""

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.arbitration.base import Arbiter
from repro.arbitration.lrg import LRGArbiter


class WLRGArbiter(Arbiter):
    """Weighted LRG arbiter for one inter-layer sub-block.

    Requests carry the channel's current weight (live requestor count as
    computed by the local switch).  On a committed grant the winner's
    served-count increments; the LRG demotion is applied only once the
    channel has been served as many times as its weight, after which the
    served-count resets.
    """

    def __init__(
        self,
        num_slots: int,
        initial_order: Optional[Sequence[int]] = None,
    ) -> None:
        super().__init__(num_slots)
        self.lrg = LRGArbiter(num_slots, initial_order)
        self._served: List[int] = [0] * num_slots

    def served_count(self, slot: int) -> int:
        """Grants the slot has absorbed since its last LRG demotion."""
        self._check_slot(slot)
        return self._served[slot]

    def arbitrate_requests(
        self, requests: Iterable[Tuple[int, int]]
    ) -> Optional[Tuple[int, int]]:
        """Pick a winner among ``(slot, weight)`` requests.

        Selection is plain LRG — the weighting acts through deferred
        priority demotion, not through the comparison itself.
        Returns the winning ``(slot, weight)`` or None.
        """
        best: Optional[Tuple[int, int]] = None
        best_key = 0
        lrg_key = self.lrg._rank
        for slot, weight in requests:
            self._check_slot(slot)
            if weight < 1:
                raise ValueError("weights must be >= 1")
            key = lrg_key[slot]
            if best is None or key < best_key:
                best_key = key
                best = (slot, weight)
        return best

    def commit(self, slot: int, weight: int) -> None:
        """Commit a grant made with the given live weight.

        The slot keeps its LRG priority until it has been served ``weight``
        times; only then is it demoted.  Weights are sampled live at each
        grant, so a draining channel (weight shrinking) is demoted promptly.
        """
        self._check_slot(slot)
        self._served[slot] += 1
        if self._served[slot] >= weight:
            self.lrg.update(slot)
            self._served[slot] = 0

    # ------------------------------------------------------------------
    # Arbiter interface (weight-1 view for generic property tests)
    # ------------------------------------------------------------------
    def arbitrate(self, requests: Iterable[int]) -> Optional[int]:
        winner = self.arbitrate_requests((slot, 1) for slot in requests)
        return None if winner is None else winner[0]

    def update(self, winner: int) -> None:
        self.commit(winner, 1)

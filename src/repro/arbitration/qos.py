"""QoS extension: weighted class counters for bandwidth differentiation.

The Swizzle-Switch family supports quality-of-service arbitration
(Satpathy et al., DAC 2012 — reference [15] of the paper).  CLRG's class
counters extend naturally to QoS: charging input ``i`` a *cost* of
``1/weight_i`` per win instead of 1 makes its long-run share of a
contested output proportional to its weight, while keeping the exact
cross-point structure (counters, priority-select muxes, halving on
saturation).  In hardware the per-input increment step would be a small
programmable constant per cross-point row.

This is an extension beyond the paper (its future-work direction of
integrating QoS into the 3D fabric); it is exercised by
``benchmarks/test_extension_qos.py``.
"""

from typing import List, Optional, Sequence

from repro.arbitration.classes import ClassCounterBank
from repro.arbitration.clrg import CLRGArbiter


class WeightedClassCounterBank(ClassCounterBank):
    """Class counters whose increment is inversely weighted per input.

    Args:
        num_inputs: Number of primary inputs tracked.
        num_classes: Counter range (saturation at ``num_classes - 1``).
        weights: Service weight per input; an input with weight w is
            charged ``1/w`` per win, so its sustainable share of a
            contested output is proportional to w.  Defaults to 1.0
            everywhere (plain CLRG behaviour).
    """

    def __init__(
        self,
        num_inputs: int,
        num_classes: int = 3,
        weights: Optional[Sequence[float]] = None,
    ) -> None:
        super().__init__(num_inputs, num_classes)
        if weights is None:
            weights = [1.0] * num_inputs
        weights = list(weights)
        if len(weights) != num_inputs:
            raise ValueError("need exactly one weight per input")
        if any(w <= 0 for w in weights):
            raise ValueError("weights must be positive")
        self.weights = weights
        # Shadow the integer counters with float costs.
        self._costs: List[float] = [0.0] * num_inputs

    def class_of(self, input_id: int) -> float:  # type: ignore[override]
        """Accumulated (weighted) cost; lower is higher priority."""
        self._check(input_id)
        return self._costs[input_id]

    def counts(self) -> List[float]:  # type: ignore[override]
        return list(self._costs)

    def record_win(self, input_id: int) -> None:
        self._check(input_id)
        cost = 1.0 / self.weights[input_id]
        if self._costs[input_id] + cost > self.max_count:
            self._costs = [value / 2.0 for value in self._costs]
            self._halvings += 1
            if self.on_halve is not None:
                self.on_halve(self._halvings)
        self._costs[input_id] += cost


class QoSCLRGArbiter(CLRGArbiter):
    """A CLRG sub-block arbiter with per-input service weights."""

    def __init__(
        self,
        num_slots: int,
        num_inputs: int,
        weights: Sequence[float],
        num_classes: int = 3,
        initial_order=None,
    ) -> None:
        super().__init__(num_slots, num_inputs, num_classes, initial_order)
        self.counters = WeightedClassCounterBank(
            num_inputs, num_classes, weights
        )

"""Least Recently Granted (LRG) matrix arbiter.

This is the self-updating priority scheme of the 2D Swizzle-Switch: every
output cross-point column stores a priority vector ordering the inputs; the
requesting input with the highest priority (least recently granted) wins,
and on a committed grant the winner drops to the lowest priority.

The arbiter is modelled as an explicit priority order (index 0 = highest
priority), which is exactly the total order the per-cross-point priority
bits encode in hardware.
"""

from typing import Iterable, List, Optional, Sequence

from repro.arbitration.base import Arbiter


class LRGArbiter(Arbiter):
    """An LRG arbiter over ``num_slots`` requestor slots.

    Args:
        num_slots: Number of requestor slots.
        initial_order: Optional explicit initial priority order (highest
            priority first).  Must be a permutation of ``range(num_slots)``.
            Defaults to ascending slot order.  The paper's worked examples
            (Figs 4 and 5) start from specific priority states; exposing the
            initial order lets tests reproduce them exactly.
    """

    def __init__(
        self,
        num_slots: int,
        initial_order: Optional[Sequence[int]] = None,
    ) -> None:
        super().__init__(num_slots)
        if initial_order is None:
            order = list(range(num_slots))
        else:
            order = list(initial_order)
            if sorted(order) != list(range(num_slots)):
                raise ValueError(
                    f"initial_order must be a permutation of 0..{num_slots - 1}"
                )
        self._order: List[int] = order
        # rank[slot] = position in the priority order (0 = highest).
        self._rank: List[int] = [0] * num_slots
        self._recompute_ranks()

    def _recompute_ranks(self) -> None:
        for position, slot in enumerate(self._order):
            self._rank[slot] = position

    @property
    def priority_order(self) -> List[int]:
        """Current priority order, highest priority first (a copy)."""
        return list(self._order)

    def rank(self, slot: int) -> int:
        """Priority rank of a slot (0 = highest priority)."""
        self._check_slot(slot)
        return self._rank[slot]

    def arbitrate(self, requests: Iterable[int]) -> Optional[int]:
        """The requesting slot with the best (lowest) rank, or None."""
        winner: Optional[int] = None
        best_rank = self.num_slots
        for slot in requests:
            self._check_slot(slot)
            if self._rank[slot] < best_rank:
                best_rank = self._rank[slot]
                winner = slot
        return winner

    def update(self, winner: int) -> None:
        """Demote the winner to the lowest priority (most recently granted)."""
        self._check_slot(winner)
        position = self._rank[winner]
        # Shift everything after the winner up one rank; winner to the back.
        order = self._order
        for i in range(position, self.num_slots - 1):
            order[i] = order[i + 1]
            self._rank[order[i]] = i
        order[self.num_slots - 1] = winner
        self._rank[winner] = self.num_slots - 1

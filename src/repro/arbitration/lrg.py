"""Least Recently Granted (LRG) matrix arbiter.

This is the self-updating priority scheme of the 2D Swizzle-Switch: every
output cross-point column stores a priority vector ordering the inputs; the
requesting input with the highest priority (least recently granted) wins,
and on a committed grant the winner drops to the lowest priority.

The priority vector is modelled as a *recency key* per slot: a smaller key
means granted less recently, i.e. higher priority.  Keys start as the
positions of the initial priority order and a grant simply stamps the
winner with the next key, which makes the demotion O(1) while encoding
exactly the same total order as the per-cross-point priority bits do in
hardware.  Keys are always distinct, so comparisons never tie.
"""

from typing import Iterable, List, Optional, Sequence

from repro.arbitration.base import Arbiter


class LRGArbiter(Arbiter):
    """An LRG arbiter over ``num_slots`` requestor slots.

    Args:
        num_slots: Number of requestor slots.
        initial_order: Optional explicit initial priority order (highest
            priority first).  Must be a permutation of ``range(num_slots)``.
            Defaults to ascending slot order.  The paper's worked examples
            (Figs 4 and 5) start from specific priority states; exposing the
            initial order lets tests reproduce them exactly.
    """

    def __init__(
        self,
        num_slots: int,
        initial_order: Optional[Sequence[int]] = None,
    ) -> None:
        super().__init__(num_slots)
        if initial_order is None:
            order = list(range(num_slots))
        else:
            order = list(initial_order)
            if sorted(order) != list(range(num_slots)):
                raise ValueError(
                    f"initial_order must be a permutation of 0..{num_slots - 1}"
                )
        # rank[slot] = recency key; smaller = less recently granted =
        # higher priority.  Only relative order matters to comparisons.
        self._rank: List[int] = [0] * num_slots
        for position, slot in enumerate(order):
            self._rank[slot] = position
        # Next key to stamp a winner with (strictly above all live keys).
        self._stamp = num_slots

    @property
    def priority_order(self) -> List[int]:
        """Current priority order, highest priority first (a copy)."""
        return sorted(range(self.num_slots), key=self._rank.__getitem__)

    def rank(self, slot: int) -> int:
        """Priority rank of a slot (0 = highest priority)."""
        self._check_slot(slot)
        key = self._rank[slot]
        return sum(1 for other in self._rank if other < key)

    def arbitrate(self, requests: Iterable[int]) -> Optional[int]:
        """The requesting slot with the best (lowest) recency key, or None."""
        rank = self._rank
        winner: Optional[int] = None
        best_key = 0
        for slot in requests:
            self._check_slot(slot)
            key = rank[slot]
            if winner is None or key < best_key:
                best_key = key
                winner = slot
        return winner

    def update(self, winner: int) -> None:
        """Demote the winner to the lowest priority (most recently granted)."""
        self._check_slot(winner)
        self._rank[winner] = self._stamp
        self._stamp += 1

"""Age-based (oldest-cell-first) arbitration.

Section VII discusses OCF and age-based arbitration (Abts & Weisser) as
fairness alternatives the paper rejects for hardware: comparing timestamps
across a high-radix switch in a single cycle is prohibitively expensive.
The behavioural model is included so the ablation benchmarks can compare
CLRG's fairness against the (hardware-infeasible) age-based ideal — the
physical cost model intentionally has no entry for it.
"""

from typing import Iterable, Optional, Tuple

from repro.arbitration.base import Arbiter


class AgeArbiter(Arbiter):
    """Grants the request with the largest age (oldest first).

    Requests carry the age of the packet they represent (cycles since
    generation); ties break toward the lowest slot index, mirroring a
    deterministic comparator tree.
    """

    def __init__(self, num_slots: int) -> None:
        super().__init__(num_slots)

    def arbitrate_requests(
        self, requests: Iterable[Tuple[int, int]]
    ) -> Optional[Tuple[int, int]]:
        """Pick a winner among ``(slot, age)`` requests."""
        best: Optional[Tuple[int, int]] = None
        best_key: Optional[Tuple[int, int]] = None
        for slot, age in requests:
            self._check_slot(slot)
            if age < 0:
                raise ValueError("ages must be non-negative")
            key = (-age, slot)
            if best_key is None or key < best_key:
                best_key = key
                best = (slot, age)
        return best

    def commit(self, slot: int, age: int) -> None:
        """Age-based arbitration is stateless: nothing to update."""
        self._check_slot(slot)

    # ------------------------------------------------------------------
    # Arbiter interface (age-0 view for generic property tests)
    # ------------------------------------------------------------------
    def arbitrate(self, requests: Iterable[int]) -> Optional[int]:
        winner = self.arbitrate_requests((slot, 0) for slot in requests)
        return None if winner is None else winner[0]

    def update(self, winner: int) -> None:
        self.commit(winner, 0)

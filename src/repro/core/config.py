"""Configuration of a Hi-Rise switch.

Holds the architectural parameters of Section III: radix ``N``, layer count
``L``, channel multiplicity ``c``, the L2LC allocation policy, and the
inter-layer arbitration scheme.  Derived quantities (switch shapes, slot
counts, vertical bus counts) are computed here so the cycle model and the
physical cost model agree on the geometry by construction.
"""

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.network.port import PortConfig


class AllocationPolicy(str, enum.Enum):
    """How inputs are allocated to layer-to-layer channels (Section III-A)."""

    INPUT_BINNED = "input_binned"
    OUTPUT_BINNED = "output_binned"
    PRIORITY = "priority"


class ArbitrationScheme(str, enum.Enum):
    """Inter-layer sub-block arbitration scheme.

    ``L2L_LRG``, ``WLRG`` and ``CLRG`` are the paper's Section III-B
    schemes.  ``L2L_RR`` (iSLIP-style rotating pointer) and ``AGE``
    (oldest-first, hardware-infeasible at high radix) are the related-work
    comparison points of Section VII, included for ablation studies.

    ``ISLIP`` and ``MWM`` are *virtual-output-queued* schemes (Tiny Tera
    lineage): iterative SLIP with ``islip_iterations`` grant/accept
    rounds, and a maximum-weight-matching oracle used as the scheduling
    quality upper bound.  They run on the input-queued
    :class:`repro.switches.voq.VOQSwitch` rather than the Hi-Rise
    two-phase kernel — build switches through
    :func:`repro.switches.make_switch` to dispatch on the scheme.
    """

    L2L_LRG = "l2l_lrg"
    WLRG = "wlrg"
    CLRG = "clrg"
    L2L_RR = "l2l_rr"
    AGE = "age"
    ISLIP = "islip"
    MWM = "mwm"


#: Schemes scheduled by the VOQ input stage (repro.switches.voq), not by
#: the Hi-Rise two-phase kernel.
VOQ_SCHEMES = frozenset((ArbitrationScheme.ISLIP, ArbitrationScheme.MWM))


@dataclass(frozen=True)
class HiRiseConfig:
    """Architectural parameters of a Hi-Rise switch.

    Attributes:
        radix: Total inputs (= outputs), split evenly across layers.
        layers: Number of stacked silicon layers (paper headline: 4).
        channel_multiplicity: L2LCs between each ordered pair of layers
            (the paper's ``c``; headline configuration uses 4).
        allocation: L2LC allocation policy (default input-binned, which the
            paper implements in its cross-point design).
        arbitration: Inter-layer arbitration scheme (default CLRG).
        num_classes: CLRG class count (counter range); paper default 3.
        islip_iterations: Grant/accept rounds per cycle for the
            ``ISLIP`` scheme (iSLIP(1), iSLIP(2), iSLIP(4), ...);
            ignored by every other scheme.
        port_config: Input-port buffering (4 VCs x 4 flits by default).
        qos_weights: Optional per-input service weights (QoS extension,
            CLRG only): an input with weight w sustains a share of any
            contested output proportional to w.  None (default) gives the
            paper's plain CLRG.
        failed_channels: L2LCs whose TSV bundle is faulty, as
            ``(src_layer, dst_layer, channel)`` triples (robustness
            extension).  The switch never grants a failed channel; under
            binned allocation, flows nominally bound to one are rerouted
            to the next healthy channel toward the same layer.

    Construction also builds hot-path lookup tables (not dataclass
    fields): ``layer_of_port_table`` / ``local_index_table`` (per-port
    layer and local index), ``num_resources`` (size of the flat resource
    id space), ``slot_of_channel_table`` (sub-block slot per channel id)
    and ``resource_key_table`` (id -> tuple key).  The validating methods
    (:meth:`layer_of_port`, :meth:`local_index`, ...) delegate to these
    tables; the cycle kernel indexes them directly.
    """

    radix: int = 64
    layers: int = 4
    channel_multiplicity: int = 4
    allocation: AllocationPolicy = AllocationPolicy.INPUT_BINNED
    arbitration: ArbitrationScheme = ArbitrationScheme.CLRG
    num_classes: int = 3
    islip_iterations: int = 1
    port_config: PortConfig = field(default_factory=PortConfig)
    qos_weights: Optional[Tuple[float, ...]] = None
    failed_channels: Tuple[Tuple[int, int, int], ...] = ()

    def __post_init__(self) -> None:
        if self.layers < 2:
            raise ValueError("Hi-Rise needs at least two layers")
        if self.radix < self.layers:
            raise ValueError("radix must be at least the layer count")
        if self.radix % self.layers != 0:
            raise ValueError(
                f"radix {self.radix} must divide evenly across "
                f"{self.layers} layers"
            )
        if self.channel_multiplicity < 1:
            raise ValueError("channel multiplicity must be >= 1")
        if self.num_classes < 2:
            raise ValueError("CLRG needs at least two classes")
        if self.islip_iterations < 1:
            raise ValueError("iSLIP needs at least one iteration")
        # Normalise string inputs to enum members.
        object.__setattr__(
            self, "allocation", AllocationPolicy(self.allocation)
        )
        object.__setattr__(
            self, "arbitration", ArbitrationScheme(self.arbitration)
        )
        if self.qos_weights is not None:
            if self.arbitration is not ArbitrationScheme.CLRG:
                raise ValueError("QoS weights require CLRG arbitration")
            if len(self.qos_weights) != self.radix:
                raise ValueError(
                    f"need {self.radix} QoS weights, got {len(self.qos_weights)}"
                )
            if any(weight <= 0 for weight in self.qos_weights):
                raise ValueError("QoS weights must be positive")
            object.__setattr__(self, "qos_weights", tuple(self.qos_weights))
        # Normalise: sorted tuple-of-tuples, so two configs with the same
        # fault set compare and hash equal regardless of input ordering.
        failed = tuple(sorted(
            tuple(int(x) for x in entry) for entry in self.failed_channels
        ))
        if len(set(failed)) != len(failed):
            duplicates = sorted({
                entry for entry in failed if failed.count(entry) > 1
            })
            raise ValueError(f"duplicate failed channels: {duplicates}")
        object.__setattr__(self, "failed_channels", failed)
        for src, dst, channel in failed:
            if not 0 <= src < self.layers or not 0 <= dst < self.layers:
                raise ValueError(f"failed channel {src}->{dst} out of range")
            if src == dst:
                raise ValueError("a layer has no L2LC to itself")
            if not 0 <= channel < self.channel_multiplicity:
                raise ValueError(f"channel {channel} out of range")
        for src in range(self.layers):
            for dst in range(self.layers):
                if src == dst:
                    continue
                healthy = sum(
                    1
                    for channel in range(self.channel_multiplicity)
                    if (src, dst, channel) not in failed
                )
                if healthy == 0:
                    raise ValueError(
                        f"every channel {src}->{dst} failed: the switch "
                        "would be disconnected"
                    )
        self._build_lookup_tables()

    def _build_lookup_tables(self) -> None:
        # Construction-time lookup tables backing the hot-path mappings.
        # Validation happens once here; the public methods stay validating
        # for API callers while the cycle kernel indexes the raw tables.
        ppl = self.radix // self.layers
        cmult = self.channel_multiplicity
        object.__setattr__(
            self, "layer_of_port_table",
            tuple(port // ppl for port in range(self.radix)),
        )
        object.__setattr__(
            self, "local_index_table",
            tuple(port % ppl for port in range(self.radix)),
        )
        # Flat resource-id space: intermediate outputs occupy [0, radix)
        # (the id of an intermediate output IS its final output's global
        # port id), L2LCs occupy [radix, num_resources) in
        # (src_layer, dst_layer, channel) row-major order.  Ids for the
        # src == dst diagonal exist but are never requested.
        object.__setattr__(
            self, "num_resources",
            self.radix + self.layers * self.layers * cmult,
        )
        slot_table = []
        key_table: List[Tuple] = [
            ("int", port // ppl, port % ppl) for port in range(self.radix)
        ]
        for src in range(self.layers):
            for dst in range(self.layers):
                for channel in range(cmult):
                    key_table.append(("ch", src, dst, channel))
                    if src == dst:
                        slot_table.append(-1)  # diagonal: never a sub-block slot
                    else:
                        adjusted = src if src < dst else src - 1
                        slot_table.append(adjusted * cmult + channel)
        object.__setattr__(
            self, "slot_of_channel_table", tuple(slot_table)
        )
        object.__setattr__(self, "resource_key_table", tuple(key_table))

    # ------------------------------------------------------------------
    # Scheduling family
    # ------------------------------------------------------------------
    @property
    def uses_voq(self) -> bool:
        """True when the scheme runs on the VOQ input-queued switch."""
        return self.arbitration in VOQ_SCHEMES

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def ports_per_layer(self) -> int:
        """Inputs (= outputs) hosted on each layer (N/L)."""
        return self.radix // self.layers

    @property
    def channels_per_layer(self) -> int:
        """Outgoing L2LCs of one layer: c x (L - 1)."""
        return self.channel_multiplicity * (self.layers - 1)

    @property
    def local_switch_shape(self) -> Tuple[int, int]:
        """(inputs, outputs) of each layer's local switch."""
        return (
            self.ports_per_layer,
            self.ports_per_layer + self.channels_per_layer,
        )

    @property
    def subblock_inputs(self) -> int:
        """Inputs of each inter-layer sub-block: c x (L - 1) + 1."""
        return self.channels_per_layer + 1

    @property
    def subblocks_per_layer(self) -> int:
        """Sub-blocks on each inter-layer switch (one per final output)."""
        return self.ports_per_layer

    @property
    def vertical_bus_count(self) -> int:
        """Total L2LC buses in the stack: c x (L - 1) x L."""
        return self.channels_per_layer * self.layers

    @property
    def inputs_per_channel(self) -> int:
        """Primary inputs pre-assigned to each L2LC under input binning.

        Raises:
            ValueError: If the per-layer port count does not divide evenly
                by the channel multiplicity (binning would be uneven).
        """
        if self.ports_per_layer % self.channel_multiplicity != 0:
            raise ValueError(
                f"{self.ports_per_layer} ports per layer do not bin evenly "
                f"into {self.channel_multiplicity} channels"
            )
        return self.ports_per_layer // self.channel_multiplicity

    # ------------------------------------------------------------------
    # Port <-> layer mapping
    # ------------------------------------------------------------------
    def layer_of_port(self, port: int) -> int:
        """Silicon layer (0-based) hosting the given port.

        Validates ``port`` for API callers; the cycle kernel indexes
        :attr:`layer_of_port_table` directly (validated at construction).
        """
        if not 0 <= port < self.radix:
            raise ValueError(f"port {port} out of range [0, {self.radix})")
        return self.layer_of_port_table[port]

    def local_index(self, port: int) -> int:
        """Index of the port within its layer's local switch.

        Validates ``port`` for API callers; the cycle kernel indexes
        :attr:`local_index_table` directly (validated at construction).
        """
        if not 0 <= port < self.radix:
            raise ValueError(f"port {port} out of range [0, {self.radix})")
        return self.local_index_table[port]

    def global_port(self, layer: int, local_index: int) -> int:
        """Global port id of ``local_index`` on ``layer``."""
        if not 0 <= layer < self.layers:
            raise ValueError(f"layer {layer} out of range")
        if not 0 <= local_index < self.ports_per_layer:
            raise ValueError(f"local index {local_index} out of range")
        return layer * self.ports_per_layer + local_index

    # ------------------------------------------------------------------
    # Inter-layer sub-block slot numbering
    # ------------------------------------------------------------------
    def subblock_slots(self, dst_layer: int) -> List[Tuple[int, int]]:
        """Channel slots of a sub-block on ``dst_layer``.

        Returns the ordered list of ``(src_layer, channel)`` feeding the
        sub-block; the *local* intermediate output occupies the extra slot
        at index :attr:`local_slot`.
        """
        slots: List[Tuple[int, int]] = []
        for src_layer in range(self.layers):
            if src_layer == dst_layer:
                continue
            for channel in range(self.channel_multiplicity):
                slots.append((src_layer, channel))
        return slots

    @property
    def local_slot(self) -> int:
        """Slot index of the local intermediate output in a sub-block."""
        return self.channels_per_layer

    def slot_of_channel(self, dst_layer: int, src_layer: int, channel: int) -> int:
        """Slot index of L2LC (src_layer -> dst_layer, channel)."""
        if src_layer == dst_layer:
            raise ValueError("a layer has no L2LC to itself")
        adjusted = src_layer if src_layer < dst_layer else src_layer - 1
        return adjusted * self.channel_multiplicity + channel

    # ------------------------------------------------------------------
    # Flat resource ids (fast-path cycle kernel)
    # ------------------------------------------------------------------
    def intermediate_resource_id(self, dst_port: int) -> int:
        """Flat resource id of the intermediate output feeding ``dst_port``.

        Intermediate-output ids coincide with global output port ids, so
        this is the identity map on ``[0, radix)`` (validated).
        """
        if not 0 <= dst_port < self.radix:
            raise ValueError(
                f"port {dst_port} out of range [0, {self.radix})"
            )
        return dst_port

    def channel_resource_id(
        self, src_layer: int, dst_layer: int, channel: int
    ) -> int:
        """Flat resource id of L2LC (``src_layer`` -> ``dst_layer``, ``channel``).

        Channel ids are dense in ``[radix, num_resources)``; the
        ``src_layer == dst_layer`` diagonal is representable but never
        granted by the switch.
        """
        if not 0 <= src_layer < self.layers or not 0 <= dst_layer < self.layers:
            raise ValueError(
                f"layer pair {src_layer}->{dst_layer} out of range"
            )
        if not 0 <= channel < self.channel_multiplicity:
            raise ValueError(f"channel {channel} out of range")
        return self.radix + (
            (src_layer * self.layers + dst_layer) * self.channel_multiplicity
            + channel
        )

    def resource_key(self, resource_id: int) -> Tuple:
        """Human-readable key for a flat resource id.

        Returns ``("int", layer, local_output)`` for intermediate outputs
        and ``("ch", src_layer, dst_layer, channel)`` for L2LCs — the
        tuple keys the seed kernel used, kept for probes and reports.
        """
        if not 0 <= resource_id < self.num_resources:
            raise ValueError(
                f"resource id {resource_id} out of range "
                f"[0, {self.num_resources})"
            )
        return self.resource_key_table[resource_id]

    # ------------------------------------------------------------------
    # Reporting helpers
    # ------------------------------------------------------------------
    def configuration_string(self) -> str:
        """Table IV style configuration string, e.g.
        ``[(16x28), 16.(13x1)]x4`` for the 4-channel 4-layer radix 64.
        """
        rows, cols = self.local_switch_shape
        return (
            f"[({rows}x{cols}), {self.subblocks_per_layer}."
            f"({self.subblock_inputs}x1)]x{self.layers}"
        )

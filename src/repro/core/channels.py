"""Layer-to-layer channel (L2LC) allocation policies.

When the channel multiplicity ``c`` is greater than one, a rule is needed
to decide which of the ``c`` channels toward the destination layer an input
uses (Section III-A):

* **input binned** — each input has a fixed channel, interleaved by input
  index (input ``i`` uses channel ``i mod c``), so each L2LC services
  ``N/(L*c)`` pre-assigned inputs;
* **output binned** — the channel is fixed by the destination output's
  local index instead;
* **priority based** — any input may use any free channel; a priority mux
  over all N/L inputs assigns winners to free channels in priority order
  (more flexible under adversarial traffic, but the serialised arbitration
  costs cycle time — the physical model charges for it).
"""

from abc import ABC, abstractmethod

from repro.core.config import AllocationPolicy, HiRiseConfig


class ChannelAllocation(ABC):
    """Strategy mapping a request to the L2LC channel(s) it may use."""

    def __init__(self, config: HiRiseConfig) -> None:
        self.config = config

    @property
    @abstractmethod
    def is_binned(self) -> bool:
        """True when each request maps to exactly one fixed channel."""

    @abstractmethod
    def channel_for(self, local_input: int, dst_output: int) -> int:
        """The fixed channel a request must use (binned policies only).

        Args:
            local_input: Requesting input's index within its layer.
            dst_output: Global destination output port.

        Raises:
            NotImplementedError: For non-binned (priority) allocation.
        """


class InputBinnedAllocation(ChannelAllocation):
    """Fixed channel by input index, interleaved (``i mod c``)."""

    @property
    def is_binned(self) -> bool:
        return True

    def channel_for(self, local_input: int, dst_output: int) -> int:
        return local_input % self.config.channel_multiplicity


class OutputBinnedAllocation(ChannelAllocation):
    """Fixed channel by the destination output's local index."""

    @property
    def is_binned(self) -> bool:
        return True

    def channel_for(self, local_input: int, dst_output: int) -> int:
        local_output = self.config.local_index(dst_output)
        return local_output % self.config.channel_multiplicity


class PriorityAllocation(ChannelAllocation):
    """Any input may use any free channel; assignment is by priority mux.

    The switch model resolves this policy with a per-(layer, destination
    layer) LRG order: requesting inputs are ranked and matched to the free
    channels in order.  ``channel_for`` is therefore undefined here.
    """

    @property
    def is_binned(self) -> bool:
        return False

    def channel_for(self, local_input: int, dst_output: int) -> int:
        raise NotImplementedError(
            "priority allocation has no fixed channel; the switch assigns "
            "free channels in priority order"
        )


def make_allocation(config: HiRiseConfig) -> ChannelAllocation:
    """Instantiate the allocation strategy named in the configuration."""
    policy = config.allocation
    if policy is AllocationPolicy.INPUT_BINNED:
        return InputBinnedAllocation(config)
    if policy is AllocationPolicy.OUTPUT_BINNED:
        return OutputBinnedAllocation(config)
    if policy is AllocationPolicy.PRIORITY:
        return PriorityAllocation(config)
    raise ValueError(f"unknown allocation policy: {policy}")

"""Cycle-accurate model of the Hi-Rise 3D switch (fast-path kernel).

Structure (Section III-A): the N inputs and N outputs are split evenly over
L layers.  Each layer has a *local switch* routing its N/L inputs to N/L
dedicated intermediate outputs (one per final output on the same layer) and
to ``c`` layer-to-layer channels (L2LCs) toward each other layer, and an
*inter-layer switch* of N/L sub-blocks, each arbitrating one final output
among the ``c*(L-1)`` incoming L2LCs plus the local intermediate output.

Arbitration is two-phase but completes in a single cycle (two-phase
clocking, Section IV-C):

* **Phase 1 (local)** — every idle input presents one request (for the
  intermediate output dedicated to a same-layer destination, or for an
  L2LC chosen by the allocation policy); each free local resource picks a
  winner by LRG.  *The local priority vector is not updated yet.*
* **Phase 2 (inter-layer)** — each free final output arbitrates among the
  local winners reaching it (over L2LCs and the local intermediate) using
  the configured scheme (L2L-LRG / WLRG / CLRG).  Only a final-output win
  back-propagates the local LRG update, which is what guarantees
  starvation freedom: a repeatedly losing input keeps its local priority
  while rising at the inter-layer switch.

A winning packet locks its whole path — input port, local resource (L2LC or
intermediate output), and final output — until its tail flit transfers, and
data moves end-to-end in one cycle per flit, exactly like the flat switch.

**Fast-path representation.**  Resources are flat integer ids
(``repro.core.config`` builds the tables): an intermediate output's id is
its final output's global port id (``[0, radix)``); L2LC ids are dense in
``[radix, num_resources)`` in ``(src_layer, dst_layer, channel)`` row-major
order.  ``resource_owner`` is a plain list indexed by id (``-1`` = free),
cooling state is per-id/per-port bytearrays cleared incrementally, and the
per-(port, destination) resource an arbitration request would occupy is
precomputed at construction, so the viability check allocates nothing per
cycle.  The arbitration *decisions* are bit-identical to the frozen seed
kernel (:mod:`repro.core.reference`), enforced by
``tests/core/test_golden_equivalence.py``.
"""

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.arbitration.age import AgeArbiter
from repro.arbitration.clrg import CLRGArbiter
from repro.arbitration.lrg import LRGArbiter
from repro.arbitration.round_robin import RoundRobinArbiter
from repro.arbitration.wlrg import WLRGArbiter
from repro.core.channels import make_allocation
from repro.core.config import ArbitrationScheme, HiRiseConfig
from repro.faults import FaultCursor, FaultSchedule, apply_fault_events
from repro.network.engine import SwitchModel
from repro.network.flit import Flit
from repro.network.packet import Packet
from repro.network.port import InputPort
from repro.obs.trace import (
    CLRG_HALVE,
    COOL,
    EJECT,
    P1_GRANT,
    P2_BLOCK,
    P2_GRANT,
    REASON_CHANNEL_FAILED,
    REASON_OUTPUT_BUSY,
    REASON_OUTPUT_COOLING,
    REASON_RESOURCE_BUSY,
    REASON_RESOURCE_COOLING,
    VIA_BLOCK,
)
from repro.obs.tracebin import (
    _T_COOL,
    _T_EJECT,
    _T_INJECT,
    _T_INJECT1,
    _T_P1,
    _T_P2,
    _T_VIA,
)


def _halve_hook(tracer, output: int):
    """CLRG counter-bank callback: records a halving against ``output``."""

    def on_halve(halvings: int) -> None:
        tracer.emit(CLRG_HALVE, output, halvings)

    return on_halve


@dataclass(slots=True)
class _LocalWin:
    """Outcome of one phase-1 (local switch) arbitration."""

    input_port: int          # global id of the winning primary input
    dst_output: int          # global final output it requests
    weight: int              # live requestor count (for WLRG)
    resource: int            # flat id of the resource this winner occupies
    local_arbiter: LRGArbiter
    local_slot: int          # slot to update in the local arbiter on a win
    age: int = 0             # head-flit wait in cycles (for AGE arbitration)


class _BinnedViability:
    """Closure-free head-flit viability check for binned allocation.

    One instance per input port, built at construction: ``rid_of_dst``
    maps every destination to the single flat resource id a request from
    this port would occupy (the dedicated intermediate output for
    same-layer traffic, the failure-remapped binned L2LC otherwise).
    Calling the instance allocates nothing — it replaces the two nested
    closures the seed kernel rebuilt for every port on every cycle.
    """

    __slots__ = ("switch", "rid_of_dst")

    def __init__(self, switch: "HiRiseSwitch", rid_of_dst: Tuple[int, ...]):
        self.switch = switch
        self.rid_of_dst = rid_of_dst

    def __call__(self, flit: Flit) -> bool:
        sw = self.switch
        dst = flit.dst
        if sw.output_owner[dst] is not None or sw._out_cooling[dst]:
            return False
        rid = self.rid_of_dst[dst]
        return sw.resource_owner[rid] < 0 and not sw._res_cooling[rid]


class _PriorityViability:
    """Closure-free head-flit viability check for priority allocation.

    ``rids_of_dst`` maps every destination to the tuple of resource ids
    any of which could carry the request: a single intermediate-output id
    for same-layer traffic, the healthy L2LC ids toward the destination
    layer (in channel order) otherwise.
    """

    __slots__ = ("switch", "rids_of_dst")

    def __init__(
        self, switch: "HiRiseSwitch", rids_of_dst: Tuple[Tuple[int, ...], ...]
    ):
        self.switch = switch
        self.rids_of_dst = rids_of_dst

    def __call__(self, flit: Flit) -> bool:
        sw = self.switch
        dst = flit.dst
        if sw.output_owner[dst] is not None or sw._out_cooling[dst]:
            return False
        owner = sw.resource_owner
        cooling = sw._res_cooling
        for rid in self.rids_of_dst[dst]:
            if owner[rid] < 0 and not cooling[rid]:
                return True
        return False


class HiRiseSwitch(SwitchModel):
    """Cycle-accurate Hi-Rise switch (optimized fast-path kernel).

    Args:
        config: Architectural parameters (radix, layers, channel
            multiplicity, allocation policy, arbitration scheme).

    Public state (kept from the seed kernel, re-keyed to flat ids):
    ``resource_owner`` is a list indexed by flat resource id (``-1`` =
    free), ``output_owner`` a list indexed by output port (``None`` =
    free), ``connections`` a dict ``input -> (resource_id, output)``,
    ``grant_cycle`` a dict ``input -> cycle its live path was granted``.
    The per-resource arbiters remain tuple-keyed dictionaries
    (``int_arbiters``, ``chan_arbiters``, ``pair_arbiters``,
    ``subblock_arbiters``) so tests and walkthroughs can seed specific
    priority states.

    Tracing: pass a :class:`repro.obs.SwitchTracer` as ``tracer`` to
    record cycle-level events (grants, blocks, cooldowns, CLRG
    halvings).  The tracer only observes — traced runs are bit-identical
    to untraced runs — and with ``tracer=None`` (the default) the cycle
    kernel pays exactly one predictable branch per cycle.

    Fault injection: pass a :class:`repro.faults.FaultSchedule` as
    ``faults`` to apply scripted/stochastic mid-run faults (channel
    failure/repair, stuck inputs, CLRG corruption).  Events due at a
    cycle are applied at the very start of ``step()``, before any
    transmit or arbitration, via the shared
    :func:`repro.faults.apply_fault_events` hook — identical in the
    reference kernel, so faulted runs stay bit-identical across kernels.
    ``faults=None`` (the default) adds one predictable branch per cycle.
    """

    def __init__(
        self,
        config: Optional[HiRiseConfig] = None,
        tracer: Optional[object] = None,
        faults: Optional[FaultSchedule] = None,
        invariants: Optional[object] = None,
        perf: Optional[object] = None,
    ) -> None:
        self.config = config or HiRiseConfig()
        cfg = self.config
        self.num_ports = cfg.radix
        self.allocation = make_allocation(cfg)
        self.ports: List[InputPort] = [
            InputPort(i, cfg.port_config) for i in range(cfg.radix)
        ]
        # Per-port source queues, pre-resolved: inject() appends directly.
        self._queues = [port.source_queue for port in self.ports]

        ports_per_layer = cfg.ports_per_layer
        # Phase-1 arbiters, all over local input indices.
        self.int_arbiters: Dict[Tuple[int, int], LRGArbiter] = {
            (layer, j): LRGArbiter(ports_per_layer)
            for layer in range(cfg.layers)
            for j in range(ports_per_layer)
        }
        self.chan_arbiters: Dict[Tuple[int, int, int], LRGArbiter] = {}
        self.pair_arbiters: Dict[Tuple[int, int], LRGArbiter] = {}
        for src in range(cfg.layers):
            for dst in range(cfg.layers):
                if src == dst:
                    continue
                self.pair_arbiters[(src, dst)] = LRGArbiter(ports_per_layer)
                for channel in range(cfg.channel_multiplicity):
                    self.chan_arbiters[(src, dst, channel)] = LRGArbiter(
                        ports_per_layer
                    )

        # Phase-2 arbiters: one per final output (inter-layer sub-block).
        self.subblock_arbiters: Dict[int, object] = {
            output: self._make_subblock_arbiter() for output in range(cfg.radix)
        }

        # Path state, flat-indexed.
        self.resource_owner: List[int] = [-1] * cfg.num_resources
        self.output_owner: List[Optional[int]] = [None] * cfg.radix
        # input -> (resource_id, output) of its live connection.
        self.connections: Dict[int, Tuple[int, int]] = {}
        # input -> cycle its live (or most recent) path was granted.
        self.grant_cycle: Dict[int, int] = {}
        self._arb_cycle = -1
        # Cooling bitsets: paths whose tail transferred this cycle
        # (arbitration blackout), cleared incrementally from
        # _cooling_paths at the start of the next cycle.
        self._in_cooling = bytearray(cfg.radix)
        self._out_cooling = bytearray(cfg.radix)
        self._res_cooling = bytearray(cfg.num_resources)
        # Diagonal (src == dst) channel ids are never requested in a
        # healthy switch; permanently marking them as cooling turns them
        # into dead sentinels the binned tables can point at when every
        # channel toward a destination layer has failed mid-run (they
        # are never in _cooling_paths, so the bits are never cleared).
        for layer in range(cfg.layers):
            for channel in range(cfg.channel_multiplicity):
                self._res_cooling[
                    cfg.channel_resource_id(layer, layer, channel)
                ] = 1
        self._cooling_paths: List[Tuple[int, int, int]] = []
        # L2LCs with faulty TSV bundles: never granted (robustness ext.).
        self.failed_channels = frozenset(cfg.failed_channels)
        # Stuck inputs (dynamic faults): masked from arbitration via
        # _arb_ports, which aliases self.ports until a fault narrows it.
        self.stuck_inputs: set = set()
        self._arb_ports: List[InputPort] = self.ports
        self._fault_cursor = FaultCursor(faults) if faults is not None else None

        self._build_fast_tables()

        # Opt-in observability, wired entirely at construction so the
        # untraced hot loop carries no tracing state or branches.
        self._tracer = tracer
        if tracer is not None:
            tracer.bind(self)
            # Shadow the injection methods on the instance: injections
            # are traced without any check on the untraced path.  Binary
            # tracers get the deferred batch-capture step (timeline of
            # per-cycle references, expanded to columns off the hot
            # loop); JSONL tracers keep the per-event emit path.
            if getattr(tracer, "batch_capture", False):
                self.inject = self._inject_traced_bin  # type: ignore[method-assign]
                self.inject_many = self._inject_many_traced_bin  # type: ignore[method-assign]
                self._traced_step = self._step_traced_bin
                self._p2_grants: List[Tuple[int, int, int]] = []
                self._establish = (  # type: ignore[method-assign]
                    self._establish_traced_clrg if self._is_clrg
                    else self._establish_traced_plain
                )
            else:
                self.inject = self._inject_traced  # type: ignore[method-assign]
                self.inject_many = self._inject_many_traced  # type: ignore[method-assign]
                self._traced_step = self._step_traced
            for output, arbiter in self.subblock_arbiters.items():
                counters = getattr(arbiter, "counters", None)
                if counters is not None:
                    counters.on_halve = _halve_hook(tracer, output)

        # Opt-in phase-level performance counters (repro.obs.perf): the
        # counters only read the monotonic clock, so attached runs stay
        # bit-identical.  step() dispatches to _step_perf, which times
        # one cycle in every perf.stride phase-by-phase and runs the
        # untimed twin otherwise.  Injection is timed by shadowing the
        # instance methods — unless a tracer already owns them, in which
        # case injection stays traced and inject time is not attributed.
        self._perf = perf
        if perf is not None:
            perf.bind(self)
            if tracer is None:
                self.inject = self._inject_perf  # type: ignore[method-assign]
                self.inject_many = self._inject_many_perf  # type: ignore[method-assign]
            elif hasattr(tracer, "perf"):
                # Batch-capture tracers expose a perf slot: their
                # deferred column expansion is timed as "trace_drain".
                tracer.perf = perf

        # Opt-in runtime invariant verification (repro.check): binds
        # after the tracer so its injection counting wraps whichever
        # inject the switch ends up with; like tracing, it only
        # observes — checked runs are bit-identical to unchecked runs.
        self._invariants = invariants
        if invariants is not None:
            invariants.bind(self)

    def _build_fast_tables(self) -> None:
        """Precompute the per-port request/viability tables (hot path)."""
        cfg = self.config
        layers = cfg.layers
        cmult = cfg.channel_multiplicity
        layer_of = cfg.layer_of_port_table
        local_of = cfg.local_index_table

        # (src_layer, dst_layer) -> healthy channel indices, channel order.
        healthy: Dict[int, Tuple[int, ...]] = {}
        for src in range(layers):
            for dst in range(layers):
                if src == dst:
                    continue
                healthy[src * layers + dst] = tuple(
                    channel for channel in range(cmult)
                    if (src, dst, channel) not in self.failed_channels
                )
        self._healthy_channels = healthy
        # (src_layer, dst_layer) packed -> healthy L2LC ids, channel order.
        self._healthy_rids = {
            pair: tuple(
                cfg.channel_resource_id(pair // layers, pair % layers, ch)
                for ch in channels
            )
            for pair, channels in healthy.items()
        }
        # Decode table: channel rid - radix -> (src_layer, dst_layer, channel).
        self._chan_of_rid = tuple(
            (index // (layers * cmult),
             (index // cmult) % layers,
             index % cmult)
            for index in range(layers * layers * cmult)
        )

        # Per-port scratch: head-flit age of this cycle's candidate.
        # Only the AGE scheme consumes ages, so tracking is gated.
        self._ages = [0] * cfg.radix
        self._track_ages = cfg.arbitration is ArbitrationScheme.AGE
        # Reused by _arbitrate (see there for the staleness argument).
        self._candidate_vc = [0] * cfg.radix

        # Per-scheme sub-block implementation, resolved once.
        self._is_clrg = cfg.arbitration is ArbitrationScheme.CLRG
        if cfg.arbitration in (
            ArbitrationScheme.L2L_LRG, ArbitrationScheme.L2L_RR
        ):
            self._subblock_pick = self._subblock_slot_based
        elif cfg.arbitration is ArbitrationScheme.AGE:
            self._subblock_pick = self._subblock_age
        elif cfg.arbitration is ArbitrationScheme.WLRG:
            self._subblock_pick = self._subblock_wlrg
        else:
            self._subblock_pick = self._subblock_clrg

        # Per-port viability objects (single allocation, at construction).
        self._viability: List[object] = []
        if self.allocation.is_binned:
            # A destination layer whose channels have all failed (only
            # possible under dynamic faults) maps to the src layer's
            # diagonal sentinel id: permanently cooling, so the viability
            # check rejects it with zero extra hot-path branches.
            dead_rid = [
                cfg.channel_resource_id(layer, layer, 0)
                for layer in range(layers)
            ]
            for port in range(cfg.radix):
                src_layer = layer_of[port]
                local_input = local_of[port]
                rid_of_dst = []
                for dst in range(cfg.radix):
                    if layer_of[dst] == src_layer:
                        rid_of_dst.append(dst)
                    else:
                        channel = self._healthy_channel_or_none(
                            src_layer, layer_of[dst],
                            self.allocation.channel_for(local_input, dst),
                        )
                        if channel is None:
                            rid_of_dst.append(dead_rid[src_layer])
                        else:
                            rid_of_dst.append(cfg.channel_resource_id(
                                src_layer, layer_of[dst], channel
                            ))
                self._viability.append(
                    _BinnedViability(self, tuple(rid_of_dst))
                )
            # Per-port request resource table, shared with phase 1.
            self._request_rid = [
                viability.rid_of_dst for viability in self._viability
            ]
        else:
            for port in range(cfg.radix):
                src_layer = layer_of[port]
                rids_of_dst = []
                for dst in range(cfg.radix):
                    if layer_of[dst] == src_layer:
                        rids_of_dst.append((dst,))
                    else:
                        rids_of_dst.append(
                            self._healthy_rids[src_layer * layers + layer_of[dst]]
                        )
                self._viability.append(
                    _PriorityViability(self, tuple(rids_of_dst))
                )
            self._request_rid = None

    def _make_subblock_arbiter(self):
        cfg = self.config
        slots = cfg.subblock_inputs
        if cfg.arbitration is ArbitrationScheme.L2L_LRG:
            return LRGArbiter(slots)
        if cfg.arbitration is ArbitrationScheme.WLRG:
            return WLRGArbiter(slots)
        if cfg.arbitration is ArbitrationScheme.CLRG:
            if cfg.qos_weights is not None:
                from repro.arbitration.qos import QoSCLRGArbiter

                return QoSCLRGArbiter(
                    slots, cfg.radix, cfg.qos_weights, cfg.num_classes
                )
            return CLRGArbiter(slots, cfg.radix, cfg.num_classes)
        if cfg.arbitration is ArbitrationScheme.L2L_RR:
            return RoundRobinArbiter(slots)
        if cfg.arbitration is ArbitrationScheme.AGE:
            return AgeArbiter(slots)
        raise ValueError(f"unknown arbitration scheme: {cfg.arbitration}")

    def healthy_channel(self, src_layer: int, dst_layer: int, nominal: int) -> int:
        """Remap a binned channel choice around failed TSV bundles.

        Returns the nominal channel when healthy, otherwise the next
        healthy channel toward the same destination layer (configuration
        validation guarantees one exists).
        """
        c = self.config.channel_multiplicity
        for offset in range(c):
            channel = (nominal + offset) % c
            if (src_layer, dst_layer, channel) not in self.failed_channels:
                return channel
        raise AssertionError("config validation guarantees a healthy channel")

    def _healthy_channel_or_none(
        self, src_layer: int, dst_layer: int, nominal: int
    ) -> Optional[int]:
        """Like :meth:`healthy_channel`, but None when the pair is dead.

        Dynamic faults (unlike static config validation) may fail every
        channel between a layer pair; table builds use this variant so a
        partition degrades the switch instead of crashing it.
        """
        c = self.config.channel_multiplicity
        for offset in range(c):
            channel = (nominal + offset) % c
            if (src_layer, dst_layer, channel) not in self.failed_channels:
                return channel
        return None

    def _refresh_fault_state(self) -> None:
        """Rebuild fault-dependent state after channel/input events.

        Called by :func:`repro.faults.apply_fault_events` between cycles
        (start of ``step()``), where a wholesale table rebuild is safe:
        ``_ages`` and ``_candidate_vc`` are written before they are read
        each cycle, and fault events are rare enough that the O(radix^2)
        rebuild cost never shows on the hot path.
        """
        self._build_fast_tables()
        if self.stuck_inputs:
            stuck = self.stuck_inputs
            self._arb_ports = [
                port for port in self.ports if port.port_id not in stuck
            ]
        else:
            self._arb_ports = self.ports

    def busy_resources(self) -> List[Tuple]:
        """Tuple keys of every currently owned resource (for probes).

        Keys follow the seed kernel's convention:
        ``("int", layer, local_output)`` / ``("ch", src, dst, channel)``.
        """
        key_table = self.config.resource_key_table
        return [
            key_table[rid]
            for rid, owner in enumerate(self.resource_owner)
            if owner >= 0
        ]

    # ------------------------------------------------------------------
    # SwitchModel interface
    # ------------------------------------------------------------------
    def inject(self, packet: Packet) -> None:
        src = packet.src
        if not 0 <= src < self.num_ports:
            raise ValueError(f"source port {src} out of range")
        if not 0 <= packet.dst < self.num_ports:
            raise ValueError(f"destination port {packet.dst} out of range")
        # Inlined SourceQueue.append_packet (hot injection path).
        queue = self._queues[src]
        queue._packets.append(packet)
        queue._pending_flits += packet.num_flits

    def inject_many(self, packets: Iterable[Packet]) -> int:
        """Inject a batch of packets; returns how many were injected.

        Equivalent to calling :meth:`inject` per packet, without the
        per-packet call overhead (the injection side of the cycle kernel).
        """
        num_ports = self.num_ports
        queues = self._queues
        count = 0
        for packet in packets:
            src = packet.src
            if not 0 <= src < num_ports:
                raise ValueError(f"source port {src} out of range")
            if not 0 <= packet.dst < num_ports:
                raise ValueError(f"destination port {packet.dst} out of range")
            queue = queues[src]
            queue._packets.append(packet)
            queue._pending_flits += packet.num_flits
            count += 1
        return count

    def step(self, cycle: int) -> List[Flit]:
        if self._perf is not None:
            return self._step_perf(cycle)
        if self._tracer is not None:
            return self._traced_step(cycle)
        # Scheduled faults land before anything else in the cycle, so a
        # channel failing at cycle k is masked from cycle k's arbitration
        # (its in-flight packet, if any, still quiesces via transmit).
        cursor = self._fault_cursor
        if cursor is not None:
            due = cursor.take(cycle)
            if due:
                apply_fault_events(self, due)
        # Paths released by a tail last cycle carried data on their wires,
        # so they could not also arbitrate that cycle: every packet pays
        # one arbitration cycle ("arbitrate or transmit in a single
        # cycle").  Clear their cooling flags incrementally.
        paths = self._cooling_paths
        if paths:
            in_cooling = self._in_cooling
            out_cooling = self._out_cooling
            res_cooling = self._res_cooling
            for src, output, rid in paths:
                in_cooling[src] = 0
                out_cooling[output] = 0
                res_cooling[rid] = 0
            paths.clear()
        ejected = self._transmit_and_refill(cycle)
        self._arbitrate(cycle)
        if self._invariants is not None:
            self._invariants.after_step(self, cycle, ejected)
        return ejected

    def _step_perf(self, cycle: int) -> List[Flit]:
        """Perf-counting step: phase-time one cycle in every stride.

        Unsampled cycles run the untimed twin (zero clock reads);
        sampled cycles run transmit and refill as *separate* passes —
        equivalent to the fused scan, see :meth:`_transmit_and_refill` —
        with a monotonic read at each phase boundary.  Traced sampled
        cycles are attributed whole (as ``step``) rather than split,
        since the traced twins interleave capture with every phase.
        """
        perf = self._perf
        perf.cycles_total += 1
        if cycle % perf.stride:
            return self._step_unsampled(cycle)
        perf.cycles_sampled += 1
        ns = time.perf_counter_ns
        if self._tracer is not None:
            t0 = ns()
            ejected = self._traced_step(cycle)
            perf.add("step", ns() - t0, len(ejected))
            return ejected
        cursor = self._fault_cursor
        if cursor is not None:
            due = cursor.take(cycle)
            if due:
                apply_fault_events(self, due)
        paths = self._cooling_paths
        if paths:
            in_cooling = self._in_cooling
            out_cooling = self._out_cooling
            res_cooling = self._res_cooling
            for src, output, rid in paths:
                in_cooling[src] = 0
                out_cooling[output] = 0
                res_cooling[rid] = 0
            paths.clear()
        t1 = ns()
        ejected = self._transmit_pass(cycle)
        t2 = ns()
        self._refill_pass(cycle)
        t3 = ns()
        self._arb_cycle = cycle
        candidate_vcs = self._candidate_vc
        local_winners = self._phase1_local(candidate_vcs, cycle)
        t4 = ns()
        self._phase2_interlayer(local_winners, candidate_vcs)
        t5 = ns()
        perf.add("transmit", t2 - t1, len(ejected))
        perf.add("refill", t3 - t2)
        perf.add("arbitrate", t4 - t3, len(local_winners))
        perf.add("commit", t5 - t4)
        if self._invariants is not None:
            self._invariants.after_step(self, cycle, ejected)
        return ejected

    def _step_unsampled(self, cycle: int) -> List[Flit]:
        # Twin of the untimed step body (step() minus the dispatches).
        if self._tracer is not None:
            return self._traced_step(cycle)
        cursor = self._fault_cursor
        if cursor is not None:
            due = cursor.take(cycle)
            if due:
                apply_fault_events(self, due)
        paths = self._cooling_paths
        if paths:
            in_cooling = self._in_cooling
            out_cooling = self._out_cooling
            res_cooling = self._res_cooling
            for src, output, rid in paths:
                in_cooling[src] = 0
                out_cooling[output] = 0
                res_cooling[rid] = 0
            paths.clear()
        ejected = self._transmit_and_refill(cycle)
        self._arbitrate(cycle)
        if self._invariants is not None:
            self._invariants.after_step(self, cycle, ejected)
        return ejected

    def _inject_perf(self, packet: Packet) -> None:
        perf = self._perf
        start = time.perf_counter_ns()
        HiRiseSwitch.inject(self, packet)
        perf.add("inject", time.perf_counter_ns() - start, 1)

    def _inject_many_perf(self, packets: Iterable[Packet]) -> int:
        perf = self._perf
        start = time.perf_counter_ns()
        count = HiRiseSwitch.inject_many(self, packets)
        perf.add("inject", time.perf_counter_ns() - start, count)
        return count

    def _transmit_and_refill(self, cycle: int) -> List[Flit]:
        # Transmit and refill in one scan.  Both touch only per-port state
        # (transmit additionally tears down global path state, which no
        # other port's transmit or refill reads), so per-port fusion is
        # equivalent to the seed's transmit-all-then-refill-all ordering.
        ejected: List[Flit] = []
        connections = self.connections
        resource_owner = self.resource_owner
        output_owner = self.output_owner
        in_cooling = self._in_cooling
        out_cooling = self._out_cooling
        res_cooling = self._res_cooling
        cooling_paths = self._cooling_paths
        for port in self.ports:
            active = port.active_vc
            if active is not None:
                vc = port.vcs[active]
                fifo = vc._fifo
                if fifo:
                    # Inlined port.transmit() (preconditions just checked).
                    flit = fifo.popleft()
                    port._refill_blocked = False
                    flit.ejected_cycle = cycle
                    ejected.append(flit)
                    if flit.seq == flit.num_flits - 1:  # tail: tear down
                        if not fifo:
                            vc._owner_packet = None
                        port.active_vc = None
                        src = flit.src
                        rid, output = connections.pop(src)
                        resource_owner[rid] = -1
                        output_owner[output] = None
                        in_cooling[src] = 1
                        out_cooling[output] = 1
                        res_cooling[rid] = 1
                        cooling_paths.append((src, output, rid))
            # A blocked port's VC state cannot have changed since its last
            # failed refill (the flag clears when a flit pops); skip it.
            if port._refill_blocked:
                continue
            # Inlined port.refill(cycle).
            queue = port.source_queue
            flits = queue._flits
            if not flits:
                packets = queue._packets
                if not packets:
                    continue
                flits.extend(packets.popleft().to_flits())
            front = flits[0]
            if front.seq == 0:
                # Head flit: first free VC (a free VC is always empty).
                for idx, cand in enumerate(port.vcs):
                    if cand._owner_packet is None and len(cand._fifo) < cand.depth:
                        flits.popleft()
                        queue._pending_flits -= 1
                        front.injected_cycle = cycle
                        cand._owner_packet = front.packet_id
                        cand._fifo.append(front)
                        port._refill_vc = idx
                        break
                else:
                    port._refill_blocked = True
            else:
                # Body/tail flit: only its packet's owner VC may take it.
                cand = port.vcs[port._refill_vc]
                if cand._owner_packet != front.packet_id:
                    for idx, other in enumerate(port.vcs):
                        if other._owner_packet == front.packet_id:
                            port._refill_vc = idx
                            cand = other
                            break
                    else:
                        port._refill_blocked = True
                        continue
                if len(cand._fifo) < cand.depth:
                    flits.popleft()
                    queue._pending_flits -= 1
                    front.injected_cycle = cycle
                    cand._fifo.append(front)
                else:
                    port._refill_blocked = True
        return ejected

    def _transmit_pass(self, cycle: int) -> List[Flit]:
        # Transmit half of _transmit_and_refill, as its own scan so
        # sampled perf cycles can put a clock read between the phases.
        # Per-port fusion is equivalent to transmit-all-then-refill-all
        # (see _transmit_and_refill), so the split direction holds too.
        ejected: List[Flit] = []
        connections = self.connections
        resource_owner = self.resource_owner
        output_owner = self.output_owner
        in_cooling = self._in_cooling
        out_cooling = self._out_cooling
        res_cooling = self._res_cooling
        cooling_paths = self._cooling_paths
        for port in self.ports:
            active = port.active_vc
            if active is None:
                continue
            vc = port.vcs[active]
            fifo = vc._fifo
            if not fifo:
                continue
            flit = fifo.popleft()
            port._refill_blocked = False
            flit.ejected_cycle = cycle
            ejected.append(flit)
            if flit.seq == flit.num_flits - 1:  # tail: tear down
                if not fifo:
                    vc._owner_packet = None
                port.active_vc = None
                src = flit.src
                rid, output = connections.pop(src)
                resource_owner[rid] = -1
                output_owner[output] = None
                in_cooling[src] = 1
                out_cooling[output] = 1
                res_cooling[rid] = 1
                cooling_paths.append((src, output, rid))
        return ejected

    def _refill_pass(self, cycle: int) -> None:
        # Refill half of _transmit_and_refill (sampled perf cycles).
        for port in self.ports:
            if port._refill_blocked:
                continue
            queue = port.source_queue
            flits = queue._flits
            if not flits:
                packets = queue._packets
                if not packets:
                    continue
                flits.extend(packets.popleft().to_flits())
            front = flits[0]
            if front.seq == 0:
                for idx, cand in enumerate(port.vcs):
                    if cand._owner_packet is None and len(cand._fifo) < cand.depth:
                        flits.popleft()
                        queue._pending_flits -= 1
                        front.injected_cycle = cycle
                        cand._owner_packet = front.packet_id
                        cand._fifo.append(front)
                        port._refill_vc = idx
                        break
                else:
                    port._refill_blocked = True
            else:
                cand = port.vcs[port._refill_vc]
                if cand._owner_packet != front.packet_id:
                    for idx, other in enumerate(port.vcs):
                        if other._owner_packet == front.packet_id:
                            port._refill_vc = idx
                            cand = other
                            break
                    else:
                        port._refill_blocked = True
                        continue
                if len(cand._fifo) < cand.depth:
                    flits.popleft()
                    queue._pending_flits -= 1
                    front.injected_cycle = cycle
                    cand._fifo.append(front)
                else:
                    port._refill_blocked = True

    def occupancy(self) -> int:
        return sum(port.total_occupancy() for port in self.ports)

    # ------------------------------------------------------------------
    # Arbitration (two phases within one cycle)
    # ------------------------------------------------------------------
    def _arbitrate(self, cycle: int) -> None:
        # Persistent per-port buffer: slot i holds the candidate VC of
        # port i *for the cycle the port last requested in*.  Phase 2 only
        # reads ports that won phase 1 this cycle, so stale entries are
        # never observed and the buffer needs no clearing.
        self._arb_cycle = cycle
        candidate_vcs = self._candidate_vc
        local_winners = self._phase1_local(candidate_vcs, cycle)
        self._phase2_interlayer(local_winners, candidate_vcs)

    def _phase1_local(
        self, candidate_vcs: List[int], cycle: int,
        blocked: Optional[List[Tuple[int, int, int]]] = None,
    ) -> Dict[int, _LocalWin]:
        """Collect requests and run every free local resource's arbitration.

        ``blocked`` (binary-traced steps only) collects one
        ``(port, dst, reason)`` entry per idle port that had head flits
        but no viable request — the ``via_block`` events — fused into
        the request scan so the traced path never re-derives viability.
        Untraced and JSONL-traced calls pass ``None`` and pay only this
        default argument.
        """
        cfg = self.config
        layers = cfg.layers
        ports_per_layer = cfg.ports_per_layer
        layer_of = cfg.layer_of_port_table
        local_of = cfg.local_index_table
        in_cooling = self._in_cooling
        viability = self._viability
        ages = self._ages
        track_ages = self._track_ages
        binned = self.allocation.is_binned
        request_rid = self._request_rid
        output_owner = self.output_owner
        out_cooling = self._out_cooling
        resource_owner = self.resource_owner
        res_cooling = self._res_cooling
        num_vcs = cfg.port_config.num_vcs

        # Requests grouped by the flat id of the resource they contend
        # for (pair_requests by packed (src_layer, dst_layer) since the
        # priority mux assigns channels after ranking).
        int_requests: Dict[int, List[int]] = {}
        chan_requests: Dict[int, List[Tuple[int, int]]] = {}
        pair_requests: Dict[int, List[Tuple[int, int]]] = {}

        # _arb_ports aliases self.ports until a stuck-input fault
        # narrows it; stuck ports never present requests.
        for port in self._arb_ports:
            port_id = port.port_id
            if in_cooling[port_id] or port.active_vc is not None:
                continue
            front = None
            if binned:
                # Inlined port.candidate_vc with the binned viability check:
                # round-robin over VCs fronted by a head flit whose output
                # and precomputed resource id are both free and not cooling.
                rid_of_dst = request_rid[port_id]
                vcs = port.vcs
                start = port._rr_next_vc
                vc = None
                if blocked is None:
                    for offset in range(num_vcs):
                        idx = start + offset
                        if idx >= num_vcs:
                            idx -= num_vcs
                        fifo = vcs[idx]._fifo
                        if fifo:
                            head = fifo[0]
                            if head.seq == 0:
                                dst = head.dst
                                if output_owner[dst] is None and not out_cooling[dst]:
                                    rid = rid_of_dst[dst]
                                    if resource_owner[rid] < 0 and not res_cooling[rid]:
                                        vc = idx
                                        front = head
                                        break
                    if vc is None:
                        continue
                else:
                    # Binary-traced twin of the scan above: identical
                    # decisions, plus it remembers the lowest-index head
                    # so a blocked port's ``via_block`` event (first
                    # seq-0 front in VC *index* order, matching
                    # `_trace_viability`) costs no second scan.
                    cap_idx = num_vcs
                    cap_dst = -1
                    for offset in range(num_vcs):
                        idx = start + offset
                        if idx >= num_vcs:
                            idx -= num_vcs
                        fifo = vcs[idx]._fifo
                        if fifo:
                            head = fifo[0]
                            if head.seq == 0:
                                dst = head.dst
                                if output_owner[dst] is None and not out_cooling[dst]:
                                    rid = rid_of_dst[dst]
                                    if resource_owner[rid] < 0 and not res_cooling[rid]:
                                        vc = idx
                                        front = head
                                        break
                                if idx < cap_idx:
                                    cap_idx = idx
                                    cap_dst = dst
                    if vc is None:
                        if cap_dst >= 0:
                            dst = cap_dst
                            if output_owner[dst] is not None:
                                reason = REASON_OUTPUT_BUSY
                            elif out_cooling[dst]:
                                reason = REASON_OUTPUT_COOLING
                            else:
                                reason = self._blocked_reason(
                                    port_id, dst, (rid_of_dst[dst],))
                            blocked.append((port_id, dst, reason))
                        continue
            else:
                vc = port.candidate_vc(viability[port_id])
                if vc is None:
                    if blocked is not None:
                        self._capture_blocked(port, blocked)
                    continue
                front = port.vcs[vc]._fifo[0]
                dst = front.dst
            candidate_vcs[port_id] = vc
            src_layer = layer_of[port_id]
            local_input = local_of[port_id]
            if track_ages:
                ages[port_id] = cycle - front.created_cycle
            dst_layer = layer_of[dst]
            if dst_layer == src_layer:
                requestors = int_requests.get(dst)
                if requestors is None:
                    int_requests[dst] = [local_input]
                else:
                    requestors.append(local_input)
            elif binned:
                requests = chan_requests.get(rid)
                if requests is None:
                    chan_requests[rid] = [(local_input, dst)]
                else:
                    requests.append((local_input, dst))
            else:
                pair = src_layer * layers + dst_layer
                requests = pair_requests.get(pair)
                if requests is None:
                    pair_requests[pair] = [(local_input, dst)]
                else:
                    requests.append((local_input, dst))

        winners: Dict[int, _LocalWin] = {}

        for rid, requestors in int_requests.items():
            # Intermediate-output id == its final output's global port id.
            if resource_owner[rid] >= 0 or res_cooling[rid]:
                continue
            arbiter = self.int_arbiters[(layer_of[rid], local_of[rid])]
            if len(requestors) == 1:  # lone requestor wins outright
                local_win = requestors[0]
            else:
                # min-by-key == LRGArbiter.arbitrate (recency keys are
                # distinct, so the minimum is unique); skips validation.
                local_win = min(requestors, key=arbiter._rank.__getitem__)
            winner_port = layer_of[rid] * ports_per_layer + local_win
            winners[rid] = _LocalWin(
                winner_port, rid, len(requestors), rid, arbiter, local_win,
                ages[winner_port] if track_ages else 0,
            )

        radix = cfg.radix
        chan_of_rid = self._chan_of_rid
        for rid, requests in chan_requests.items():
            if resource_owner[rid] >= 0 or res_cooling[rid]:
                continue
            src, dst_layer, channel = chan_of_rid[rid - radix]
            arbiter = self.chan_arbiters[(src, dst_layer, channel)]
            if len(requests) == 1:  # lone requestor wins outright
                local_win, dst_output = requests[0]
            else:
                dst_by_input = dict(requests)
                local_win = min(dst_by_input, key=arbiter._rank.__getitem__)
                dst_output = dst_by_input[local_win]
            winner_port = src * ports_per_layer + local_win
            winners[rid] = _LocalWin(
                winner_port, dst_output, len(requests), rid, arbiter,
                local_win, ages[winner_port] if track_ages else 0,
            )

        cmult = cfg.channel_multiplicity
        for pair, requests in pair_requests.items():
            base = radix + pair * cmult
            free_rids = [
                base + channel
                for channel in self._healthy_channels[pair]
                if resource_owner[base + channel] < 0
                and not res_cooling[base + channel]
            ]
            if not free_rids:
                continue
            src = pair // layers
            arbiter = self.pair_arbiters[(src, pair % layers)]
            dst_by_input = dict(requests)
            ranked = sorted(dst_by_input, key=arbiter._rank.__getitem__)
            # The priority mux serialises: the top-ranked requestors take
            # the free channels in order.
            weight = -(-len(requests) // cmult)  # ceil
            for rid, local_win in zip(free_rids, ranked):
                winner_port = src * ports_per_layer + local_win
                winners[rid] = _LocalWin(
                    winner_port, dst_by_input[local_win], weight, rid,
                    arbiter, local_win,
                    ages[winner_port] if track_ages else 0,
                )
        return winners

    def _phase2_interlayer(
        self,
        local_winners: Dict[int, _LocalWin],
        candidate_vcs: List[int],
    ) -> None:
        """Per-sub-block arbitration among local winners; lock paths."""
        cfg = self.config
        radix = cfg.radix
        local_slot = cfg.local_slot
        slot_table = cfg.slot_of_channel_table
        output_owner = self.output_owner
        out_cooling = self._out_cooling
        # Group candidates by final output; each local winner targets
        # exactly one output and each input appears at most once, so the
        # sub-blocks are independent.
        by_output: Dict[int, List[Tuple[int, _LocalWin]]] = {}
        for rid, win in local_winners.items():
            output = win.dst_output
            if output_owner[output] is not None or out_cooling[output]:
                continue
            slot = local_slot if rid < radix else slot_table[rid - radix]
            candidates = by_output.get(output)
            if candidates is None:
                by_output[output] = [(slot, win)]
            else:
                candidates.append((slot, win))

        subblock_pick = self._subblock_pick
        for output, candidates in by_output.items():
            winner = subblock_pick(output, candidates)
            if winner is None:
                continue
            self._establish(winner, output, candidate_vcs)

    def _subblock_arbitrate(
        self, output: int, candidates: List[Tuple[int, "_LocalWin"]]
    ) -> Optional[_LocalWin]:
        """Run the configured scheme for one sub-block; commit its state."""
        return self._subblock_pick(output, candidates)

    def _subblock_slot_based(
        self, output: int, candidates: List[Tuple[int, "_LocalWin"]]
    ) -> Optional[_LocalWin]:
        """L2L-LRG / L2L-RR sub-block arbitration: slot identity only."""
        arbiter = self.subblock_arbiters[output]
        if len(candidates) == 1:  # a lone requestor always wins
            slot, win = candidates[0]
            arbiter.update(slot)
            return win
        wins_by_slot = dict(candidates)
        slot = arbiter.arbitrate(wins_by_slot.keys())
        if slot is None:
            return None
        arbiter.update(slot)
        return wins_by_slot[slot]

    def _subblock_age(
        self, output: int, candidates: List[Tuple[int, "_LocalWin"]]
    ) -> Optional[_LocalWin]:
        """AGE sub-block arbitration: oldest head flit wins."""
        arbiter = self.subblock_arbiters[output]
        if len(candidates) == 1:
            slot, win = candidates[0]
            arbiter.commit(slot, win.age)
            return win
        request = arbiter.arbitrate_requests(
            [(slot, win.age) for slot, win in candidates]
        )
        if request is None:
            return None
        slot, age = request
        arbiter.commit(slot, age)
        return dict(candidates)[slot]

    def _subblock_wlrg(
        self, output: int, candidates: List[Tuple[int, "_LocalWin"]]
    ) -> Optional[_LocalWin]:
        """WLRG sub-block arbitration: weighted by live requestor count."""
        arbiter = self.subblock_arbiters[output]
        if len(candidates) == 1:
            slot, win = candidates[0]
            arbiter.commit(slot, win.weight)
            return win
        request = arbiter.arbitrate_requests(
            [(slot, win.weight) for slot, win in candidates]
        )
        if request is None:
            return None
        slot, weight = request
        arbiter.commit(slot, weight)
        return dict(candidates)[slot]

    def _subblock_clrg(
        self, output: int, candidates: List[Tuple[int, "_LocalWin"]]
    ) -> Optional[_LocalWin]:
        """CLRG: class by primary input, LRG over slots to break ties."""
        arbiter = self.subblock_arbiters[output]
        if len(candidates) == 1:
            slot, win = candidates[0]
            # Inlined CLRGArbiter.commit (slot is valid by construction).
            arbiter.counters.record_win(win.input_port)
            lrg = arbiter.lrg
            lrg._rank[slot] = lrg._stamp
            lrg._stamp += 1
            return win
        request = arbiter.arbitrate_requests(
            [(slot, win.input_port) for slot, win in candidates]
        )
        if request is None:
            return None
        slot, primary_input = request
        arbiter.counters.record_win(primary_input)
        lrg = arbiter.lrg
        lrg._rank[slot] = lrg._stamp
        lrg._stamp += 1
        return dict(candidates)[slot]

    def _establish(
        self, win: _LocalWin, output: int, candidate_vcs: List[int]
    ) -> None:
        """Lock the winner's full path and back-propagate the local update."""
        input_port = win.input_port
        port = self.ports[input_port]
        # Inlined port.grant() — phase 2 grants one winner per input by
        # construction, so the busy check cannot fire here.
        vc_index = candidate_vcs[input_port]
        port.active_vc = vc_index
        port._rr_next_vc = (vc_index + 1) % len(port.vcs)
        self.resource_owner[win.resource] = input_port
        self.output_owner[output] = input_port
        self.connections[input_port] = (win.resource, output)
        self.grant_cycle[input_port] = self._arb_cycle
        # The local switch priority update is triggered only by the final
        # output win (Section III-B.1).  Local arbiters are always plain
        # LRG, so the O(1) recency-stamp demotion is inlined here.
        arbiter = win.local_arbiter
        arbiter._rank[win.local_slot] = arbiter._stamp
        arbiter._stamp += 1

    def _establish_traced_clrg(
        self, win: _LocalWin, output: int, candidate_vcs: List[int]
    ) -> None:
        """Binary-traced `_establish` (CLRG): also records the grant.

        Twin of :meth:`_establish` plus one append capturing the phase-2
        grant and its post-commit CLRG class (the sub-block's
        ``record_win`` has already run in ``_subblock_clrg``), so the
        traced step needs no second pass over the winners.
        """
        input_port = win.input_port
        port = self.ports[input_port]
        vc_index = candidate_vcs[input_port]
        port.active_vc = vc_index
        port._rr_next_vc = (vc_index + 1) % len(port.vcs)
        self.resource_owner[win.resource] = input_port
        self.output_owner[output] = input_port
        self.connections[input_port] = (win.resource, output)
        self.grant_cycle[input_port] = self._arb_cycle
        arbiter = win.local_arbiter
        arbiter._rank[win.local_slot] = arbiter._stamp
        arbiter._stamp += 1
        self._p2_grants.append((
            input_port, output,
            self.subblock_arbiters[output].counters._counts[input_port],
        ))

    def _establish_traced_plain(
        self, win: _LocalWin, output: int, candidate_vcs: List[int]
    ) -> None:
        """Binary-traced `_establish` (non-CLRG): class is always -1."""
        input_port = win.input_port
        port = self.ports[input_port]
        vc_index = candidate_vcs[input_port]
        port.active_vc = vc_index
        port._rr_next_vc = (vc_index + 1) % len(port.vcs)
        self.resource_owner[win.resource] = input_port
        self.output_owner[output] = input_port
        self.connections[input_port] = (win.resource, output)
        self.grant_cycle[input_port] = self._arb_cycle
        arbiter = win.local_arbiter
        arbiter._rank[win.local_slot] = arbiter._stamp
        arbiter._stamp += 1
        self._p2_grants.append((input_port, output, -1))

    # ------------------------------------------------------------------
    # Traced variants (selected at construction when a tracer is given)
    # ------------------------------------------------------------------
    def _inject_traced(self, packet: Packet) -> None:
        src = packet.src
        if not 0 <= src < self.num_ports:
            raise ValueError(f"source port {src} out of range")
        if not 0 <= packet.dst < self.num_ports:
            raise ValueError(f"destination port {packet.dst} out of range")
        queue = self._queues[src]
        queue._packets.append(packet)
        queue._pending_flits += packet.num_flits
        self._tracer.inject(
            packet.created_cycle, src, packet.dst,
            packet.num_flits, packet.packet_id,
        )

    def _inject_many_traced(self, packets: Iterable[Packet]) -> int:
        count = 0
        for packet in packets:
            self._inject_traced(packet)
            count += 1
        return count

    def _step_traced(self, cycle: int) -> List[Flit]:
        """Traced step(): identical state transitions plus event emission.

        Runs the exact same helpers as the untraced path
        (:meth:`_transmit_and_refill`, :meth:`_phase1_local`,
        :meth:`_phase2_interlayer`) and derives events from their outputs
        and the public path state afterwards, so arbitration decisions
        stay bit-identical with tracing on.
        """
        tracer = self._tracer
        tracer.cycle = cycle
        cursor = self._fault_cursor
        if cursor is not None:
            due = cursor.take(cycle)
            if due:
                apply_fault_events(self, due)
        paths = self._cooling_paths
        if paths:
            in_cooling = self._in_cooling
            out_cooling = self._out_cooling
            res_cooling = self._res_cooling
            for src, output, rid in paths:
                in_cooling[src] = 0
                out_cooling[output] = 0
                res_cooling[rid] = 0
            paths.clear()

        ejected = self._transmit_and_refill(cycle)
        emit = tracer.emit
        for flit in ejected:
            emit(EJECT, flit.src, flit.dst, flit.seq,
                 1 if flit.seq == flit.num_flits - 1 else 0)
        # Paths torn down this cycle (tail transferred): pair each with
        # the cycle it was granted, giving the full hold interval.
        grant_cycle = self.grant_cycle
        for src, output, rid in self._cooling_paths:
            emit(COOL, rid, src, output, grant_cycle.get(src, -1))

        self._trace_viability()

        self._arb_cycle = cycle
        candidate_vcs = self._candidate_vc
        winners = self._phase1_local(candidate_vcs, cycle)
        for rid, win in winners.items():
            emit(P1_GRANT, rid, win.input_port, win.dst_output, win.weight)
        self._phase2_interlayer(winners, candidate_vcs)
        # Every phase-1 winner was an idle input, so a connection present
        # after phase 2 can only be this cycle's grant.
        connections = self.connections
        is_clrg = self._is_clrg
        subblock_arbiters = self.subblock_arbiters
        for rid, win in winners.items():
            input_port = win.input_port
            entry = connections.get(input_port)
            if entry is not None:
                output = entry[1]
                cls = -1
                if is_clrg:
                    cls = int(
                        subblock_arbiters[output].counters.class_of(input_port)
                    )
                emit(P2_GRANT, rid, input_port, output, cls)
            else:
                emit(P2_BLOCK, rid, input_port, win.dst_output)
        if self._invariants is not None:
            self._invariants.after_step(self, cycle, ejected)
        return ejected

    def _trace_viability(self) -> None:
        """Emit ``via_block`` for idle inputs with head flits but no
        viable request, with the blocking reason decomposed.

        Read-only: reuses the per-port viability objects (which are pure)
        before arbitration mutates any state.
        """
        emit = self._tracer.emit
        in_cooling = self._in_cooling
        viability = self._viability
        output_owner = self.output_owner
        out_cooling = self._out_cooling
        resource_owner = self.resource_owner
        res_cooling = self._res_cooling
        binned = self.allocation.is_binned
        request_rid = self._request_rid
        cfg = self.config
        layers = cfg.layers
        layer_of = cfg.layer_of_port_table
        healthy_channels = self._healthy_channels
        for port in self._arb_ports:
            port_id = port.port_id
            if in_cooling[port_id] or port.active_vc is not None:
                continue
            check = viability[port_id]
            heads = []
            viable = False
            for vc in port.vcs:
                fifo = vc._fifo
                if fifo:
                    head = fifo[0]
                    if head.seq == 0:
                        if check(head):
                            viable = True
                            break
                        heads.append(head)
            if viable or not heads:
                continue
            # Report the first blocked head's reason (VC round-robin order
            # does not matter for a port that cannot request at all).
            dst = heads[0].dst
            if output_owner[dst] is not None:
                reason = REASON_OUTPUT_BUSY
            elif out_cooling[dst]:
                reason = REASON_OUTPUT_COOLING
            else:
                src_layer = layer_of[port_id]
                dst_layer = layer_of[dst]
                if (dst_layer != src_layer
                        and not healthy_channels[src_layer * layers + dst_layer]):
                    # Dynamic faults killed every channel toward the
                    # destination layer (the binned table points at a
                    # cooling sentinel; the priority rid list is empty).
                    reason = REASON_CHANNEL_FAILED
                else:
                    if binned:
                        rids = (request_rid[port_id][dst],)
                    else:
                        rids = check.rids_of_dst[dst]
                    reason = REASON_RESOURCE_COOLING
                    for rid in rids:
                        if resource_owner[rid] >= 0 and not res_cooling[rid]:
                            reason = REASON_RESOURCE_BUSY
                            break
            emit(VIA_BLOCK, port_id, dst, reason)

    # ------------------------------------------------------------------
    # Binary-traced variants (deferred batch capture, repro.obs.tracebin)
    # ------------------------------------------------------------------
    def _inject_traced_bin(self, packet: Packet) -> None:
        src = packet.src
        if not 0 <= src < self.num_ports:
            raise ValueError(f"source port {src} out of range")
        if not 0 <= packet.dst < self.num_ports:
            raise ValueError(f"destination port {packet.dst} out of range")
        queue = self._queues[src]
        queue._packets.append(packet)
        queue._pending_flits += packet.num_flits
        # Packet fields are immutable after injection, so capturing the
        # object is enough; the tracer derives the inject event lazily.
        self._tracer.timeline.append((_T_INJECT1, packet))

    def _inject_many_traced_bin(self, packets: Iterable[Packet]) -> int:
        if type(packets) is not list:
            packets = list(packets)
        num_ports = self.num_ports
        queues = self._queues
        for packet in packets:
            src = packet.src
            if not 0 <= src < num_ports:
                raise ValueError(f"source port {src} out of range")
            if not 0 <= packet.dst < num_ports:
                raise ValueError(f"destination port {packet.dst} out of range")
            queue = queues[src]
            queue._packets.append(packet)
            queue._pending_flits += packet.num_flits
        if packets:
            self._tracer.timeline.append((_T_INJECT, packets))
        return len(packets)

    def _step_traced_bin(self, cycle: int) -> List[Flit]:
        """Binary-traced step(): one timeline entry per event batch.

        Identical state transitions to :meth:`step`; observation cost is
        a handful of list appends per cycle because the heavy per-event
        expansion is deferred to :meth:`BinaryTracer.drain` (mostly by
        capturing references to structures this step built anyway — the
        ejected-flit list, the phase-1 winners dict — which are never
        mutated after capture).  State-dependent payloads that a later
        cycle would overwrite (cooling grant cycles, phase-2 outcomes,
        viability reasons) are the only values materialised here.
        """
        tracer = self._tracer
        tracer.cycle = cycle
        timeline = tracer.timeline
        cursor = self._fault_cursor
        if cursor is not None:
            due = cursor.take(cycle)
            if due:
                # Fault events raw-emit straight onto the timeline, in
                # the same first-of-cycle position as the JSONL path.
                apply_fault_events(self, due)
        paths = self._cooling_paths
        if paths:
            in_cooling = self._in_cooling
            out_cooling = self._out_cooling
            res_cooling = self._res_cooling
            for src, output, rid in paths:
                in_cooling[src] = 0
                out_cooling[output] = 0
                res_cooling[rid] = 0
            paths.clear()

        ejected = self._transmit_and_refill(cycle)
        if ejected:
            timeline.append((_T_EJECT, cycle, ejected))
        cooled = self._cooling_paths
        if cooled:
            # _cooling_paths is cleared next cycle and grant_cycle
            # entries are overwritten on re-grant: materialise now.
            granted = self.grant_cycle.get
            timeline.append((_T_COOL, cycle, [
                (rid, src, output, granted(src, -1))
                for src, output, rid in cooled
            ]))

        self._arb_cycle = cycle
        candidate_vcs = self._candidate_vc
        blocked: List[Tuple[int, int, int]] = []
        winners = self._phase1_local(candidate_vcs, cycle, blocked)
        if blocked:
            timeline.append((_T_VIA, cycle, blocked))
        if winners:
            timeline.append((_T_P1, cycle, winners))
            # Phase-2 grants are captured inside the traced `_establish`
            # (with post-commit CLRG classes); blocks are reconstructed
            # at drain time as winners minus grants.
            grants = self._p2_grants = []
            self._phase2_interlayer(winners, candidate_vcs)
            timeline.append((_T_P2, cycle, winners, grants))
        if len(timeline) >= tracer.drain_interval:
            tracer.drain()
        if self._invariants is not None:
            self._invariants.after_step(self, cycle, ejected)
        return ejected

    def _capture_blocked(
        self, port: InputPort, blocked: List[Tuple[int, int, int]]
    ) -> None:
        """Record one ``via_block`` entry for a port phase 1 just skipped.

        Runs only for idle ports whose request scan found no viable VC,
        so the extra work rides on the rare branch.  Mirrors
        :meth:`_trace_viability`: the reported head is the first seq-0
        front in VC *index* order, and the reason decomposition reads
        the same pre-arbitration ownership/cooling state (the request
        scan mutates nothing, so the state is identical here).
        """
        head = None
        for vc in port.vcs:
            fifo = vc._fifo
            if fifo:
                flit = fifo[0]
                if flit.seq == 0:
                    head = flit
                    break
        if head is None:
            return
        port_id = port.port_id
        dst = head.dst
        if self.output_owner[dst] is not None:
            reason = REASON_OUTPUT_BUSY
        elif self._out_cooling[dst]:
            reason = REASON_OUTPUT_COOLING
        else:
            if self.allocation.is_binned:
                rids = (self._request_rid[port_id][dst],)
            else:
                rids = self._viability[port_id].rids_of_dst[dst]
            reason = self._blocked_reason(port_id, dst, rids)
        blocked.append((port_id, dst, reason))

    def _blocked_reason(self, port_id: int, dst: int, rids) -> int:
        """Channel/resource half of the ``via_block`` reason decomposition.

        Shared cold tail of the two blocked-capture paths; callers have
        already ruled out ``output_busy`` and ``output_cooling``.
        """
        cfg = self.config
        layer_of = cfg.layer_of_port_table
        src_layer = layer_of[port_id]
        dst_layer = layer_of[dst]
        if (dst_layer != src_layer
                and not self._healthy_channels[
                    src_layer * cfg.layers + dst_layer]):
            return REASON_CHANNEL_FAILED
        resource_owner = self.resource_owner
        res_cooling = self._res_cooling
        for rid in rids:
            if resource_owner[rid] >= 0 and not res_cooling[rid]:
                return REASON_RESOURCE_BUSY
        return REASON_RESOURCE_COOLING
